"""Tests for the asynchronous checkpoint protocol (§5)."""

import pytest

from repro.errors import RecoveryError
from repro.recovery import BackupStore, CheckpointManager
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def deploy_with_manager(n_partitions=1, m_targets=2):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": n_partitions}))
    runtime.deploy()
    store = BackupStore(m_targets=m_targets)
    manager = CheckpointManager(runtime, store)
    return runtime, store, manager


def node_of_partition(runtime, index=0):
    return runtime.se_instance("table", index).node_id


class TestSynchronousPath:
    def test_checkpoint_captures_state(self):
        runtime, store, manager = deploy_with_manager()
        for i in range(20):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        checkpoint = manager.checkpoint(node_of_partition(runtime))
        assert checkpoint.state_entries() == 20
        assert store.has_checkpoint(checkpoint.node_id)

    def test_checkpoint_captures_te_bookkeeping(self):
        runtime, _store, manager = deploy_with_manager()
        for i in range(5):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        checkpoint = manager.checkpoint(node_of_partition(runtime))
        meta = checkpoint.te_meta[("serve", 0)]
        assert meta.processed_count == 5
        assert list(meta.last_seen.values()) == [5]

    def test_versions_increase(self):
        runtime, _store, manager = deploy_with_manager()
        node = node_of_partition(runtime)
        assert manager.checkpoint(node).version == 1
        assert manager.checkpoint(node).version == 2

    def test_checkpoint_all_covers_every_node(self):
        runtime, store, manager = deploy_with_manager(n_partitions=3)
        checkpoints = manager.checkpoint_all()
        assert len(checkpoints) == 3


class TestAsynchronousPath:
    def test_processing_continues_during_checkpoint(self):
        runtime, _store, manager = deploy_with_manager()
        for i in range(10):
            runtime.inject("serve", ("put", f"pre{i}", i))
        runtime.run_until_idle()
        node = node_of_partition(runtime)
        pending = manager.begin(node)
        # Writes land in the dirty overlay while the checkpoint is open.
        for i in range(10):
            runtime.inject("serve", ("put", f"mid{i}", i))
        runtime.run_until_idle()
        element = runtime.se_instance("table", 0).element
        assert element.checkpoint_active
        assert element.get("mid3") == 3
        checkpoint = manager.complete(pending)
        # The snapshot excludes mid-checkpoint writes...
        keys = {k for c in checkpoint.se_chunks[("table", 0)]
                for k, _ in c.items}
        assert keys == {f"pre{i}" for i in range(10)}
        # ...but the live state retains them after consolidation.
        assert not element.checkpoint_active
        assert element.get("mid3") == 3

    def test_double_begin_rejected(self):
        runtime, _store, manager = deploy_with_manager()
        node = node_of_partition(runtime)
        manager.begin(node)
        with pytest.raises(RecoveryError, match="in progress"):
            manager.begin(node)

    def test_abort_consolidates_dirty_state(self):
        runtime, store, manager = deploy_with_manager()
        node = node_of_partition(runtime)
        pending = manager.begin(node)
        runtime.inject("serve", ("put", "during", 1))
        runtime.run_until_idle()
        manager.abort(pending)
        element = runtime.se_instance("table", 0).element
        assert not element.checkpoint_active
        assert element.get("during") == 1
        assert not store.has_checkpoint(node)

    def test_begin_on_dead_node_rejected(self):
        runtime, _store, manager = deploy_with_manager()
        node = node_of_partition(runtime)
        runtime.fail_node(node)
        with pytest.raises(RecoveryError, match="dead"):
            manager.begin(node)

    def test_complete_after_node_death_discards(self):
        runtime, store, manager = deploy_with_manager()
        node = node_of_partition(runtime)
        pending = manager.begin(node)
        runtime.fail_node(node)
        assert manager.complete(pending) is None
        assert not store.has_checkpoint(node)


class TestBufferTrimming:
    def test_checkpoint_trims_input_log(self):
        runtime, _store, manager = deploy_with_manager()
        for i in range(15):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        buffered_before = sum(
            len(b) for b in runtime.input_buffers_snapshot().values()
        )
        assert buffered_before == 15
        manager.checkpoint(node_of_partition(runtime))
        buffered_after = sum(
            len(b) for b in runtime.input_buffers_snapshot().values()
        )
        assert buffered_after == 0

    def test_unprocessed_items_survive_trimming(self):
        runtime, _store, manager = deploy_with_manager()
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        # These arrive after the drain but before the checkpoint — they
        # sit in the inbox, unprocessed, so they must not be trimmed.
        for i in range(10, 14):
            runtime.inject("serve", ("put", i, i))
        manager.checkpoint(node_of_partition(runtime))
        buffered = sum(
            len(b) for b in runtime.input_buffers_snapshot().values()
        )
        assert buffered == 4

    def test_chunk_count_configurable(self):
        runtime, store, manager = deploy_with_manager()
        manager.n_chunks = 6
        for i in range(12):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        checkpoint = manager.checkpoint(node_of_partition(runtime))
        assert len(checkpoint.se_chunks[("table", 0)]) == 6

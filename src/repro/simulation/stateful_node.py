"""Discrete-time model of a stateful processing node under checkpointing.

This is the workhorse behind the Fig. 6, 7, 12 and 13 reproductions. A
node serves a request stream from a FIFO queue at a configured service
rate while periodically checkpointing its state:

* ``sync``  — stop-the-world (Naiad, SEEP): processing halts for the
  full persist duration ``state_bytes / disk_bw``. Queues build, the
  tail latency explodes with state size, and throughput drops by the
  duty cycle of the pauses;
* ``async`` — the paper's dirty-state mechanism: processing continues
  (at a small overhead) while the consistent snapshot persists; only the
  final consolidation of the dirty overlay locks the state, and that
  lock is proportional to the *update rate during the checkpoint*, not
  to the state size;
* ``none``  — no fault tolerance (the paper's "No FT" baseline).

The model is deterministic: fixed tick, fluid arrivals, FIFO service.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulation.metrics import (
    Candlestick,
    CheckpointTraffic,
    LatencyRecorder,
)


@dataclass(frozen=True)
class CheckpointPolicy:
    """How (and whether) the node checkpoints its state."""

    mode: str = "async"  # "none" | "sync" | "async"
    interval_s: float = 10.0
    #: Bandwidth at which checkpoints persist (disk, or memcpy for a
    #: RAM-disk configuration such as Naiad-NoDisk).
    disk_bw: float = 100e6
    #: Fractional service-rate loss while an async checkpoint persists.
    async_overhead: float = 0.05
    #: Rate of folding dirty state back into the main structure (the
    #: only locked phase of the async protocol). Entry-by-entry merges
    #: into indexed structures are far slower than raw memcpy; 32 MB/s
    #: (~500 k entries/s at 64 B) is calibrated to the paper's Fig. 13
    #: latency overheads.
    consolidation_rate: float = 32e6
    #: Full-base cadence, mirroring
    #: :class:`repro.recovery.policy.CheckpointPolicy`: ``1`` persists
    #: the full state every cycle; ``K > 1`` persists a full base every
    #: K cycles and only the mutations since the previous cycle in
    #: between; ``0`` takes one base and deltas forever.
    full_every: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("none", "sync", "async"):
            raise SimulationError(
                f"unknown checkpoint mode {self.mode!r}"
            )
        if self.interval_s <= 0:
            raise SimulationError("checkpoint interval must be positive")
        if not isinstance(self.full_every, int) \
                or isinstance(self.full_every, bool) or self.full_every < 0:
            raise SimulationError(
                f"full_every must be an int >= 0, got {self.full_every!r}"
            )

    def wants_full(self, cycle: int) -> bool:
        """Whether checkpoint cycle ``cycle`` (0-based) persists fully."""
        if cycle == 0 or self.full_every == 1:
            return True
        if self.full_every == 0:
            return False
        return cycle % self.full_every == 0

    @staticmethod
    def none() -> "CheckpointPolicy":
        return CheckpointPolicy(mode="none")


@dataclass(frozen=True)
class NodeParams:
    """Static characteristics of the node and its workload."""

    service_rate: float = 65_000.0   # requests/s when unimpeded
    state_bytes: float = 100e6
    write_fraction: float = 1.0      # share of requests that mutate state
    bytes_per_update: float = 64.0
    base_latency_s: float = 0.001    # queue-free service latency
    #: Relative node speed; < 1.0 models a straggler machine.
    speed: float = 1.0

    def effective_rate(self) -> float:
        return self.service_rate * self.speed


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    throughput: float            # served requests/s over the whole run
    latency: LatencyRecorder
    served: float
    duration_s: float
    #: Backup traffic per checkpoint cycle (kind, entries, bytes).
    traffic: CheckpointTraffic = field(default_factory=CheckpointTraffic)

    def candlestick(self) -> Candlestick:
        return self.latency.candlestick()

    def p(self, q: float) -> float:
        return self.latency.percentile(q)


def simulate_node(
    offered_rate: float,
    params: NodeParams,
    policy: CheckpointPolicy,
    duration_s: float = 60.0,
    tick_s: float = 0.002,
) -> SimResult:
    """Simulate one node serving ``offered_rate`` requests/s."""
    if offered_rate < 0 or duration_s <= 0 or tick_s <= 0:
        raise SimulationError("rates and durations must be positive")
    queue: deque[tuple[float, float]] = deque()  # (arrival time, count)
    latency = LatencyRecorder()
    traffic = CheckpointTraffic()
    served_total = 0.0

    next_checkpoint = policy.interval_s
    pause_until = 0.0          # hard stop (sync persist / async lock)
    persist_until = 0.0        # async persist window (reduced rate)
    served_during_persist = 0.0
    served_since_ckpt = 0.0    # drives the delta-cycle persist size
    ckpt_cycle = 0

    steps = int(round(duration_s / tick_s))
    rate = params.effective_rate()
    for step in range(steps):
        now = step * tick_s

        # --- checkpoint triggering -----------------------------------
        if (
            policy.mode != "none"
            and now >= next_checkpoint
            and now >= pause_until
            and not (policy.mode == "async" and persist_until > now)
        ):
            # Incremental cycles persist only the mutations since the
            # previous cycle — O(|delta|), capped by the state size —
            # while full cycles re-persist the whole state.
            if policy.wants_full(ckpt_cycle):
                persist_bytes = params.state_bytes
                kind = "full"
            else:
                persist_bytes = min(
                    params.state_bytes,
                    served_since_ckpt * params.write_fraction
                    * params.bytes_per_update,
                )
                kind = "delta"
            traffic.record(kind, persist_bytes / params.bytes_per_update,
                           persist_bytes)
            ckpt_cycle += 1
            served_since_ckpt = 0.0
            persist_duration = persist_bytes / policy.disk_bw
            if policy.mode == "sync":
                pause_until = now + persist_duration
                # The next checkpoint is due an interval after this one
                # finishes — a paused system does not re-checkpoint.
                next_checkpoint = pause_until + policy.interval_s
            else:
                persist_until = now + persist_duration
                served_during_persist = 0.0
                next_checkpoint = persist_until + policy.interval_s

        # --- async persist completion: consolidation lock -------------
        if (
            policy.mode == "async"
            and persist_until
            and now >= persist_until
        ):
            dirty_bytes = (
                served_during_persist
                * params.write_fraction
                * params.bytes_per_update
            )
            pause_until = now + dirty_bytes / policy.consolidation_rate
            persist_until = 0.0

        # --- arrivals ---------------------------------------------------
        arriving = offered_rate * tick_s
        if arriving > 0:
            queue.append((now, arriving))

        # --- service -----------------------------------------------------
        if now < pause_until:
            capacity = 0.0
        elif policy.mode == "async" and now < persist_until:
            capacity = rate * (1.0 - policy.async_overhead) * tick_s
        else:
            capacity = rate * tick_s
        while capacity > 0 and queue:
            arrival, count = queue[0]
            take = min(count, capacity)
            latency.record(now - arrival + params.base_latency_s)
            served_total += take
            served_since_ckpt += take
            if policy.mode == "async" and now < persist_until:
                served_during_persist += take
            if take >= count:
                queue.popleft()
            else:
                queue[0] = (arrival, count - take)
            capacity -= take

    # Requests still queued at the end never completed: record their
    # (censored) waiting time so that an overloaded or pause-starved
    # configuration reports the latency its clients actually saw.
    end = duration_s
    for arrival, _count in queue:
        latency.record(end - arrival + params.base_latency_s)

    return SimResult(
        throughput=served_total / duration_s,
        latency=latency,
        served=served_total,
        duration_s=duration_s,
        traffic=traffic,
    )


def simulate_cluster(
    n_nodes: int,
    total_offered_rate: float,
    params: NodeParams,
    policy: CheckpointPolicy,
    duration_s: float = 60.0,
    remote_latency_s: float = 0.004,
    per_node_latency_s: float = 0.0,
    tick_s: float = 0.002,
) -> SimResult:
    """Aggregate a partitioned deployment of identical nodes (Fig. 7).

    Requests hash-partition uniformly over nodes; checkpoints are local
    and uncoordinated, so per-node behaviour is independent and the
    cluster result is the per-node result scaled by ``n_nodes``, with a
    network round-trip added to every latency sample.
    ``per_node_latency_s`` models client-side fan-out cost that grows
    with the cluster (connection multiplexing, slow-node tails): the
    paper's Fig. 7 medians grow from 8 to 29 ms across 10-40 nodes at
    constant per-node state, which pins this term.
    """
    if n_nodes < 1:
        raise SimulationError("cluster needs at least one node")
    per_node = simulate_node(
        total_offered_rate / n_nodes, params, policy,
        duration_s=duration_s, tick_s=tick_s,
    )
    latency = LatencyRecorder()
    overhead = remote_latency_s + per_node_latency_s * n_nodes
    for sample in per_node.latency.samples:
        latency.record(sample + overhead)
    return SimResult(
        throughput=per_node.throughput * n_nodes,
        latency=latency,
        served=per_node.served * n_nodes,
        duration_s=duration_s,
        traffic=per_node.traffic,
    )

"""Tests for the py2sdg command-line tool."""

import json
import subprocess
import sys

from repro.cli import main


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )


class TestTranslateCommand:
    def test_translate_cf(self, capsys):
        assert main(["translate",
                     "repro.apps:CollaborativeFiltering"]) == 0
        out = capsys.readouterr().out
        assert "5 task elements" in out
        assert "user_item" in out and "co_occ" in out
        assert "one_to_all" in out and "all_to_one" in out
        assert "add_rating(user, item, rating)" in out

    def test_translate_dot(self, capsys):
        assert main(["translate", "repro.apps:KeyValueStore",
                     "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"table"' in out

    def test_allocate(self, capsys):
        assert main(["allocate",
                     "repro.apps:CollaborativeFiltering"]) == 0
        out = capsys.readouterr().out
        assert "allocation (3 nodes" in out
        assert "node 0:" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SDG" in out and "Piccolo" in out


class TestObsCommand:
    def test_obs_wordcount_report(self, capsys):
        assert main(["obs", "--app", "wordcount", "--items", "60"]) == 0
        out = capsys.readouterr().out
        # >= 12 distinct metric series spanning every layer.
        names = {line.split()[2] for line in out.splitlines()
                 if line.startswith("# TYPE ")}
        assert len(names) >= 12
        for prefix in ("engine_", "transport_", "state_",
                       "recovery_", "chaos_"):
            assert any(n.startswith(prefix) for n in names), prefix
        # The mid-run kill was detected, recovered and traced.
        assert "fault-injected: 1" in out
        assert "recovered at step" in out
        assert "queue wait (logical steps):" in out
        assert "wait=" in out  # per-hop queue-wait breakdowns

    def test_obs_no_trace_no_chaos(self, capsys):
        assert main(["obs", "--app", "kvstore", "--items", "20",
                     "--no-trace", "--no-chaos"]) == 0
        out = capsys.readouterr().out
        assert "tracing disabled" in out
        assert "fault-injected" not in out

    def test_obs_events_export(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        assert main(["obs", "--app", "wordcount", "--items", "30",
                     "--events", str(path)]) == 0
        import json

        lines = path.read_text().strip().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "checkpoint-commit" in kinds
        assert "restore" in kinds


class TestErrors:
    def test_bad_spec_format(self, capsys):
        assert main(["translate", "no-colon"]) == 1
        assert "expected <module>:<Class>" in capsys.readouterr().err

    def test_unknown_module(self, capsys):
        assert main(["translate", "nope.nope:X"]) == 1
        assert "cannot import" in capsys.readouterr().err

    def test_unknown_class(self, capsys):
        assert main(["translate", "repro.apps:Missing"]) == 1
        assert "no class" in capsys.readouterr().err

    def test_untranslatable_class(self, capsys):
        # A class without annotations fails with a TranslationError.
        assert main(["translate", "repro.state:Vector"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSubprocessEntryPoint:
    def test_python_dash_m_repro(self):
        completed = run_cli("translate", "repro.apps:KMeans")
        assert completed.returncode == 0
        assert "accumulators" in completed.stdout

    def test_exit_code_on_error(self):
        completed = run_cli("translate", "garbage")
        assert completed.returncode == 1


class TestDurableCommands:
    def test_run_resume_fork_round_trip(self, capsys, tmp_path):
        run_dir = str(tmp_path / "run")
        fork_dir = str(tmp_path / "fork")
        assert main(["run", "--durable", run_dir, "--epochs", "3",
                     "--items-per-epoch", "30",
                     "--chaos-seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "chaos=on" in out
        assert "3 epochs committed" in out
        final = out.splitlines()[-1]

        assert main(["fork", run_dir, fork_dir, "--epoch", "2"]) == 0
        capsys.readouterr()
        assert main(["resume", fork_dir]) == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        # The fork converges to the same final state hash.
        assert out.splitlines()[-1].split("hash")[-1] == \
            final.split("hash")[-1]

    def test_resume_of_non_run_dir_errors(self, capsys, tmp_path):
        assert main(["resume", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestOptimizeFlags:
    def test_run_optimize_matches_baseline_state_hash(self, capsys):
        assert main(["run", "--app", "kvstore", "--items", "80"]) == 0
        baseline = capsys.readouterr().out
        assert main(["run", "--app", "kvstore", "--items", "80",
                     "--optimize"]) == 0
        optimized = capsys.readouterr().out
        assert "processed=80" in optimized
        assert (optimized.split("state_hash=")[-1]
                == baseline.split("state_hash=")[-1])

    def test_durable_run_rejects_optimize(self, capsys, tmp_path):
        assert main(["run", "--durable", str(tmp_path / "run"),
                     "--optimize"]) == 1
        assert "plain runs only" in capsys.readouterr().err

    def test_obs_optimize_reports_the_optimizer_section(self, capsys):
        assert main(["obs", "--app", "kvstore", "--items", "40",
                     "--no-trace", "--no-chaos", "--optimize"]) == 0
        out = capsys.readouterr().out
        assert "-- optimizer --" in out
        assert "capabilities: COALESCIBLE_DISPATCH" in out
        coalesced = int(next(
            line.split(":")[1] for line in out.splitlines()
            if line.strip().startswith("dispatch_coalesced_total:")))
        assert coalesced > 0

    def test_obs_without_optimize_reports_it_off(self, capsys):
        assert main(["obs", "--app", "kvstore", "--items", "20",
                     "--no-trace", "--no-chaos"]) == 0
        out = capsys.readouterr().out
        assert "capabilities: (none) [optimize off]" in out


class TestTopCommand:
    def test_top_once_inprocess(self, capsys):
        assert main(["top", "--once", "--app", "kvstore",
                     "--items", "40"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "items processed: 40" in out
        assert "profile (wall-clock phases)" in out
        assert "flight recorder" in out

    def test_top_once_multiprocess_shows_wire(self, capsys):
        assert main(["top", "--once", "--substrate", "multiprocess",
                     "--workers", "2", "--app", "wordcount",
                     "--items", "30"]) == 0
        out = capsys.readouterr().out
        assert "substrate=multiprocess workers=2" in out
        assert "wire: frames send=" in out
        assert "coordinator outbox depth:" in out
        # Worker phase shards merged into the coordinator's profile.
        assert "process" in out and "serialize" in out

    def test_top_watch_renders_frames(self, capsys):
        assert main(["top", "--watch", "--frames", "2",
                     "--interval", "0.05", "--items", "60"]) == 0
        out = capsys.readouterr().out
        # Two watch frames plus the final post-drain frame.
        assert out.count("repro top") == 3

    def test_top_durable_flight_dump(self, tmp_path, capsys):
        # The durable runner writes the flight ring beside the manifest.
        run_dir = str(tmp_path / "run")
        assert main(["run", "--durable", run_dir, "--epochs", "1",
                     "--items-per-epoch", "20"]) == 0
        capsys.readouterr()
        flight_path = tmp_path / "run" / "flight.json"
        assert flight_path.exists()
        dump = json.loads(flight_path.read_text())
        assert dump["total_steps"] > 0
        assert any(e["kind"] == "serve" for e in dump["entries"])

"""Shared helpers for the figure-reproduction benchmarks.

Every ``test_fig*`` / ``test_table*`` benchmark regenerates one table or
figure from the paper's evaluation (§6): it computes the data series
through the library's models (and, where feasible, the real runtime),
prints the rows in a paper-comparable layout, and asserts the published
*shape* — who wins, by roughly what factor, where crossovers fall.
Absolute values are not expected to match the authors' EC2 testbed.
"""

from __future__ import annotations


def print_figure(title: str, headers: list[str],
                 rows: list[tuple]) -> None:
    """Render one figure's data as an aligned plain-text table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in cells),
                                 default=0))
        for i in range(len(headers))
    ]
    print()
    print(f"=== {title} ===")
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    print("  ".join("-" * w for w in widths))
    for row in cells:
        print("  ".join(row[i].ljust(widths[i])
                        for i in range(len(row))))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)

"""Unit tests for the deployment layer (:class:`Topology`).

Materialisation and placement, partitioning epochs, failure /
replacement slot bookkeeping, reactive growth, and the repartition
contract (drained envelopes are handed back; structural invariants are
enforced before any state moves).
"""

import pytest

from repro.core import SDG
from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime, RuntimeConfig, Topology
from repro.runtime.instances import SEInstance, TEInstance
from repro.testing import build_kv_sdg, noop


def make_topology(**config):
    config.setdefault("se_instances", {"table": 2})
    topology = Topology(build_kv_sdg(), RuntimeConfig(**config))
    topology.materialise()
    return topology


class TestMaterialisation:
    def test_facade_delegates_to_topology(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 2})).deploy()
        assert runtime.te_instances("serve") is not None
        assert runtime.topology.te_instances("serve") == \
            runtime.te_instances("serve")
        assert runtime.nodes is runtime.topology.nodes
        assert runtime._partitioners is runtime.topology._partitioners

    def test_stateful_te_colocated_with_its_partition(self):
        topology = make_topology()
        for te_inst in topology.te_instances("serve"):
            se_inst = topology.se_instance("table", te_inst.index)
            assert te_inst.se_instance is se_inst
            assert te_inst.node_id == se_inst.node_id

    def test_node_for_is_idempotent(self):
        topology = make_topology()
        node = topology.node_for(0, 0)
        assert topology.node_for(0, 0) is node

    def test_fresh_nodes_get_distinct_ids(self):
        topology = make_topology()
        a, b = topology.fresh_node(), topology.fresh_node()
        assert a.node_id != b.node_id
        assert topology.nodes[a.node_id] is a

    def test_partitioned_se_gets_a_partitioner(self):
        topology = make_topology()
        assert topology.partitioner("table").n_partitions == 2


class TestEpochs:
    def test_epoch_starts_at_zero(self):
        topology = make_topology()
        assert topology.se_epoch("table") == 0

    def test_set_partitioner_bumps_epoch(self):
        topology = make_topology()
        topology.set_partitioner(
            "table", topology.partitioner("table").rescaled(3)
        )
        assert topology.se_epoch("table") == 1
        topology.set_partitioner(
            "table", topology.partitioner("table").rescaled(4)
        )
        assert topology.se_epoch("table") == 2

    def test_scale_up_advances_epoch_through_facade(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 1})).deploy()
        assert runtime.se_epoch("table") == 0
        runtime.scale_up("serve")
        assert runtime.se_epoch("table") == 1
        runtime.scale_up("serve")
        assert runtime.se_epoch("table") == 2


class TestFailureAndReplacement:
    def test_fail_node_empties_slots(self):
        topology = make_topology()
        victim = topology.te_instances("serve")[0]
        topology.fail_node(victim.node_id)
        assert topology.te_instance("serve", 0) is None
        assert topology.se_instance("table", 0) is None
        assert len(topology.te_instances("serve")) == 1
        assert not topology.nodes[victim.node_id].alive

    def test_install_replacement_refills_slot(self):
        topology = make_topology()
        victim = topology.te_instances("serve")[0]
        topology.fail_node(victim.node_id)
        sdg = topology.sdg
        se_inst = SEInstance(sdg.state("table"), 0)
        te_inst = TEInstance(sdg.task("serve"), 0)
        node = topology.install_replacement([te_inst], [se_inst])
        assert topology.se_instance("table", 0) is se_inst
        assert topology.te_instance("serve", 0) is te_inst
        assert te_inst.se_instance is se_inst
        assert te_inst.node_id == node.node_id

    def test_install_replacement_grows_slot_lists(self):
        # m-to-n recovery: one failed partition comes back as two.
        topology = make_topology(se_instances={"table": 1})
        topology.fail_node(topology.te_instances("serve")[0].node_id)
        sdg = topology.sdg
        ses = [SEInstance(sdg.state("table"), i) for i in range(2)]
        tes = [TEInstance(sdg.task("serve"), i) for i in range(2)]
        topology.install_replacement([tes[0]], [ses[0]])
        topology.install_replacement([tes[1]], [ses[1]])
        assert topology.te_slot_count("serve") == 2
        assert [se.index for se in topology.se_instances("table")] == [0, 1]


class TestGrowth:
    def test_add_stateless_instance(self):
        sdg = SDG("flat")
        sdg.add_task("work", noop, is_entry=True)
        topology = Topology(sdg, RuntimeConfig())
        topology.materialise()
        before = len(topology.nodes)
        instance = topology.add_stateless_instance("work")
        assert instance.index == 1
        assert topology.te_slot_count("work") == 2
        assert len(topology.nodes) == before + 1

    def test_repartition_returns_drained_envelopes(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 2})).deploy()
        for i in range(6):
            runtime.inject("serve", ("put", i, i))
        queued = sum(len(inst.inbox)
                     for inst in runtime.te_instances("serve"))
        assert queued == 6
        pending = runtime.topology.repartition("table", 3)
        assert len(pending) == 6
        assert all(not inst.inbox
                   for inst in runtime.te_instances("serve"))
        assert len(runtime.se_instances("table")) == 3

    def test_repartition_preserves_state_across_partitions(self):
        topology = make_topology()
        for i in range(20):
            index = topology.partitioner("table").partition(i)
            topology.se_instance("table", index).element.put(i, i * 10)
        topology.repartition("table", 3)
        partitioner = topology.partitioner("table")
        merged = {}
        for se_inst in topology.se_instances("table"):
            for key, value in se_inst.element.items():
                assert partitioner.partition(key) == se_inst.index
                merged[key] = value
        assert merged == {i: i * 10 for i in range(20)}

    def test_repartition_refused_while_instance_failed(self):
        topology = make_topology()
        topology.fail_node(topology.se_instances("table")[0].node_id)
        with pytest.raises(RuntimeExecutionError, match="recover first"):
            topology.repartition("table", 3)

    def test_repartition_refused_during_checkpoint(self):
        topology = make_topology()
        element = topology.se_instances("table")[0].element
        element.begin_checkpoint()
        with pytest.raises(RuntimeExecutionError, match="checkpoint"):
            topology.repartition("table", 3)

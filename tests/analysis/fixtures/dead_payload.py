"""SDG305: an entry parameter no task element ever reads.

``tag`` rides every injected envelope through serialisation and
queueing — the hot path of the system — and is dropped unopened.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class DeadPayload(SDGProgram):
    """Ships an unused ``tag`` argument on every write."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def store(self, key, value, tag):
        self.table.put(key, value)

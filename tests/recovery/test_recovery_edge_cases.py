"""Recovery edge cases: multi-SE nodes and failures mid-gather."""

from repro.recovery import BackupStore, CheckpointManager, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_cf_sdg, build_iterative_sdg


class TestMultiSENodeRecovery:
    """Cycle allocation colocates several SEs on one node (§3.3 step 1);
    a checkpoint and recovery of that node must cover all of them."""

    def deploy(self):
        runtime = Runtime(build_iterative_sdg()).deploy()
        store = BackupStore(m_targets=2)
        return (runtime, CheckpointManager(runtime, store),
                RecoveryManager(runtime, store))

    def test_both_ses_share_a_node(self):
        runtime, _c, _r = self.deploy()
        a = runtime.se_instance("modelA", 0)
        b = runtime.se_instance("modelB", 0)
        assert a.node_id == b.node_id

    def test_checkpoint_covers_both_ses(self):
        runtime, ckpt, _rec = self.deploy()
        for value in (5, 3, 7):
            runtime.inject("stepA", value)
        runtime.run_until_idle()
        node = runtime.se_instance("modelA", 0).node_id
        checkpoint = ckpt.checkpoint(node)
        assert ("modelA", 0) in checkpoint.se_chunks
        assert ("modelB", 0) in checkpoint.se_chunks

    def test_recovery_restores_both_ses(self):
        runtime, ckpt, rec = self.deploy()

        # Make both loop SEs stateful: stepA/stepB write via increment.
        def run_items(values):
            for value in values:
                runtime.inject("stepA", value)
            runtime.run_until_idle()

        # Patch state writes into the loop by driving items through;
        # build_iterative_sdg's TEs don't mutate state, so write some
        # state directly to verify restore fidelity.
        run_items([4, 2])
        runtime.se_instance("modelA", 0).element.put("a", 1)
        runtime.se_instance("modelB", 0).element.put("b", 2)
        node = runtime.se_instance("modelA", 0).node_id
        ckpt.checkpoint(node)
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        assert runtime.se_instance("modelA", 0).element.get("a") == 1
        assert runtime.se_instance("modelB", 0).element.get("b") == 2


class TestFailureMidGather:
    RATINGS = [(0, 0, 5), (0, 1, 3), (1, 0, 4), (1, 2, 2), (2, 1, 1)]

    def deploy(self):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"userItem": 1, "coOcc": 2}),
        ).deploy()
        store = BackupStore(m_targets=2)
        return (runtime, CheckpointManager(runtime, store),
                RecoveryManager(runtime, store))

    def baseline(self):
        runtime, _c, _r = self.deploy()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        return runtime.results["mergeRec"][0][1].to_list()

    def test_partial_replica_fails_before_responding(self):
        """The merge barrier waits for n responses; a dead replica's
        response arrives only after recovery replays the broadcast."""
        runtime, ckpt, rec = self.deploy()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        replica1 = runtime.se_instances("coOcc")[1]
        node = replica1.node_id
        ckpt.checkpoint(node)
        runtime.inject("getUserVec", 0)
        # Process just far enough for the broadcast to be delivered but
        # not answered by replica 1, then kill it.
        runtime.step()  # getUserVec processes, broadcasts
        runtime.fail_node(node)
        runtime.run_until_idle()
        # The gather is stuck waiting for the dead replica.
        merge_instance = runtime.te_instances("mergeRec")[0]
        assert merge_instance.pending_gathers
        assert runtime.results["mergeRec"] == []
        rec.recover_node(node)
        runtime.run_until_idle()
        assert not merge_instance.pending_gathers
        assert (runtime.results["mergeRec"][0][1].to_list()
                == self.baseline())

    def test_unchecked_replica_rebuilt_from_replay(self):
        """No checkpoint at all: the replica's state is reconstructed
        purely by replaying its one-to-any input stream."""
        runtime, _ckpt, rec = self.deploy()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        replica1 = runtime.se_instances("coOcc")[1]
        before = sorted(replica1.element._store_items())
        assert before  # it did receive some co-occurrence updates
        node = replica1.node_id
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        after = sorted(
            runtime.se_instances("coOcc")[1].element._store_items()
        )
        assert after == before  # deterministic replay rebuilt it exactly

    def test_reads_after_unchecked_recovery_are_correct(self):
        runtime, _ckpt, rec = self.deploy()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        node = runtime.se_instances("coOcc")[1].node_id
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        assert (runtime.results["mergeRec"][0][1].to_list()
                == self.baseline())

"""Property-based failure injection: recovery is transparent.

The paper's central recovery claim is that asynchronous local
checkpointing + replay + duplicate filtering reconstructs exactly the
state a failure-free execution would have produced. We randomise the
workload, the checkpoint position, the failure position and the restore
fan-out, and require bit-identical state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery import BackupStore, CheckpointManager, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def table_contents(runtime):
    merged = {}
    for inst in runtime.se_instances("table"):
        merged.update(dict(inst.element.items()))
    return merged


operations = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 100)),
    min_size=1, max_size=60,
)


@given(
    ops=operations,
    checkpoint_at=st.integers(0, 60),
    fail_at=st.integers(0, 60),
    n_new=st.integers(1, 3),
)
@settings(max_examples=60, deadline=None)
def test_recovery_is_transparent(ops, checkpoint_at, fail_at, n_new):
    checkpoint_at = min(checkpoint_at, len(ops))
    fail_at = min(max(fail_at, checkpoint_at), len(ops))

    def run(fail: bool):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 1}))
        runtime.deploy()
        store = BackupStore(m_targets=2)
        ckpt = CheckpointManager(runtime, store)
        rec = RecoveryManager(runtime, store)
        node = runtime.se_instance("table", 0).node_id

        for index, (key, value) in enumerate(ops):
            if fail:
                if index == checkpoint_at:
                    runtime.run_until_idle()
                    ckpt.checkpoint(node)
                if index == fail_at:
                    # Leave whatever is queued in the inbox to be lost.
                    runtime.fail_node(node)
                    rec.recover_node(node, n_new=n_new)
            runtime.inject("serve", ("put", key, value))
        if fail and fail_at >= len(ops):
            if checkpoint_at >= len(ops):
                runtime.run_until_idle()
                ckpt.checkpoint(node)
            runtime.run_until_idle()
            runtime.fail_node(node)
            rec.recover_node(node, n_new=n_new)
        runtime.run_until_idle()
        return table_contents(runtime)

    assert run(fail=True) == run(fail=False)

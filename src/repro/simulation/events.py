"""A minimal discrete-event simulation core.

Used by the cluster-lifetime simulation (and available for new
experiments): callbacks are scheduled at absolute simulated times and
executed in timestamp order, with stable FIFO ordering for ties and
O(log n) scheduling via a heap. Cancellation is lazy (cancelled events
stay in the heap but are skipped), the standard technique.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback; cancellable until it fires."""

    __slots__ = ("fn", "args", "cancelled", "fired")

    def __init__(self, fn: Callable, args: tuple) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Executes events in simulated-time order."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self.processed = 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        event = Event(fn, args)
        heapq.heappush(
            self._heap, _Entry(self.now + delay, next(self._seq), event)
        )
        return event

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, fn, *args)

    def step(self) -> bool:
        """Fire the next pending event; False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.event.cancelled:
                continue
            self.now = entry.time
            entry.event.fired = True
            entry.event.fn(*entry.event.args)
            self.processed += 1
            return True
        return False

    def run_until(self, time: float) -> None:
        """Fire all events up to and including ``time``."""
        while self._heap:
            entry = self._heap[0]
            if entry.time > time:
                break
            self.step()
        self.now = max(self.now, time)

    def run(self, max_events: int = 1_000_000) -> None:
        """Fire everything; guards against runaway self-scheduling."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"event loop exceeded {max_events} events"
                )

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.event.cancelled)

"""The diagnostics engine behind ``sdglint``.

Every check in the analyzer — the refactored §4.1 restriction scanner,
the structural SDG validators, and the dedicated lint passes — reports
its findings as structured :class:`Diagnostic` objects instead of
raising on the first problem. A :class:`DiagnosticSink` collects them
(translating source-relative line numbers to absolute file positions),
and a :class:`Report` is the user-facing result: filterable, sortable,
renderable as text or JSON.

The legacy raise-on-first behaviour of ``translate()`` / ``validate()``
is preserved by simply not passing a sink: the checks then raise their
first error exactly as before.

This module is dependency-free on purpose — ``core.validation`` and
``translate.restrictions`` import it, so it must not import them back.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe programs that are wrong under the
    paper's semantics (they fail translation, corrupt recovery, or
    produce replica-divergent results); ``WARNING`` findings are
    conservative heuristics or performance problems; ``INFO`` is
    advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Span:
    """A source position (absolute, 1-based) a diagnostic points at."""

    file: str | None = None
    line: int | None = None
    col: int | None = None
    end_line: int | None = None
    end_col: int | None = None

    def __str__(self) -> str:
        place = self.file or "<sdg>"
        if self.line is not None:
            place += f":{self.line}"
            if self.col is not None:
                place += f":{self.col}"
        return place


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry of one diagnostic code."""

    code: str
    name: str
    severity: Severity
    section: str  # paper section the check enforces
    summary: str


def _c(code: str, name: str, severity: Severity, section: str,
       summary: str) -> tuple[str, CodeInfo]:
    return code, CodeInfo(code, name, severity, section, summary)


#: Every diagnostic code the analyzer can emit. ``docs/analysis.md``
#: catalogues these with minimal offending examples.
CODES: dict[str, CodeInfo] = dict([
    _c("SDG001", "translation-failure", Severity.ERROR, "§4",
       "the method could not be translated to task elements at all"),
    _c("SDG101", "nondeterministic-call", Severity.ERROR, "§4.1",
       "call into a nondeterministic module (time, random, ...)"),
    _c("SDG102", "environment-dependence", Severity.ERROR, "§4.1",
       "call that ties the program to the local execution environment"),
    _c("SDG201", "global-access-needs-partial", Severity.ERROR, "§4.1",
       "global access on a state element that is not partial"),
    _c("SDG202", "partitioned-access-needs-partitioned", Severity.ERROR,
       "§3.2", "partitioned access on a non-partitioned state element"),
    _c("SDG203", "local-access-on-partitioned", Severity.ERROR, "§3.2",
       "local access on a partitioned state element"),
    _c("SDG211", "entry-missing-key", Severity.ERROR, "§3.2",
       "entry TE into a partitioned SE without an entry key function"),
    _c("SDG212", "unkeyed-dataflow-into-partition", Severity.ERROR,
       "§3.2", "non-keyed dataflow reaching a partitioned SE"),
    _c("SDG213", "conflicting-partition-keys", Severity.ERROR, "§3.2",
       "one partitioned SE reached through different partition keys"),
    _c("SDG221", "gather-needs-merge", Severity.ERROR, "§4.2",
       "all-to-one dataflow that does not terminate at a merge TE"),
    _c("SDG222", "merge-needs-gather", Severity.ERROR, "§4.2",
       "merge TE with inputs but no all-to-one dataflow"),
    _c("SDG231", "no-entry", Severity.ERROR, "§3.1",
       "the SDG has no entry task element"),
    _c("SDG232", "unreachable-te", Severity.ERROR, "§3.1",
       "task elements unreachable from every entry"),
    _c("SDG301", "partial-state-race", Severity.ERROR, "§3.2",
       "replica-dependent value read from partial state escapes "
       "into downstream dataflow"),
    _c("SDG302", "order-sensitive-merge", Severity.WARNING, "§4.1",
       "merge method accumulation looks order-sensitive"),
    _c("SDG303", "checkpoint-bypass", Severity.ERROR, "§5",
       "state mutation bypasses the journalled StateBackend API"),
    _c("SDG304", "inconsistent-key-provenance", Severity.WARNING, "§3.2",
       "the variable carrying the partition key was redefined upstream"),
    _c("SDG305", "dead-payload", Severity.WARNING, "§4.2",
       "variable shipped on a dataflow edge but never read downstream"),
    _c("SDG401", "unpicklable-payload", Severity.ERROR, "§6/fork",
       "value stored in a state element or shipped on an edge that "
       "cannot cross a process boundary (lambda, generator, handle, "
       "lock)"),
    _c("SDG402", "cross-process-nondeterminism", Severity.ERROR,
       "§4.1/fork", "process-dependent value (hash randomization, "
       "object address, set order) escapes onto an edge or into a "
       "partition key"),
    _c("SDG403", "shared-mutable-global", Severity.WARNING, "§6/fork",
       "module global or shared class attribute mutated from a task "
       "method — the write is invisible to other worker processes"),
])


def render_chain(chain: tuple) -> str:
    """``entry:120 → _helper:98`` for a tuple of (function, line)."""
    return " → ".join(
        f"{fn}:{line}" if line is not None else fn
        for fn, line in chain
    )


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of the analyzer."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)
    #: The method / TE / SE the finding is about, when known.
    origin: str | None = None
    #: Actionable suggestion for fixing the program.
    hint: str | None = None
    #: Interprocedural call chain from the reported method down to the
    #: offending site: ``((function, absolute_line), ...)``. Empty for
    #: direct findings.
    chain: tuple = ()

    @property
    def name(self) -> str:
        info = CODES.get(self.code)
        return info.name if info else self.code

    def render(self) -> str:
        head = (f"{self.span}: {self.code} {self.severity.value} "
                f"[{self.name}] {self.message}")
        if self.chain:
            head += f"\n    call chain: {render_chain(self.chain)}"
        if self.hint:
            head += f"\n    hint: {self.hint}"
        return head

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "col": self.span.col,
            "origin": self.origin,
            "hint": self.hint,
        }
        if self.chain:
            payload["chain"] = [
                {"function": fn, "line": line} for fn, line in self.chain
            ]
        return payload


class DiagnosticSink:
    """Collects diagnostics during one analysis run.

    The sink knows where the analysed source lives: checks report line
    numbers relative to the parsed class source (the same numbers the
    strict-mode exceptions carry) and the sink rebases them onto the
    absolute file position via ``line_base``.
    """

    def __init__(self, file: str | None = None, line_base: int = 1) -> None:
        self.file = file
        self.line_base = line_base
        self.diagnostics: list[Diagnostic] = []

    def span(self, lineno: int | None = None,
             col: int | None = None) -> Span:
        line = None
        if lineno is not None:
            line = self.line_base + lineno - 1
        return Span(file=self.file, line=line, col=col)

    def emit(self, code: str, message: str, *,
             lineno: int | None = None, col: int | None = None,
             origin: str | None = None, hint: str | None = None,
             severity: Severity | None = None,
             chain: tuple = ()) -> Diagnostic:
        """Record one finding; line numbers are class-source-relative.

        ``chain`` is a tuple of ``(function, lineno)`` hops with
        class-relative line numbers; they are rebased onto the file the
        same way the primary line is.
        """
        if severity is None:
            info = CODES.get(code)
            severity = info.severity if info else Severity.ERROR
        rebased = tuple(
            (fn, self.line_base + line - 1 if line is not None else None)
            for fn, line in chain
        )
        diagnostic = Diagnostic(
            code=code, severity=severity, message=message,
            span=self.span(lineno, col), origin=origin, hint=hint,
            chain=rebased,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)


@dataclass
class Report:
    """The result of one ``sdglint`` run over a program or SDG."""

    target: str
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when nothing at all was found."""
        return not self.diagnostics

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.span.line or 0, d.code),
        )

    def render_text(self) -> str:
        lines = [f"sdglint: {self.target}"]
        for diagnostic in self.sorted():
            lines.append("  " + diagnostic.render().replace("\n", "\n  "))
        lines.append(
            f"  {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
            + (" — clean" if self.clean else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "total": len(self.diagnostics),
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

"""Unit tests for run manifests, fingerprints and the fault codec."""

import json
import os

import pytest

from repro.apps.wordcount import build_wordcount_sdg
from repro.chaos import (
    FaultPlan,
    KillNode,
    ScaleUp,
    fault_from_dict,
    fault_to_dict,
    random_plan,
)
from repro.durability import (
    CRASH_POINTS,
    SCHEMA_VERSION,
    EpochRecord,
    RunManifest,
    SimulatedCrash,
    atomic_write_json,
    load_manifest,
    manifest_path,
    sdg_fingerprint,
    write_manifest,
)
from repro.errors import ChaosError, DurabilityError
from repro.testing import build_kv_sdg


def make_manifest(n_epochs=2):
    manifest = RunManifest(
        run_id="t", program={"app": "kvstore", "sdg": "kv",
                             "fingerprint": 42},
        spec={"app": "kvstore", "seed": 1},
    )
    for k in range(1, n_epochs + 1):
        manifest.epochs.append(EpochRecord(
            epoch=k, position=k * 10, state_hash=100 + k,
            input_seq={"serve": k * 10}, input_rr={"serve": k},
            total_steps=k * 50, checkpoints={0: k, 1: k},
            events_seq=k * 3, events_offset=k * 200,
            pending_faults=[fault_to_dict(
                KillNode(at_step=999, se="table", index=0))],
        ))
    return manifest


class TestManifestRoundTrip:
    def test_json_round_trip(self, tmp_path):
        manifest = make_manifest()
        write_manifest(str(tmp_path), manifest)
        loaded = load_manifest(str(tmp_path))
        assert loaded.to_dict() == manifest.to_dict()
        assert loaded.committed_epoch == 2
        # node ids survive as ints despite JSON's string keys
        assert loaded.latest.checkpoints == {0: 2, 1: 2}

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(DurabilityError):
            load_manifest(str(tmp_path))

    def test_garbage_manifest_raises(self, tmp_path):
        with open(manifest_path(str(tmp_path)), "w") as fh:
            fh.write("{not json")
        with pytest.raises(DurabilityError):
            load_manifest(str(tmp_path))

    def test_wrong_schema_version_refused(self, tmp_path):
        record = make_manifest().to_dict()
        record["schema_version"] = SCHEMA_VERSION + 1
        with open(manifest_path(str(tmp_path)), "w") as fh:
            json.dump(record, fh)
        with pytest.raises(DurabilityError):
            load_manifest(str(tmp_path))

    def test_record_for_unknown_epoch(self):
        manifest = make_manifest(n_epochs=1)
        assert manifest.record_for(1).epoch == 1
        with pytest.raises(DurabilityError):
            manifest.record_for(5)

    def test_empty_manifest_has_epoch_zero(self):
        manifest = RunManifest(run_id="t", program={}, spec={})
        assert manifest.committed_epoch == 0
        assert manifest.latest is None


class TestAtomicWrite:
    def test_writes_and_removes_temp(self, tmp_path):
        path = str(tmp_path / "m.json")
        atomic_write_json(path, {"a": 1})
        assert json.load(open(path)) == {"a": 1}
        assert not os.path.exists(path + ".tmp")

    def test_unknown_crash_point_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            atomic_write_json(str(tmp_path / "m.json"), {},
                              crash_at="nope")

    def test_crash_before_replace_keeps_old(self, tmp_path):
        path = str(tmp_path / "m.json")
        atomic_write_json(path, {"v": 1})
        for point in CRASH_POINTS[:4]:
            with pytest.raises(SimulatedCrash):
                atomic_write_json(path, {"v": 2}, crash_at=point)
            assert json.load(open(path)) == {"v": 1}

    def test_crash_after_replace_has_new(self, tmp_path):
        path = str(tmp_path / "m.json")
        atomic_write_json(path, {"v": 1})
        with pytest.raises(SimulatedCrash):
            atomic_write_json(path, {"v": 2}, crash_at="after-replace")
        assert json.load(open(path)) == {"v": 2}


class TestFingerprints:
    def test_stable_across_builds(self):
        assert sdg_fingerprint(build_kv_sdg()) == \
            sdg_fingerprint(build_kv_sdg())

    def test_differs_across_programs(self):
        assert sdg_fingerprint(build_kv_sdg()) != \
            sdg_fingerprint(build_wordcount_sdg(1000))


class TestFaultCodec:
    def test_fault_round_trip(self):
        for fault in (KillNode(at_step=7, se="table", index=1),
                      ScaleUp(at_step=9, te="count")):
            back = fault_from_dict(fault_to_dict(fault))
            assert back == fault

    def test_plan_round_trip(self):
        plan = random_plan(3, horizon=600, se="table", entry_te="serve")
        back = FaultPlan.from_dict(plan.to_dict())
        assert list(back) == list(plan)
        assert back.seed == plan.seed

    def test_unknown_fault_type_raises(self):
        with pytest.raises(ChaosError):
            fault_from_dict({"type": "MeteorStrike", "at_step": 1})

    def test_bad_fields_raise(self):
        with pytest.raises(ChaosError):
            fault_from_dict({"type": "KillNode", "bogus": 1})

"""Labelled feature-vector workload for logistic regression (§6.2).

Generates two Gaussian clusters separated by a configurable margin
along a random hyperplane — the standard synthetic stand-in for the
100 GB LR dataset shipped with Spark's release that the paper used.
"""

from __future__ import annotations

import random
from typing import Iterator


class LabelledPoints:
    """A deterministic stream of ``(features, label)`` pairs."""

    def __init__(self, dimensions: int = 10, margin: float = 1.0,
                 noise: float = 0.5, seed: int = 3) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        self.dimensions = dimensions
        self.margin = margin
        self.noise = noise
        self._rng = random.Random(seed)
        # A fixed random separating direction (unit-ish vector).
        self._direction = [
            self._rng.uniform(-1, 1) for _ in range(dimensions)
        ]
        norm = sum(d * d for d in self._direction) ** 0.5
        self._direction = [d / norm for d in self._direction]

    def points(self, count: int) -> Iterator[tuple[list[float], int]]:
        """``count`` labelled points; features include a bias term."""
        for _ in range(count):
            label = self._rng.randint(0, 1)
            sign = 1.0 if label else -1.0
            features = [1.0]  # bias
            for direction in self._direction:
                features.append(
                    sign * self.margin * direction
                    + self._rng.gauss(0, self.noise)
                )
            yield features, label

    def accuracy_of(self, predict, sample: int = 500) -> float:
        """Fraction of a fresh sample classified correctly by
        ``predict(features) -> probability``."""
        correct = 0
        total = 0
        for features, label in self.points(sample):
            total += 1
            if (predict(features) > 0.5) == bool(label):
                correct += 1
        return correct / total

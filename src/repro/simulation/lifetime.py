"""Cluster-lifetime simulation: availability across failures (§6.4).

Composes the per-figure models into a timeline: a partitioned cluster
serves a fixed offered load; nodes fail at scheduled times; each failed
partition is unavailable for exactly the m-to-n recovery time of
Fig. 11's model, then rejoins. The output — throughput and nodes-up per
second — shows what the recovery-time numbers *mean* operationally:
faster strategies shrink the dip, and the served-request deficit is
(failures x recovery time x per-node load).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulation.events import EventLoop
from repro.simulation.recovery_model import RecoveryParams, recovery_time


@dataclass(frozen=True)
class LifetimeConfig:
    """Inputs of the lifetime timeline."""

    n_nodes: int = 4
    per_node_offered: float = 45_000.0
    per_node_capacity: float = 50_000.0
    state_bytes_per_node: float = 2e9
    #: Steady-state fractional capacity cost of async checkpointing.
    checkpoint_overhead: float = 0.03
    #: (time_s, node_index) failure injections.
    failures: tuple[tuple[float, int], ...] = ((20.0, 0),)
    #: m-to-n restore strategy applied to every recovery.
    m_backups: int = 2
    n_recovering: int = 2
    recovery_params: RecoveryParams = field(
        default_factory=RecoveryParams
    )
    duration_s: float = 60.0


@dataclass
class LifetimePoint:
    t: float
    throughput: float
    nodes_up: int
    event: str | None = None


@dataclass
class LifetimeResult:
    timeline: list[LifetimePoint]
    served_total: float
    offered_total: float
    recovery_times: list[float]

    @property
    def lost_requests(self) -> float:
        return self.offered_total - self.served_total

    @property
    def availability(self) -> float:
        return self.served_total / self.offered_total


def simulate_lifetime(config: LifetimeConfig) -> LifetimeResult:
    """Run the timeline; one sample per simulated second."""
    if config.n_nodes < 1 or config.duration_s <= 0:
        raise SimulationError("invalid lifetime configuration")
    for _t, node in config.failures:
        if not 0 <= node < config.n_nodes:
            raise SimulationError(f"failure targets unknown node {node}")

    loop = EventLoop()
    node_up = [True] * config.n_nodes
    pending_events: dict[float, str] = {}
    recovery_times: list[float] = []

    def fail(node: int) -> None:
        if not node_up[node]:
            return
        node_up[node] = False
        duration = recovery_time(
            config.state_bytes_per_node, config.m_backups,
            config.n_recovering, config.recovery_params,
        )
        recovery_times.append(duration)
        pending_events[loop.now] = f"node {node} failed"
        loop.schedule(duration, recover, node)

    def recover(node: int) -> None:
        node_up[node] = True
        pending_events[loop.now] = f"node {node} recovered"

    for time_s, node in config.failures:
        loop.schedule_at(time_s, fail, node)

    per_node_served_rate = min(
        config.per_node_offered,
        config.per_node_capacity * (1 - config.checkpoint_overhead),
    )

    timeline: list[LifetimePoint] = []
    served_total = 0.0
    t = 0.0
    step_s = 1.0
    while t < config.duration_s:
        loop.run_until(t)
        up = sum(node_up)
        throughput = per_node_served_rate * up
        served_total += throughput * step_s
        event = None
        for event_time in list(pending_events):
            if event_time <= t:
                event = pending_events.pop(event_time)
        timeline.append(LifetimePoint(t=t, throughput=throughput,
                                      nodes_up=up, event=event))
        t += step_s

    offered_total = (config.per_node_offered * config.n_nodes
                     * config.duration_s)
    return LifetimeResult(timeline=timeline, served_total=served_total,
                          offered_total=offered_total,
                          recovery_times=recovery_times)

"""Zipf-distributed sampling shared by the workload generators.

Both user/item popularity (ratings) and word frequency (text) are
heavy-tailed; a Zipf law with exponent ``s`` around 1 matches the real
datasets the paper used closely enough for the experiments' purposes
(skewed key popularity, hot partitions, co-occurrence density).
"""

from __future__ import annotations

import bisect
import random


class ZipfSampler:
    """Samples ranks ``0..n-1`` with probability ∝ 1/(rank+1)^s."""

    def __init__(self, n: int, s: float = 1.0, seed: int = 0) -> None:
        if n < 1:
            raise ValueError(f"population must be >= 1, got {n}")
        if s < 0:
            raise ValueError(f"exponent must be >= 0, got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = 0.0
        self._cumulative: list[float] = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self) -> int:
        """One rank, skew-weighted."""
        point = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, point)

    def sample_many(self, count: int) -> list[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        """Exact probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} out of range")
        return (1.0 / (rank + 1) ** self.s) / self._total

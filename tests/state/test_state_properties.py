"""Property-based tests for state-element invariants.

The invariants checked here are the ones the paper's recovery mechanism
relies on: the dirty-state overlay must be transparent to readers, a
checkpoint snapshot must be exactly the pre-checkpoint contents, chunking
must be a lossless partition of the snapshot, and partitioning must be a
disjoint cover of the key space.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.state import HashPartitioner, KeyValueMap, Matrix, Vector

keys = st.one_of(st.integers(0, 200), st.text(max_size=8))
values = st.integers(-1000, 1000)
ops = st.lists(st.tuples(keys, values), max_size=60)


def apply_model(pairs):
    model = {}
    for key, value in pairs:
        model[key] = value
    return model


@given(before=ops, during=ops)
def test_overlay_reads_match_plain_dict_semantics(before, during):
    """Reads through the overlay behave exactly like an unfrozen map."""
    kv = KeyValueMap()
    for key, value in before:
        kv.put(key, value)
    kv.begin_checkpoint()
    for key, value in during:
        kv.put(key, value)
    expected = apply_model(before + during)
    for key, value in expected.items():
        assert kv.get(key) == value
    assert sorted(map(repr, kv.keys())) == sorted(map(repr, expected))
    kv.consolidate()


@given(before=ops, during=ops)
def test_snapshot_is_exactly_pre_checkpoint_contents(before, during):
    kv = KeyValueMap()
    for key, value in before:
        kv.put(key, value)
    kv.begin_checkpoint()
    snapshot_before_writes = dict(kv.snapshot_items())
    for key, value in during:
        kv.put(key, value)
    assert dict(kv.snapshot_items()) == snapshot_before_writes
    assert snapshot_before_writes == apply_model(before)
    kv.consolidate()


@given(before=ops, during=ops)
def test_consolidate_equals_uninterrupted_execution(before, during):
    """checkpoint+consolidate is invisible: same result as no checkpoint."""
    interrupted = KeyValueMap()
    plain = KeyValueMap()
    for key, value in before:
        interrupted.put(key, value)
        plain.put(key, value)
    interrupted.begin_checkpoint()
    for key, value in during:
        interrupted.put(key, value)
        plain.put(key, value)
    interrupted.consolidate()
    assert sorted(map(repr, interrupted.items())) == sorted(
        map(repr, plain.items())
    )


@given(pairs=ops, m=st.integers(1, 7))
def test_chunking_is_lossless(pairs, m):
    kv = KeyValueMap()
    for key, value in pairs:
        kv.put(key, value)
    restored = KeyValueMap.from_chunks(kv, kv.to_chunks(m))
    assert sorted(map(repr, restored.items())) == sorted(
        map(repr, kv.items())
    )


@given(pairs=ops, n=st.integers(1, 6))
def test_partitions_are_a_disjoint_cover(pairs, n):
    kv = KeyValueMap()
    for key, value in pairs:
        kv.put(key, value)
    partitioner = HashPartitioner(n)
    parts = [kv.extract_partition(partitioner, i) for i in range(n)]
    collected = [key for part in parts for key in part.keys()]
    assert len(collected) == len(kv.keys())
    assert sorted(map(repr, collected)) == sorted(map(repr, kv.keys()))


@given(
    cells=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15),
                  st.floats(-100, 100, allow_nan=False)),
        max_size=40,
    ),
    vec=st.lists(st.floats(-10, 10, allow_nan=False), max_size=16),
)
@settings(max_examples=50)
def test_matrix_multiply_matches_reference(cells, vec):
    m = Matrix()
    model = {}
    for row, col, value in cells:
        m.set_element(row, col, value)
        model[(row, col)] = value
    result = m.multiply(Vector(values=vec))
    expected = {}
    for (row, col), value in model.items():
        if col < len(vec):
            expected[row] = expected.get(row, 0.0) + value * vec[col]
    for row, total in expected.items():
        assert abs(result.get(row) - total) < 1e-9


@given(ops_list=st.lists(st.tuples(st.integers(0, 30), values), max_size=50))
def test_vector_checkpoint_transparency(ops_list):
    plain = Vector()
    checkpointed = Vector()
    mid = len(ops_list) // 2
    for index, value in ops_list[:mid]:
        plain.set(index, value)
        checkpointed.set(index, value)
    checkpointed.begin_checkpoint()
    for index, value in ops_list[mid:]:
        plain.set(index, value)
        checkpointed.set(index, value)
    assert checkpointed.to_list() == plain.to_list()
    checkpointed.consolidate()
    assert checkpointed.to_list() == plain.to_list()

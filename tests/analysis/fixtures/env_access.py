"""SDG102 via an import alias: ``import socket as sck``.

Location independence (§4.1): TEs migrate between nodes, so the
hostname observed here differs run to run and node to node.
"""

import socket as sck

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class HostnameTagger(SDGProgram):
    """Records which node served each write."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def tag(self, key):
        host = sck.gethostname()
        self.table.put(key, host)

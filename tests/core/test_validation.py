"""Unit tests for SDG structural validation."""

import pytest

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.errors import ValidationError
from repro.state import KeyValueMap, Matrix

from tests.helpers import build_cf_sdg, build_iterative_sdg, build_kv_sdg, noop


class TestValidGraphs:
    def test_cf_sdg_validates(self):
        build_cf_sdg().validate()

    def test_kv_sdg_validates(self):
        build_kv_sdg().validate()

    def test_iterative_sdg_validates(self):
        build_iterative_sdg().validate()


class TestAccessModeInvariants:
    def test_global_access_requires_partial_state(self):
        sdg = SDG()
        sdg.add_state("s", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("t", noop, state="s", access=AccessMode.GLOBAL,
                     is_entry=True)
        with pytest.raises(ValidationError, match="global access"):
            sdg.validate()

    def test_partitioned_access_requires_partitioned_state(self):
        sdg = SDG()
        sdg.add_state("s", KeyValueMap, kind=StateKind.PARTIAL)
        sdg.add_task("t", noop, state="s", access=AccessMode.PARTITIONED,
                     is_entry=True)
        with pytest.raises(ValidationError, match="partitioned access"):
            sdg.validate()

    def test_local_access_on_partitioned_state_rejected(self):
        sdg = SDG()
        sdg.add_state("s", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("t", noop, state="s", access=AccessMode.LOCAL,
                     is_entry=True)
        with pytest.raises(ValidationError, match="local access"):
            sdg.validate()


class TestUniquePartitioning:
    def test_conflicting_keys_rejected(self):
        sdg = SDG()
        sdg.add_state("m", Matrix, kind=StateKind.PARTITIONED)
        sdg.add_task("src", noop, is_entry=True)
        sdg.add_task("byRow", noop, state="m",
                     access=AccessMode.PARTITIONED)
        sdg.add_task("byCol", noop, state="m",
                     access=AccessMode.PARTITIONED)
        sdg.connect("src", "byRow", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda x: x[0], key_name="row")
        sdg.connect("src", "byCol", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda x: x[1], key_name="col")
        with pytest.raises(ValidationError, match="conflicting"):
            sdg.validate()

    def test_agreeing_keys_accepted(self):
        sdg = SDG()
        sdg.add_state("m", Matrix, kind=StateKind.PARTITIONED)
        sdg.add_task("src", noop, is_entry=True)
        sdg.add_task("a", noop, state="m", access=AccessMode.PARTITIONED)
        sdg.add_task("b", noop, state="m", access=AccessMode.PARTITIONED)
        sdg.connect("src", "a", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda x: x[0], key_name="row")
        sdg.connect("src", "b", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda x: x[0], key_name="row")
        sdg.validate()

    def test_unkeyed_route_into_partitioned_state_rejected(self):
        sdg = SDG()
        sdg.add_state("m", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("src", noop, is_entry=True)
        sdg.add_task("sink", noop, state="m",
                     access=AccessMode.PARTITIONED)
        sdg.connect("src", "sink", Dispatch.ONE_TO_ANY)
        with pytest.raises(ValidationError, match="keyed dispatch"):
            sdg.validate()

    def test_entry_into_partitioned_state_needs_entry_key(self):
        sdg = SDG()
        sdg.add_state("m", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("serve", noop, state="m",
                     access=AccessMode.PARTITIONED, is_entry=True)
        with pytest.raises(ValidationError, match="entry_key_fn"):
            sdg.validate()


class TestGatherInvariants:
    def test_gather_must_end_at_merge(self):
        sdg = SDG()
        sdg.add_task("a", noop, is_entry=True)
        sdg.add_task("b", noop)
        sdg.connect("a", "b", Dispatch.ALL_TO_ONE)
        with pytest.raises(ValidationError, match="merge"):
            sdg.validate()

    def test_merge_without_gather_input_rejected(self):
        sdg = SDG()
        sdg.add_task("a", noop, is_entry=True)
        sdg.add_task("m", noop, is_merge=True)
        sdg.connect("a", "m", Dispatch.ONE_TO_ANY)
        with pytest.raises(ValidationError, match="all-to-one"):
            sdg.validate()


class TestReachability:
    def test_no_entry_rejected(self):
        sdg = SDG()
        sdg.add_task("t", noop)
        with pytest.raises(ValidationError, match="no entry"):
            sdg.validate()

    def test_unreachable_te_rejected(self):
        sdg = SDG()
        sdg.add_task("a", noop, is_entry=True)
        sdg.add_task("orphan", noop)
        with pytest.raises(ValidationError, match="unreachable"):
            sdg.validate()


class TestCyclicGraphs:
    """Regression tests: cycles must neither hang the reachability
    walk nor be reported as unreachable when an entry feeds them."""

    def _cycle(self, with_entry: bool) -> SDG:
        sdg = SDG()
        sdg.add_task("a", noop, is_entry=with_entry)
        sdg.add_task("b", noop)
        sdg.connect("a", "b", Dispatch.ONE_TO_ANY)
        sdg.connect("b", "a", Dispatch.ONE_TO_ANY)
        return sdg

    def test_cycle_fed_by_entry_validates(self):
        # a -> b -> a: both TEs are reachable; validate() terminates.
        self._cycle(with_entry=True).validate()

    def test_entryless_cycle_reports_no_entry_and_terminates(self):
        with pytest.raises(ValidationError, match="no entry"):
            self._cycle(with_entry=False).validate()

    def test_cycle_detached_from_entry_reported_unreachable(self):
        sdg = self._cycle(with_entry=True)
        sdg.add_task("c", noop)
        sdg.add_task("d", noop)
        sdg.connect("c", "d", Dispatch.ONE_TO_ANY)
        sdg.connect("d", "c", Dispatch.ONE_TO_ANY)
        with pytest.raises(ValidationError, match=r"\['c', 'd'\]"):
            sdg.validate()

    def test_self_loop_validates(self):
        sdg = SDG()
        sdg.add_task("a", noop, is_entry=True)
        sdg.connect("a", "a", Dispatch.ONE_TO_ANY)
        sdg.validate()


class TestCollectMode:
    """collect() returns every violation; validate() raises the first."""

    def test_collect_reports_all_findings_in_validate_order(self):
        from repro.core.validation import collect

        sdg = SDG()
        sdg.add_state("s", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("t", noop, state="s", access=AccessMode.GLOBAL,
                     is_entry=True)
        sdg.add_task("orphan", noop)
        diagnostics = collect(sdg)
        codes = [d.code for d in diagnostics]
        assert "SDG201" in codes and "SDG232" in codes
        with pytest.raises(ValidationError) as exc:
            sdg.validate()
        assert str(exc.value) == diagnostics[0].message

"""Checkpoint backup stores.

A backup store models the "m nodes" of Fig. 4: checkpoint chunks are
distributed round-robin across backup targets so that no single disk or
NIC becomes a bottleneck during backup or restore. Two implementations
are provided — an in-memory store for tests and fast experiments, and a
disk-backed store that actually serialises chunks to files.

Backup integrity is first-class: at save time the store records, in the
checkpoint metadata, the expected chunk count per SE instance and a
CRC-32 checksum per chunk. :meth:`BackupStore.chunks_for` verifies both
on the read path, so a lost chunk (e.g. a backup target offline) or a
corrupted chunk surfaces as a typed
:class:`~repro.errors.BackupIntegrityError` instead of a silently
truncated restore.
"""

from __future__ import annotations

import os
import pickle
import zlib
from typing import TYPE_CHECKING

from repro.errors import BackupIntegrityError, RecoveryError
from repro.state.base import StateChunk

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.checkpoint import NodeCheckpoint


def chunk_checksum(chunk: StateChunk) -> int:
    """CRC-32 of the chunk's serialised form (what goes on the wire)."""
    return zlib.crc32(pickle.dumps(chunk))


class BackupStore:
    """In-memory chunked checkpoint storage across ``m`` backup targets.

    Only the latest checkpoint per (runtime) node is retained, matching
    the paper's protocol where older checkpoints are superseded.
    """

    def __init__(self, m_targets: int = 2) -> None:
        if m_targets < 1:
            raise RecoveryError("backup store needs at least one target")
        self.m_targets = m_targets
        #: target index -> {(node_id, se_key, chunk_index): chunk}
        self._targets: list[dict] = [{} for _ in range(m_targets)]
        #: node_id -> checkpoint metadata (se chunk counts, TE meta)
        self._meta: dict[int, "NodeCheckpoint"] = {}
        self._offline: set[int] = set()
        self._rr = 0

    # -- write path ------------------------------------------------------

    def save(self, checkpoint: "NodeCheckpoint") -> None:
        """Persist a node checkpoint, spreading chunks over targets (B3).

        Records the expected chunk count and a CRC-32 checksum per chunk
        into the checkpoint metadata so the read path can verify
        completeness and integrity.
        """
        online = [i for i in range(self.m_targets)
                  if i not in self._offline]
        if not online:
            raise RecoveryError(
                "cannot save checkpoint: every backup target is offline"
            )
        node_id = checkpoint.node_id
        self._evict(node_id)
        checkpoint.chunk_counts = {
            se_key: len(chunks)
            for se_key, chunks in checkpoint.se_chunks.items()
        }
        checkpoint.chunk_checksums = {
            (se_key, chunk.index): chunk_checksum(chunk)
            for se_key, chunks in checkpoint.se_chunks.items()
            for chunk in chunks
        }
        for se_key, chunks in checkpoint.se_chunks.items():
            for chunk in chunks:
                target = self._targets[online[self._rr % len(online)]]
                self._rr += 1
                target[(node_id, se_key, chunk.index)] = chunk
        self._meta[node_id] = checkpoint

    def _evict(self, node_id: int) -> None:
        for target in self._targets:
            stale = [k for k in target if k[0] == node_id]
            for key in stale:
                del target[key]
        self._meta.pop(node_id, None)

    # -- availability ----------------------------------------------------

    def set_target_offline(self, target: int, offline: bool = True) -> None:
        """Mark one backup target (un)reachable.

        Chunks on an offline target are invisible to the read path — the
        completeness check then reports them as missing — and the write
        path spreads new chunks over the remaining targets only.
        """
        if not 0 <= target < self.m_targets:
            raise RecoveryError(
                f"no backup target {target}; store has {self.m_targets}"
            )
        if offline:
            self._offline.add(target)
        else:
            self._offline.discard(target)

    def offline_targets(self) -> list[int]:
        return sorted(self._offline)

    def corrupt_chunk(self, node_id: int | None = None) -> tuple | None:
        """Tamper with one stored chunk, leaving its checksum stale.

        Chaos/testing hook: deterministically picks the first stored
        chunk (optionally restricted to ``node_id``), replaces its
        payload with a perturbed copy and returns the storage key —
        or ``None`` if nothing matched. The recorded checksum is *not*
        updated, so the read path detects the corruption.
        """
        candidates = sorted(
            (key, i)
            for i, target in enumerate(self._targets)
            for key in target
            if node_id is None or key[0] == node_id
        )
        if not candidates:
            return None
        key, target_index = candidates[0]
        chunk = self._targets[target_index][key]
        self._targets[target_index][key] = self._tampered(chunk)
        return key

    @staticmethod
    def _tampered(chunk: StateChunk) -> StateChunk:
        if chunk.items:
            first_key, first_value = chunk.items[0]
            items = ((first_key, ("corrupted", first_value)),) + \
                chunk.items[1:]
        else:
            items = chunk.items
        meta = dict(chunk.meta)
        meta["__corrupted__"] = True
        return StateChunk(index=chunk.index, total=chunk.total,
                          items=items, meta=meta)

    # -- read path ---------------------------------------------------------

    def has_checkpoint(self, node_id: int) -> bool:
        return node_id in self._meta

    def latest(self, node_id: int) -> "NodeCheckpoint | None":
        """Reassemble the latest checkpoint of ``node_id`` (R1)."""
        meta = self._meta.get(node_id)
        if meta is None:
            return None
        return meta

    def chunks_for(self, node_id: int, se_key: tuple[str, int],
                   verify: bool = True):
        """Stream all chunks of one SE instance, across online targets.

        With ``verify`` (the default), the result is checked against the
        chunk counts and CRC-32 checksums recorded at save time; a gap
        or a mismatch raises :class:`BackupIntegrityError`. Checkpoints
        saved without recorded counts (hand-built fixtures) skip
        verification.
        """
        found = []
        for i, target in enumerate(self._targets):
            if i in self._offline:
                continue
            for (nid, key, _index), chunk in target.items():
                if nid == node_id and key == se_key:
                    found.append(chunk)
        found.sort(key=lambda c: c.index)
        if not verify:
            return found
        meta = self._meta.get(node_id)
        if meta is None:
            return found
        expected = getattr(meta, "chunk_counts", {}).get(se_key)
        if expected is None:
            return found
        indices = [c.index for c in found]
        if indices != list(range(expected)):
            missing = sorted(set(range(expected)) - set(indices))
            raise BackupIntegrityError(
                f"checkpoint of node {node_id}, SE {se_key}: expected "
                f"{expected} chunks but chunk(s) {missing} are missing "
                f"(backup target offline or data lost)"
            )
        checksums = getattr(meta, "chunk_checksums", {})
        for chunk in found:
            recorded = checksums.get((se_key, chunk.index))
            if recorded is not None and chunk_checksum(chunk) != recorded:
                raise BackupIntegrityError(
                    f"checkpoint of node {node_id}, SE {se_key}: chunk "
                    f"{chunk.index} failed its CRC-32 check (stored "
                    f"data corrupted)"
                )
        return found

    def target_loads(self) -> list[int]:
        """Number of chunks per backup target (balance diagnostics)."""
        return [len(t) for t in self._targets]

    def total_chunks(self) -> int:
        return sum(self.target_loads())


class DiskBackupStore(BackupStore):
    """A backup store that writes chunks to ``m`` directory targets.

    Each target directory models one backup node's disk; chunks are
    pickled to individual files, and restore reads them back. Metadata
    (the checkpoint skeleton with TE bookkeeping, chunk counts and
    checksums) is replicated to every target for availability.
    """

    def __init__(self, root: str, m_targets: int = 2) -> None:
        super().__init__(m_targets)
        self.root = root
        self._dirs = [os.path.join(root, f"backup{i}")
                      for i in range(m_targets)]
        for directory in self._dirs:
            os.makedirs(directory, exist_ok=True)

    def save(self, checkpoint: "NodeCheckpoint") -> None:
        super().save(checkpoint)
        node_id = checkpoint.node_id
        for i, target in enumerate(self._targets):
            if i in self._offline:
                continue
            directory = self._dirs[i]
            for name in os.listdir(directory):
                if name.startswith(f"node{node_id}_"):
                    os.unlink(os.path.join(directory, name))
            for (nid, se_key, index), chunk in target.items():
                if nid != node_id:
                    continue
                filename = (
                    f"node{nid}_{se_key[0]}_{se_key[1]}_chunk{index}.pkl"
                )
                with open(os.path.join(directory, filename), "wb") as fh:
                    pickle.dump(chunk, fh)
            meta_path = os.path.join(directory, f"node{node_id}_meta.pkl")
            with open(meta_path, "wb") as fh:
                pickle.dump(checkpoint, fh)

    def corrupt_chunk(self, node_id: int | None = None) -> tuple | None:
        key = super().corrupt_chunk(node_id)
        if key is None:
            return None
        nid, se_key, index = key
        filename = f"node{nid}_{se_key[0]}_{se_key[1]}_chunk{index}.pkl"
        for i, target in enumerate(self._targets):
            if key in target:
                with open(os.path.join(self._dirs[i], filename),
                          "wb") as fh:
                    pickle.dump(target[key], fh)
        return key

    def reload_from_disk(self) -> None:
        """Rebuild the in-memory index from the target directories.

        Used to recover checkpoints across process restarts, or to
        verify that the on-disk representation is complete. Files that
        no longer unpickle (flipped bytes, truncation) are skipped; the
        resulting gap is then caught by the chunk-count check on the
        read path rather than crashing the reload of every other node's
        checkpoints.
        """
        self._targets = [{} for _ in range(self.m_targets)]
        self._meta = {}
        for i, directory in enumerate(self._dirs):
            for name in sorted(os.listdir(directory)):
                path = os.path.join(directory, name)
                try:
                    with open(path, "rb") as fh:
                        payload = pickle.load(fh)
                except Exception:
                    continue  # unreadable file == lost chunk
                if name.endswith("_meta.pkl"):
                    node_id = int(name.split("_")[0][len("node"):])
                    self._meta[node_id] = payload
                else:
                    stem = name[:-len(".pkl")]
                    node_part, rest = stem.split("_", 1)
                    # se names may contain underscores; peel from the right.
                    se_name, se_index, chunk_part = rest.rsplit("_", 2)
                    node_id = int(node_part[len("node"):])
                    index = int(chunk_part[len("chunk"):])
                    self._targets[i][
                        (node_id, (se_name, int(se_index)), index)
                    ] = payload

"""Fig. 5 — CF throughput and latency vs state read/write ratio.

The paper deploys online collaborative filtering on 36 EC2 instances
over the Netflix dataset and sweeps the getRec:addRating ratio from
1:5 to 5:1. Expected shape: 10-14 k requests/s, decreasing as the read
share grows (merge-barrier cost), with sub-second median getRec latency
and a p95 tail within ~1.5 s.

Two parts: the calibrated cluster model regenerates the figure's
series, and the real runtime executes the same workload mix end-to-end
(scaled down) to confirm the mechanism behind the trend — reads cost
more than writes because they fan out across all partial instances.
"""

from conftest import print_figure

from repro.apps import CollaborativeFiltering
from repro.simulation.cf_model import CFModel, ratio_to_read_fraction
from repro.workloads import RatingsWorkload

RATIOS = [(1, 5), (1, 2), (1, 1), (2, 1), (5, 1)]


def compute_figure():
    model = CFModel()
    rows = []
    for reads, writes in RATIOS:
        fraction = ratio_to_read_fraction(reads, writes)
        stick = model.read_latency(fraction)
        rows.append((
            f"{reads}:{writes}",
            model.throughput(fraction),
            stick.p50 * 1000,
            stick.p95 * 1000,
        ))
    return rows


def test_fig5_throughput_and_latency(benchmark):
    rows = benchmark(compute_figure)
    print_figure(
        "Fig. 5: CF throughput/latency vs read:write ratio",
        ["ratio (r:w)", "throughput (req/s)", "p50 latency (ms)",
         "p95 latency (ms)"],
        rows,
    )
    throughputs = [row[1] for row in rows]
    # Paper band: 10k-14k requests/s.
    assert all(9_500 <= t <= 14_500 for t in throughputs)
    # Decreasing with read share (synchronisation barrier cost).
    assert throughputs == sorted(throughputs, reverse=True)
    assert throughputs[0] / throughputs[-1] > 1.3
    # p95 within the paper's ~1.5 s staleness bound.
    assert all(row[3] <= 1_600 for row in rows)


def test_fig5_mechanism_on_real_runtime(benchmark):
    """Reads perform work on every partial instance; writes on one.

    The measured per-operation step counts of the real engine confirm
    the model's premise that the read path costs more as partial
    instances are added.
    """

    def run():
        costs = {}
        for kind, fraction in (("writes", 0.0), ("reads", 1.0)):
            app = CollaborativeFiltering.launch(user_item=2, co_occ=4)
            seed_load = RatingsWorkload(n_users=30, n_items=15,
                                        read_fraction=0.0, seed=3)
            seed_load.apply_to(app, 100)
            app.run()
            before = app.runtime.total_steps
            workload = RatingsWorkload(n_users=30, n_items=15,
                                       read_fraction=fraction, seed=4)
            workload.apply_to(app, 50)
            app.run()
            costs[kind] = (app.runtime.total_steps - before) / 50
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 5 mechanism: engine steps per operation (4 partial "
        "instances)",
        ["operation", "steps/op"],
        [(k, float(v)) for k, v in costs.items()],
    )
    assert costs["reads"] > costs["writes"]

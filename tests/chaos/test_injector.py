"""The fault injector: plans fire deterministically at logical steps."""

import pytest

from repro.apps import KeyValueStore
from repro.chaos import (
    CorruptChunk,
    CrashTask,
    DropEnvelope,
    DuplicateEnvelope,
    FaultInjector,
    FaultPlan,
    KillNode,
    ScaleUp,
    SlowNode,
    TargetOffline,
    random_plan,
)
from repro.errors import ChaosError
from repro.recovery import BackupStore, CheckpointManager
from repro.workloads import KVWorkload


def put_te_of(app):
    return app.translation.entry_info("put").entry_te


def merged_state(app):
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    return merged


class TestPlans:
    def test_negative_step_rejected(self):
        with pytest.raises(ChaosError, match="before step 0"):
            FaultPlan([KillNode(at_step=-1, node_id=0)])

    def test_plan_iterates_in_step_order(self):
        plan = FaultPlan([
            KillNode(at_step=30, node_id=0),
            CrashTask(at_step=10, te="serve"),
            SlowNode(at_step=20, factor=0.5, node_id=1),
        ])
        assert [f.at_step for f in plan] == [10, 20, 30]
        assert len(plan) == 3
        assert len(plan.kills()) == 1

    def test_random_plan_is_deterministic_per_seed(self):
        kwargs = dict(horizon=600, se="table", entry_te="serve")
        assert (random_plan(9, **kwargs).faults
                == random_plan(9, **kwargs).faults)
        assert (random_plan(9, **kwargs).faults
                != random_plan(10, **kwargs).faults)

    def test_random_plan_rejects_too_short_horizon(self):
        with pytest.raises(ChaosError, match="too short"):
            random_plan(1, horizon=100, se="table", n_kills=3, min_gap=60)

    def test_store_faults_require_a_store(self):
        app = KeyValueStore.launch(table=1)
        plan = FaultPlan([CorruptChunk(at_step=1)])
        with pytest.raises(ChaosError, match="no store"):
            FaultInjector(app.runtime, plan)
        plan = FaultPlan([TargetOffline(at_step=1, target=0)])
        with pytest.raises(ChaosError, match="no store"):
            FaultInjector(app.runtime, plan)


class TestFiring:
    def test_kill_node_fires_at_its_step(self):
        app = KeyValueStore.launch(table=2)
        expected = app.runtime.se_instance("table", 1).node_id
        injector = FaultInjector(
            app.runtime, FaultPlan([KillNode(at_step=25, se="table",
                                             index=1)])
        ).install()
        for i in range(80):
            app.put(i, i)
        app.run()
        assert not app.runtime.nodes[expected].alive
        (record,) = injector.fired()
        assert record.step >= 25
        assert f"killed node {expected}" in record.detail
        assert injector.done

    def test_selector_resolves_against_live_topology(self):
        """A second kill of the same selector hits the replacement."""
        from repro.recovery import RecoveryManager

        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        recovery = RecoveryManager(app.runtime, store)
        injector = FaultInjector(
            app.runtime,
            FaultPlan([KillNode(at_step=200, se="table", index=0)]),
        ).install()

        for i in range(50):
            app.put(i, i)
        app.run()
        manager.checkpoint_all()
        first = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(first)
        recovery.recover_node(first)
        replacement = app.runtime.se_instance("table", 0).node_id
        assert replacement != first

        for i in range(400):
            app.put(i, i)
        app.run()
        (record,) = injector.fired()
        assert f"killed node {replacement}" in record.detail

    def test_slow_node_sets_speed_without_changing_results(self):
        app = KeyValueStore.launch(table=2)
        target = app.runtime.se_instance("table", 0).node_id
        injector = FaultInjector(
            app.runtime,
            FaultPlan([SlowNode(at_step=10, factor=0.5, se="table",
                                index=0)]),
        ).install()
        oracle = KeyValueStore()
        for op in KVWorkload(n_keys=40, read_fraction=0.0, seed=3).ops(200):
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        assert app.runtime.nodes[target].speed == 0.5
        assert len(injector.fired()) == 1
        assert merged_state(app) == dict(oracle.table.items())

    def test_duplicate_envelope_is_discarded_by_timestamp_dedup(self):
        app = KeyValueStore.launch(table=2)
        put_te = put_te_of(app)
        plan = FaultPlan([
            DuplicateEnvelope(at_step=step, te=put_te, index=step)
            for step in (10, 25, 40)
        ])
        injector = FaultInjector(app.runtime, plan).install()
        oracle = KeyValueStore()
        for op in KVWorkload(n_keys=40, read_fraction=0.0, seed=5).ops(200):
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        assert injector.fired()
        assert merged_state(app) == dict(oracle.table.items())

    def test_drop_envelope_kills_the_destination_node(self):
        app = KeyValueStore.launch(table=2)
        put_te = put_te_of(app)
        injector = FaultInjector(
            app.runtime, FaultPlan([DropEnvelope(at_step=5, te=put_te)])
        ).install()
        for i in range(80):
            app.put(i, i)
        app.run()
        (record,) = injector.fired()
        assert "dropped ts=" in record.detail
        dead = [n for n in app.runtime.nodes.values() if not n.alive]
        assert len(dead) == 1

    def test_crash_task_arms_one_instance(self):
        app = KeyValueStore.launch(table=2)
        put_te = put_te_of(app)
        # A no-op handler opts the engine into crash-stop semantics.
        app.runtime.add_crash_handler(lambda *args: None)
        injector = FaultInjector(
            app.runtime, FaultPlan([CrashTask(at_step=5, te=put_te,
                                              index=0)])
        ).install()
        for i in range(80):
            app.put(i, i)
        app.run()
        (record,) = injector.fired()
        assert "armed crash" in record.detail
        assert len([n for n in app.runtime.nodes.values()
                    if not n.alive]) == 1

    def test_backup_store_faults(self):
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        injector = FaultInjector(
            app.runtime,
            FaultPlan([TargetOffline(at_step=30, target=1),
                       CorruptChunk(at_step=60)]),
            store=store,
        ).install()
        for i in range(20):
            app.put(i, i)
        app.run()
        manager.checkpoint_all()
        for i in range(120):
            app.put(i, i)
        app.run()
        outcomes = {type(r.fault).__name__: r.outcome
                    for r in injector.injected}
        assert outcomes == {"TargetOffline": "fired",
                            "CorruptChunk": "fired"}
        assert store.offline_targets() == [1]

    def test_missed_selector_is_logged_as_skipped(self):
        app = KeyValueStore.launch(table=2)
        victim = app.runtime.se_instance("table", 0).node_id
        injector = FaultInjector(
            app.runtime,
            FaultPlan([KillNode(at_step=5, node_id=victim),
                       KillNode(at_step=10, node_id=victim)]),
        ).install()
        for i in range(100):
            app.put(i, i)
        app.run()
        outcomes = [r.outcome for r in injector.injected]
        assert outcomes == ["fired", "skipped"]
        assert injector.done


class TestScaleUpFault:
    def test_scale_up_fires_and_grows_the_te(self):
        app = KeyValueStore.launch(table=2)
        put_te = put_te_of(app)
        injector = FaultInjector(
            app.runtime, FaultPlan([ScaleUp(at_step=20, te=put_te)])
        ).install()
        for i in range(80):
            app.put(i, i)
        app.run()
        assert app.runtime.te_slot_count(put_te) == 3
        (record,) = injector.fired()
        assert "scaled" in record.detail

    def test_refused_scale_up_is_rescheduled_until_it_lands(self):
        app = KeyValueStore.launch(table=2)
        put_te = put_te_of(app)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        injector = FaultInjector(
            app.runtime, FaultPlan([ScaleUp(at_step=2, te=put_te)])
        ).install()
        # An open checkpoint makes the engine refuse to repartition.
        pending = manager.begin(app.runtime.se_instance("table", 0).node_id)
        for i in range(40):
            app.put(i, i)
        app.run()
        assert any(r.outcome == "rescheduled" for r in injector.injected)
        assert app.runtime.te_slot_count(put_te) == 2

        manager.complete(pending)
        for i in range(60):
            app.put(i, i)
        app.run()
        assert any(r.outcome == "fired" for r in injector.injected)
        assert app.runtime.te_slot_count(put_te) == 3
        assert injector.done

    def test_unscalable_te_is_refused_for_good(self):
        app = KeyValueStore.launch(table=2)
        put_te = put_te_of(app)
        app.runtime.config.max_instances = 2
        injector = FaultInjector(
            app.runtime, FaultPlan([ScaleUp(at_step=5, te=put_te)])
        ).install()
        for i in range(40):
            app.put(i, i)
        app.run()
        (record,) = [r for r in injector.injected
                     if r.outcome == "refused"]
        assert "cannot scale further" in record.detail
        assert injector.done

"""SDG101 laundered through a helper method.

The entry itself is spotless; the nondeterminism lives in
``_jitter``. The direct restriction scan flags the random call at the
helper; the interprocedural pass additionally reports the
*reachability* — that ``put_jittered`` executes it — with the call
chain in both renderings.
"""

import random

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class JitteredStore(SDGProgram):
    """Perturbs every stored value through a helper."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def put_jittered(self, key, value):
        noisy = self._jitter(value)
        self.table.put(key, noisy)

    def _jitter(self, value):
        return value + random.random()

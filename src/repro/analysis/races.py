"""Pass 1 — partial-state race detection (``SDG301``).

A *partial* SE is replicated: every instance updates its own copy and
the copies are reconciled only by an explicit merge TE behind a gather
barrier (§3.2, §4.2 rule 5). Inside a local-access TE a
read-modify-write on partial state is therefore *replica-dependent*:
each instance observes its own intermediate value.

That is fine as long as the value stays inside the TE (the paper's CF
co-occurrence update does exactly this). It becomes a race the moment
the value **escapes** onto a downstream dataflow edge: the payload now
depends on which replica happened to serve the item, downstream keyed
state absorbs replica-divergent values, and no merge function can
reconcile them after the fact — the results differ run to run and
break the §4.1 determinism that replay recovery relies on.

The pass finds, per entry method, blocks with *local* access to a
partial field that both read and write it, taints every variable
defined from a read of that field (with intra-block propagation
through assignments), and reports any tainted variable that is live
out of the block (i.e. ships on the outgoing dataflow edge).
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import (
    READ_METHODS,
    WRITE_METHODS,
    ProgramModel,
    field_method_calls,
    stmt_reads_field,
)
from repro.core.elements import AccessMode
from repro.translate.liveness import uses_defs


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    for ir in model.entries.values():
        for index, block in enumerate(ir.blocks):
            if block.access is None or block.is_merge:
                continue
            if block.access.mode is not AccessMode.LOCAL:
                continue
            field = block.access.field
            if field not in model.partial_fields:
                continue
            live_out = (set(ir.lives[index + 1])
                        if index + 1 < len(ir.blocks) else set())
            if not live_out:
                continue
            _check_block(block, field, model.partial_fields, live_out,
                         ir.method, sink, interproc=model.interproc)


def block_taints(
    block, field: str, partial_fields: set[str],
    interproc=None, caller: str | None = None,
) -> tuple[bool, bool, set[str], dict[str, ast.stmt]]:
    """Taint facts for one block's access to a partial ``field``.

    Returns ``(writes, reads, tainted, taint_site)``: whether the block
    writes / reads the field, the set of variables derived (directly or
    transitively) from a read of it, and the statement that first
    tainted each. Shared between the SDG301 warning pass (which reports
    tainted names that are live out) and the capability certifier
    (which certifies a read-modify-write block as ``BATCHABLE_RMW``
    exactly when *no* tainted name escapes).

    With ``interproc`` (a :class:`~repro.analysis.summaries.
    ProgramSummaries`) and ``caller`` (the entry method name), taint
    additionally flows through helper calls that mutate their
    parameters: in a statement that touches tainted data,
    ``self._stash(out, seen)`` taints ``out`` when the summary of
    ``_stash`` proves it mutates its first parameter. The extension is
    strictly additive — more taint, never less — so it can only
    *remove* a ``BATCHABLE_RMW`` certificate, never forge one.
    """
    writes = False
    reads = False
    tainted: set[str] = set()
    taint_site: dict[str, ast.stmt] = {}
    for stmt in block.statements:
        for _field, call_method, _node in field_method_calls(
            stmt, partial_fields
        ):
            if _field != field:
                continue
            if (call_method in WRITE_METHODS
                    or call_method not in READ_METHODS):
                writes = True
            if call_method in READ_METHODS:
                reads = True
        stmt_uses, stmt_defs = uses_defs(stmt)
        derived = (
            stmt_reads_field(stmt, field, partial_fields)
            or bool(stmt_uses & tainted)
        )
        if derived:
            for name in stmt_defs:
                tainted.add(name)
                taint_site.setdefault(name, stmt)
            if interproc is not None:
                for name in _mutated_call_args(stmt, interproc, caller):
                    tainted.add(name)
                    taint_site.setdefault(name, stmt)
    return writes, reads, tainted, taint_site


def _mutated_call_args(stmt: ast.stmt, interproc,
                       caller: str | None) -> set[str]:
    """Names passed to known callees at parameter positions the callee
    summary proves it mutates."""
    mutated: set[str] = set()
    for call in ast.walk(stmt):
        if not isinstance(call, ast.Call):
            continue
        target = interproc.graph.resolve_call(caller or "", call)
        if target is None:
            continue
        summary = interproc.get(target)
        for position, arg in enumerate(call.args):
            if position in summary.mutated_params and isinstance(
                arg, ast.Name
            ):
                mutated.add(arg.id)
    return mutated


def _check_block(block, field: str, partial_fields: set[str],
                 live_out: set[str], method: str,
                 sink: DiagnosticSink, interproc=None) -> None:
    writes, _reads, tainted, taint_site = block_taints(
        block, field, partial_fields, interproc=interproc,
        caller=method,
    )
    if not writes:
        return
    for name in sorted(tainted & live_out):
        site = taint_site[name]
        sink.emit(
            "SDG301",
            f"method {method!r}: {name!r} is derived from partial SE "
            f"{field!r} inside a read-modify-write block and escapes "
            f"onto the downstream dataflow; its value depends on which "
            f"replica served the item, so downstream state absorbs "
            f"replica-divergent results the merge cannot reconcile",
            lineno=site.lineno, col=site.col_offset, origin=method,
            hint=f"keep values read from {field!r} inside the block, or "
                 f"read the field through global_()+merge to reconcile "
                 f"replicas before the value travels",
        )

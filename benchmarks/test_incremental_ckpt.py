"""Incremental vs full checkpointing on a large skewed KV state.

The acceptance scenario for the delta-checkpoint subsystem: a
100k-entry state element takes 1 000 zipf-skewed updates between
checkpoint cycles. Under full-every-time, every cycle re-persists all
100k entries; under base+delta, an incremental cycle moves only the
keys actually touched — the journal bounds the chunk payload by the
number of *distinct* updated keys, never by the state size.
"""

from conftest import print_figure

from repro.state import KeyValueMap
from repro.workloads.zipf import ZipfSampler

STATE_ENTRIES = 100_000
UPDATES_PER_CYCLE = 1_000
CYCLES = 5
N_CHUNKS = 8


def build_state():
    se = KeyValueMap()
    for i in range(STATE_ENTRIES):
        se.put(i, i)
    se.mark_clean()
    return se


def run_cycles(se, incremental):
    """Run CYCLES update+checkpoint rounds; returns per-cycle entry
    counts moved to the backup store and the distinct keys updated."""
    sampler = ZipfSampler(STATE_ENTRIES, s=1.0, seed=7)
    moved, distinct = [], []
    # Cycle 0 is always the full base.
    se.begin_checkpoint()
    se.to_chunks(N_CHUNKS)
    se.mark_clean()
    se.consolidate()
    for cycle in range(1, CYCLES + 1):
        keys = sampler.sample_many(UPDATES_PER_CYCLE)
        for key in keys:
            se.put(key, key + cycle)
        distinct.append(len(set(keys)))
        se.begin_checkpoint()
        if incremental:
            chunks = se.to_delta_chunks(N_CHUNKS, version=cycle + 1,
                                        base_version=cycle)
        else:
            chunks = se.to_chunks(N_CHUNKS)
        moved.append(sum(chunk.entry_count() for chunk in chunks))
        se.mark_clean()
        se.consolidate()
    return moved, distinct


def compute_comparison():
    full_moved, _ = run_cycles(build_state(), incremental=False)
    delta_moved, distinct = run_cycles(build_state(), incremental=True)
    rows = []
    for cycle, (full, delta, touched) in enumerate(
            zip(full_moved, delta_moved, distinct), start=1):
        rows.append((f"cycle {cycle}", full, delta, touched,
                     full / max(delta, 1)))
    return rows


def test_incremental_moves_only_the_mutations(benchmark):
    rows = benchmark.pedantic(compute_comparison, rounds=1, iterations=1)
    print_figure(
        "Incremental checkpointing: entries persisted per cycle "
        f"({STATE_ENTRIES} entries, {UPDATES_PER_CYCLE} zipf updates/cycle)",
        ["cycle", "full ckpt", "delta ckpt", "distinct updates",
         "reduction x"],
        rows,
    )
    for _cycle, full, delta, touched, _reduction in rows:
        # Full cycles re-persist the whole (possibly grown) state.
        assert full >= STATE_ENTRIES
        # A delta moves exactly the distinct updated keys — bounded by
        # the update count, never by the state size.
        assert delta == touched
        assert delta <= UPDATES_PER_CYCLE
        assert delta < STATE_ENTRIES / 50

"""The paper's running example: an online recommender service (Alg. 1).

One SDG serves both workflows over the same mutable state: a
high-throughput stream of new ratings (``add_rating``) and low-latency
recommendation queries (``get_rec``) — the combination that would
otherwise need separate batch and online systems (§3.4).

Run with:

    python examples/recommender_service.py
"""

from repro.apps import CollaborativeFiltering
from repro.core import allocate
from repro.workloads import RatingsWorkload


def main():
    # Translate the annotated class and inspect the SDG: it matches the
    # paper's Fig. 1 — five task elements over two state elements.
    result = CollaborativeFiltering.translate()
    print("Translated SDG (compare with the paper's Fig. 1):")
    for name, te in result.sdg.tasks.items():
        state = f" --{te.access.value}--> {te.state}" if te.state else ""
        print(f"  TE {name}{state}")
    allocation = allocate(result.sdg)
    print(f"allocated onto {allocation.n_nodes} nodes "
          f"(paper: n1, n2, n3)\n")

    # Deploy with 2 user-item partitions and 3 co-occurrence replicas.
    app = CollaborativeFiltering.launch(user_item=2, co_occ=3)

    # Stream in Zipf-skewed ratings (a Netflix-like workload)...
    workload = RatingsWorkload(n_users=50, n_items=30,
                               read_fraction=0.0, seed=1)
    writes, _ = workload.apply_to(app, 500)
    app.run()
    print(f"ingested {writes} ratings")

    replica_sizes = [inst.element.nnz()
                     for inst in app.runtime.se_instances("co_occ")]
    print(f"co-occurrence counts per replica: {replica_sizes} "
          f"(independent partial state)")

    # ...and serve fresh recommendations: the global read gathers and
    # merges the partial co-occurrence matrices. get_rec returns the
    # recommendation vector (one result per query, in query order here
    # because we drain between queries).
    recommendations = {}
    for user in (0, 1, 2):
        app.get_rec(user)
        app.run()
        recommendations[user] = app.results("get_rec")[-1]
    for user, rec in recommendations.items():
        top = sorted(enumerate(rec.to_list()), key=lambda kv: -kv[1])[:3]
        items = ", ".join(f"item{i} ({score:.0f})" for i, score in top
                          if score > 0)
        print(f"user {user}: {items or 'no recommendations yet'}")

    # Cross-check one user against plain sequential execution.
    sequential = CollaborativeFiltering()
    for op in RatingsWorkload(n_users=50, n_items=30,
                              read_fraction=0.0, seed=1).ops(500):
        sequential.add_rating(op.user, op.item, op.rating)
    assert (sequential.get_rec(0).to_list()
            == recommendations[0].to_list())
    print("\ndistributed result == sequential result  [ok]")


if __name__ == "__main__":
    main()

"""Unit tests for the dispatch layer.

Per-semantic routing over the deploy-time successor index, and a guard
that the seed engine's per-item linear edge scan
(``_indexed_successors``) is really gone.
"""

import pytest

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap
from repro.testing import build_cf_sdg, noop


class TestSuccessorIndex:
    def test_linear_scan_helper_is_gone(self):
        # The O(edges)-per-item scan must not survive the refactor.
        assert not hasattr(Runtime, "_indexed_successors")

    def test_index_matches_dataflow_positions(self):
        sdg = build_cf_sdg()
        runtime = Runtime(sdg).deploy()
        dataflows = sdg.dataflows
        for te_name in sdg.tasks:
            indexed = list(runtime.dispatcher.successors(te_name))
            expected = [(i, e) for i, e in enumerate(dataflows)
                        if e.src == te_name]
            assert indexed == expected

    def test_terminal_te_has_no_successors(self):
        runtime = Runtime(build_cf_sdg()).deploy()
        assert list(runtime.dispatcher.successors("mergeRec")) == []


def keyed_sdg():
    """src --KEY_PARTITIONED--> dst, dst backed by a partitioned SE."""
    sdg = SDG("keyed")
    sdg.add_state("s", KeyValueMap, kind=StateKind.PARTITIONED)

    def store(ctx, item):
        ctx.state.put(item, item)

    sdg.add_task("src", noop, is_entry=True)
    sdg.add_task("dst", store, state="s", access=AccessMode.PARTITIONED)
    sdg.connect("src", "dst", Dispatch.KEY_PARTITIONED,
                key_fn=lambda x: x, key_name="k")
    return sdg


def fanout_sdg(dispatch):
    """src --dispatch--> dst (stateless), for ONE_TO_ANY / ONE_TO_ALL."""
    sdg = SDG("fanout")
    sdg.add_task("src", noop, is_entry=True)
    sdg.add_task("dst", noop)
    sdg.connect("src", "dst", dispatch)
    return sdg


class TestKeyPartitioned:
    def test_items_meet_their_partition(self):
        runtime = Runtime(keyed_sdg(),
                          RuntimeConfig(se_instances={"s": 3})).deploy()
        for i in range(30):
            runtime.inject("src", i)
        runtime.run_until_idle()
        partitioner = runtime._partitioners["s"]
        total = 0
        for se_inst in runtime.se_instances("s"):
            keys = list(se_inst.element.keys())
            total += len(keys)
            for key in keys:
                assert partitioner.partition(key) == se_inst.index
        assert total == 30


class TestOneToAny:
    def test_round_robin_across_destination_instances(self):
        runtime = Runtime(
            fanout_sdg(Dispatch.ONE_TO_ANY),
            RuntimeConfig(te_instances={"dst": 3}),
        ).deploy()
        for i in range(9):
            runtime.inject("src", i)
        runtime.run_until_idle()
        counts = [inst.processed_count
                  for inst in runtime.te_instances("dst")]
        assert counts == [3, 3, 3]


class TestOneToAll:
    def test_broadcast_reaches_every_instance_with_one_request_id(self):
        runtime = Runtime(
            fanout_sdg(Dispatch.ONE_TO_ALL),
            RuntimeConfig(te_instances={"dst": 3}),
        ).deploy()
        runtime.inject("src", "x")
        runtime.step()  # process the src item only
        inboxes = [list(inst.inbox)
                   for inst in runtime.te_instances("dst")]
        assert all(len(inbox) == 1 for inbox in inboxes)
        request_ids = {inbox[0].request_id for inbox in inboxes}
        assert len(request_ids) == 1 and None not in request_ids
        assert all(inbox[0].expected_responses == 3 for inbox in inboxes)

    def test_each_broadcast_gets_a_fresh_request_id(self):
        runtime = Runtime(
            fanout_sdg(Dispatch.ONE_TO_ALL),
            RuntimeConfig(te_instances={"dst": 2}),
        ).deploy()
        seen = []
        original = runtime._process

        def record(instance, envelope):
            if instance.name == "dst":
                seen.append(envelope.request_id)
            original(instance, envelope)

        runtime._process = record
        runtime.inject("src", "a")
        runtime.inject("src", "b")
        runtime.run_until_idle()
        # Two broadcasts x two instances, under two distinct request ids.
        assert len(seen) == 4
        assert len(set(seen)) == 2


class TestGather:
    def test_global_round_trip_gathers_all_responses(self):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"userItem": 2, "coOcc": 3}),
        ).deploy()
        runtime.inject("updateUserItem", (0, 1, 5))
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        assert len(runtime.results["mergeRec"]) == 1

    def test_multi_output_on_gather_edge_rejected(self):
        sdg = SDG("bad_gather")

        def chatty(ctx, item):
            ctx.emit("one")
            ctx.emit("two")

        sdg.add_task("src", chatty, is_entry=True)
        sdg.add_task("merge", noop, is_merge=True)
        sdg.connect("src", "merge", Dispatch.ALL_TO_ONE)
        runtime = Runtime(sdg).deploy()
        runtime.inject("src", "x")
        with pytest.raises(RuntimeExecutionError, match="at most one"):
            runtime.run_until_idle()

    def test_gather_without_request_forwards_directly(self):
        sdg = SDG("plain_gather")
        sdg.add_task("src", noop, is_entry=True)
        sdg.add_task("merge", noop, is_merge=True)
        sdg.connect("src", "merge", Dispatch.ALL_TO_ONE)
        runtime = Runtime(sdg).deploy()
        runtime.inject("src", "payload")
        runtime.run_until_idle()
        assert runtime.results["merge"] == ["payload"]

"""Structured event bus.

The runtime layers publish typed events here instead of keeping
private logs: the engine (scale-out, repartition epoch, node failure),
the checkpoint manager (begin/commit/abort), the recovery manager and
supervisor (restore, attempt ladder, quarantine), the failure detector
and the chaos injector.  Consumers read the in-order event list, filter
by source/kind, subscribe a callback, or export JSON lines.

Events are ordered by publication, stamped with the *logical* step —
no wall clock, so a deterministic run yields a byte-identical event
stream.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["Event", "EventBus", "JsonlExporter", "KIND"]


class KIND:
    """Well-known event kinds (sources may also publish ad-hoc kinds)."""

    SCALE_OUT = "scale-out"
    REPARTITION = "repartition-epoch"
    NODE_FAILED = "node-failed"
    CHECKPOINT_BEGIN = "checkpoint-begin"
    CHECKPOINT_COMMIT = "checkpoint-commit"
    CHECKPOINT_ABORT = "checkpoint-abort"
    RESTORE = "restore"
    FAILURE_DETECTED = "failure-detected"
    FAULT_INJECTED = "fault-injected"
    QUARANTINED = "quarantined"
    WORKER_RESTART = "worker-restart"


@dataclass(frozen=True)
class Event:
    """One structured occurrence at a logical step.

    ``attrs`` carries the source-specific payload (node ids, checkpoint
    versions, fault descriptions, ...).
    """

    seq: int
    step: int
    source: str
    kind: str
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {
            "seq": self.seq,
            "step": self.step,
            "source": self.source,
            "kind": self.kind,
            **{k: _jsonable(v) for k, v in self.attrs.items()},
        }
        return json.dumps(record, sort_keys=True)


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        if isinstance(value, (list, tuple, set, frozenset)):
            return [_jsonable(v) for v in value]
        return repr(value)


class EventBus:
    """Append-only, in-order stream of :class:`Event` with subscriptions."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._listeners: list[tuple[Callable[[Event], None], frozenset[str] | None]] = []

    def publish(self, source: str, kind: str, step: int, **attrs: Any) -> Event:
        event = Event(seq=len(self._events), step=step, source=source, kind=kind, attrs=attrs)
        self._events.append(event)
        for listener, kinds in self._listeners:
            if kinds is None or kind in kinds:
                listener(event)
        return event

    def subscribe(
        self, listener: Callable[[Event], None], kinds: list[str] | None = None
    ) -> Callable[[Event], None]:
        """Call ``listener`` on every future event (optionally filtered)."""
        self._listeners.append((listener, frozenset(kinds) if kinds else None))
        return listener

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        self._listeners = [(cb, kinds) for cb, kinds in self._listeners if cb is not listener]

    def events(self, source: str | None = None, kind: str | None = None) -> list[Event]:
        return [
            e
            for e in self._events
            if (source is None or e.source == source) and (kind is None or e.kind == kind)
        ]

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self._events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def to_jsonl(self) -> str:
        """One JSON object per line, in publication order."""
        return "\n".join(e.to_json() for e in self._events) + ("\n" if self._events else "")

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(list(self._events))


class JsonlExporter:
    """Incremental, durable JSONL export of an :class:`EventBus`.

    Each :meth:`export` call appends the events published since the
    previous call, flushes and fsyncs, and advances :attr:`byte_offset`
    — a watermark a run manifest can record so that, after a crash, the
    file is truncated back to the last *committed* offset instead of
    being re-exported from scratch. Event ``seq`` numbers restart with
    each process incarnation, so the cursor is positional within the
    current bus, while the byte offset is durable across restarts.
    """

    def __init__(self, path: str, start_offset: int = 0) -> None:
        self.path = path
        # Create the file if needed, then discard any uncommitted tail
        # (events exported during an epoch whose commit never landed).
        with open(path, "ab"):
            pass
        if os.path.getsize(path) < start_offset:
            raise ValueError(
                f"event log {path!r} is shorter than the committed "
                f"offset {start_offset}; refusing to resume from it"
            )
        with open(path, "r+b") as fh:
            fh.truncate(start_offset)
        self.byte_offset = start_offset
        self._cursor = 0  # events of the *current* bus already exported

    @property
    def exported_seq(self) -> int:
        """Events of the current bus incarnation already on disk."""
        return self._cursor

    def export(self, bus: EventBus) -> tuple[int, int]:
        """Append all not-yet-exported events; return the new watermark.

        Returns ``(exported_seq, byte_offset)`` after the append. The
        write is flushed and fsynced before returning, so once a caller
        records the offset the bytes below it are durable.
        """
        fresh = [e for e in bus if e.seq >= self._cursor]
        with open(self.path, "ab") as fh:
            for event in fresh:
                fh.write((event.to_json() + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())
            self.byte_offset = fh.tell()
        self._cursor += len(fresh)
        return self._cursor, self.byte_offset

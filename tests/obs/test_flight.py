"""Tests for the flight recorder ring buffer."""

import json

import pytest

from repro.obs import DEFAULT_CAPACITY, FlightRecorder, render_dump
from repro.runtime import Runtime, RuntimeConfig
from repro.testing import build_kv_sdg


class TestRing:
    def test_capacity_bounds_the_ring(self):
        flight = FlightRecorder(capacity=4)
        for step in range(10):
            flight.record(step, "note", n=step)
        assert len(flight) == 4
        assert [e["n"] for e in flight.dump()] == [6, 7, 8, 9]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_tail_and_reset(self):
        flight = FlightRecorder(capacity=8)
        for step in range(5):
            flight.record(step, "note")
        assert [e["step"] for e in flight.tail(2)] == [3, 4]
        assert flight.tail(0) == []
        flight.reset()
        assert len(flight) == 0

    def test_dump_entries_are_copies(self):
        flight = FlightRecorder(capacity=2)
        flight.record(1, "note")
        flight.dump()[0]["step"] = 999
        assert flight.dump()[0]["step"] == 1


class TestEnvelopeDigests:
    def run_recorded(self, items=10, capacity=32):
        config = RuntimeConfig(se_instances={"table": 2},
                               flight_recorder=capacity)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        for i in range(items):
            runtime.inject("serve", ("put", f"k{i}", i))
        runtime.run_until_idle()
        return runtime

    def test_engine_records_every_serve(self):
        runtime = self.run_recorded(items=10)
        dump = runtime.flight.dump()
        serves = [e for e in dump if e["kind"] == "serve"]
        assert len(serves) == 10
        entry = serves[0]
        assert entry["te"] == "serve"
        assert entry["edge"] == -1  # external input
        assert entry["src"].startswith("__input__")
        assert "'k0'" in entry["payload"]

    def test_dump_is_json_serializable(self):
        runtime = self.run_recorded(items=5)
        roundtrip = json.loads(json.dumps(runtime.flight.dump()))
        assert len(roundtrip) == 5

    def test_huge_payload_repr_is_truncated(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               flight_recorder=4)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        runtime.inject("serve", ("put", "big", "x" * 10_000))
        runtime.run_until_idle()
        payload = runtime.flight.dump()[-1]["payload"]
        assert len(payload) <= 120
        assert payload.endswith("...")

    def test_node_failures_leave_a_note(self):
        runtime = self.run_recorded(items=6)
        victim = runtime.se_instance("table", 0).node_id
        runtime.fail_node(victim)
        notes = [e for e in runtime.flight.dump()
                 if e["kind"] == "node_failed"]
        assert len(notes) == 1
        assert notes[0]["node"] == victim

    def test_off_by_default(self):
        runtime = Runtime(build_kv_sdg()).deploy()
        assert runtime.flight is None


class TestRendering:
    def test_render_shows_serve_lines(self):
        flight = FlightRecorder(capacity=4)
        flight.record(3, "worker_restart", worker=1)
        text = flight.render()
        assert "worker_restart" in text and "worker=1" in text
        assert FlightRecorder().render() == "(flight recorder empty)"

    def test_render_dump_matches_render(self):
        flight = FlightRecorder(capacity=8)
        for step in range(5):
            flight.record(step, "note", n=step)
        assert render_dump(flight.dump()) == flight.render()
        assert render_dump(flight.dump(), limit=2) \
            == flight.render(limit=2)
        assert render_dump([]) == "(flight recorder empty)"

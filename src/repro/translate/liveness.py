"""Live-variable analysis over TE blocks (Fig. 3, step 5).

For each dataflow edge between two generated TEs we must know which
local variables travel with it: the variables *live into* the downstream
block (used there, or further downstream, before being redefined) that
are *available* upstream (method parameters or earlier definitions).

The analysis is statement-ordered: a statement's *uses* are the names it
loads before (possibly) defining them locally, so ``x = x + 1`` uses and
defines ``x`` while ``x = 1; y = x`` only defines. Branches are handled
conservatively for uses (union over branches) and optimistically for
definitions (union), matching the paper's assumption of well-formed
programs.
"""

from __future__ import annotations

import ast


def uses_defs(stmt: ast.stmt) -> tuple[set[str], set[str]]:
    """Ordered use/def sets of one (possibly compound) statement."""
    uses: set[str] = set()
    defs: set[str] = set()
    _visit(stmt, set(), uses, defs)
    uses.discard("self")
    defs.discard("self")
    return uses, defs


def _visit(node: ast.AST, defined: set[str], uses: set[str],
           defs: set[str]) -> None:
    """Walk ``node`` in execution order, updating the three sets.

    ``defined`` tracks names already assigned on this path: loading a
    name not yet in it counts as an upward-exposed use.
    """
    if isinstance(node, ast.Name):
        if isinstance(node.ctx, ast.Load):
            if node.id not in defined:
                uses.add(node.id)
        else:  # Store / Del
            defined.add(node.id)
            defs.add(node.id)
        return
    if isinstance(node, ast.Assign):
        _visit(node.value, defined, uses, defs)
        for target in node.targets:
            _visit(target, defined, uses, defs)
        return
    if isinstance(node, ast.AnnAssign):
        if node.value is not None:
            _visit(node.value, defined, uses, defs)
        _visit(node.target, defined, uses, defs)
        return
    if isinstance(node, ast.AugAssign):
        # target is read-then-written.
        read = ast.copy_location(
            ast.Name(id=node.target.id, ctx=ast.Load()), node.target
        ) if isinstance(node.target, ast.Name) else node.target
        _visit(read, defined, uses, defs)
        _visit(node.value, defined, uses, defs)
        _visit(node.target, defined, uses, defs)
        return
    if isinstance(node, (ast.For, ast.AsyncFor)):
        _visit(node.iter, defined, uses, defs)
        _visit(node.target, defined, uses, defs)
        for child in node.body:
            _visit(child, defined, uses, defs)
        for child in node.orelse:
            _visit(child, defined, uses, defs)
        return
    if isinstance(node, ast.While):
        _visit(node.test, defined, uses, defs)
        for child in node.body:
            _visit(child, defined, uses, defs)
        for child in node.orelse:
            _visit(child, defined, uses, defs)
        return
    if isinstance(node, ast.If):
        _visit(node.test, defined, uses, defs)
        branch_defined: list[set[str]] = []
        for branch in (node.body, node.orelse):
            local = set(defined)
            for child in branch:
                _visit(child, local, uses, defs)
            branch_defined.append(local)
        # Optimistic: a name defined in any branch is available after.
        defined |= branch_defined[0] | branch_defined[1]
        return
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        # Comprehension targets are scoped to the comprehension: they
        # neither define names for the block nor count as uses.
        local = set(defined)
        scoped_defs: set[str] = set()
        for gen in node.generators:
            _visit(gen.iter, local, uses, scoped_defs)
            _visit(gen.target, local, uses, scoped_defs)
            for cond in gen.ifs:
                _visit(cond, local, uses, scoped_defs)
        _visit(node.elt, local, uses, scoped_defs)
        return
    if isinstance(node, ast.DictComp):
        local = set(defined)
        scoped_defs = set()
        for gen in node.generators:
            _visit(gen.iter, local, uses, scoped_defs)
            _visit(gen.target, local, uses, scoped_defs)
            for cond in gen.ifs:
                _visit(cond, local, uses, scoped_defs)
        _visit(node.key, local, uses, scoped_defs)
        _visit(node.value, local, uses, scoped_defs)
        return
    if isinstance(node, ast.Lambda):
        local = set(defined)
        scoped_defs = set()
        for arg in (node.args.args + node.args.posonlyargs
                    + node.args.kwonlyargs):
            local.add(arg.arg)
        _visit(node.body, local, uses, scoped_defs)
        return
    if isinstance(node, ast.Attribute):
        _visit(node.value, defined, uses, defs)
        return
    for child in ast.iter_child_nodes(node):
        _visit(child, defined, uses, defs)


def block_uses_defs(
    statements: list[ast.stmt],
) -> tuple[set[str], set[str]]:
    """Ordered use/def sets of a statement block (a TE body)."""
    uses: set[str] = set()
    defs: set[str] = set()
    defined: set[str] = set()
    for stmt in statements:
        stmt_uses, stmt_defs = uses_defs(stmt)
        uses |= stmt_uses - defined
        defined |= stmt_defs
        defs |= stmt_defs
    return uses, defs


def live_ins(blocks: list[list[ast.stmt]],
             params: list[str]) -> list[list[str]]:
    """Per-block live-in variable lists (sorted, deterministic).

    ``blocks[0]`` receives the method parameters; downstream blocks
    receive only names that are live in (used at or after the block
    before redefinition) *and* available (defined upstream or a
    parameter). Names resolving to globals/builtins are excluded by the
    availability filter.
    """
    n = len(blocks)
    per_block = [block_uses_defs(block) for block in blocks]
    live_after: set[str] = set()
    live: list[set[str]] = [set()] * n
    for i in range(n - 1, -1, -1):
        uses, defs = per_block[i]
        live[i] = uses | (live_after - defs)
        live_after = live[i]

    available = set(params)
    result: list[list[str]] = []
    for i in range(n):
        if i == 0:
            result.append(list(params))
        else:
            result.append(sorted(live[i] & available))
        available |= per_block[i][1]
    return result

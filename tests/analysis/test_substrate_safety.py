"""The SDG4xx substrate-safety family, end to end.

Four layers, in order: the *passes* (each fork hazard is found, and
only when the opt-in flag asks for it), the *call chains* (laundered
findings render their path in text and JSON), the *certifier*
(``SUBSTRATE_SAFE`` is granted exactly when no error-severity SDG4xx
finding exists), and the *deploy gate* (``substrate_check="enforce"``
statically refuses a hazardous program on the multiprocess substrate
and accepts every bundled app — the CI smoke).
"""

import json
import warnings

import pytest

from repro import analysis
from repro.analysis.capabilities import certify
from repro.analysis.engine import bundled_objects
from repro.cli import main
from repro.errors import RuntimeExecutionError
from repro.runtime import RuntimeConfig

from tests.analysis.fixtures import (
    clean,
    free_function_nondet,
    helper_nondet,
    lambda_state,
    laundered_bypass,
    set_iteration_route,
    shared_global,
)

LAMBDA = "tests.analysis.fixtures.lambda_state:LambdaState"
GLOBAL = "tests.analysis.fixtures.shared_global:SharedGlobal"
HELPER = "tests.analysis.fixtures.helper_nondet:JitteredStore"


# ---------------------------------------------------------------------------
# The passes
# ---------------------------------------------------------------------------


class TestPasses:
    @pytest.mark.parametrize("program, code", [
        (lambda_state.LambdaState, "SDG401"),
        (set_iteration_route.SetIterationRoute, "SDG402"),
        (shared_global.SharedGlobal, "SDG403"),
    ], ids=["unpicklable", "nondeterminism", "shared-global"])
    def test_each_hazard_is_found(self, program, code):
        report = analysis.run(program, substrate_safety=True)
        assert report.codes() == {code}, report.render_text()

    @pytest.mark.parametrize("program", [
        lambda_state.LambdaState,
        set_iteration_route.SetIterationRoute,
        shared_global.SharedGlobal,
    ])
    def test_substrate_passes_are_opt_in(self, program):
        # Perfectly valid in-process: the default pipeline stays quiet.
        assert analysis.run(program).clean

    def test_bundled_apps_are_substrate_clean(self):
        from repro.analysis.engine import bundled_targets
        for name, loader in bundled_targets(substrate_safety=True).items():
            report = loader()
            assert report.clean, f"{name}: {report.render_text()}"

    def test_severities(self):
        unpicklable = analysis.run(lambda_state.LambdaState,
                                   substrate_safety=True)
        assert not unpicklable.ok  # SDG401 is an error
        shared = analysis.run(shared_global.SharedGlobal,
                              substrate_safety=True)
        assert shared.ok and not shared.clean  # SDG403 is a warning


# ---------------------------------------------------------------------------
# Call chains in both renderings
# ---------------------------------------------------------------------------


def line_in_file(module, needle: str) -> int:
    import inspect
    for index, line in enumerate(
        inspect.getsource(module).splitlines(), 1
    ):
        if needle in line:
            return index
    raise AssertionError(f"{needle!r} not in {module.__name__}")


class TestCallChains:
    def test_helper_laundered_finding_renders_the_chain(self):
        report = analysis.run(helper_nondet.JitteredStore)
        [chained] = [d for d in report.by_code("SDG101") if d.chain]
        text = chained.render()
        assert "call chain: put_jittered:" in text
        assert "→ _jitter:" in text

    def test_chain_lines_are_absolute_file_positions(self):
        report = analysis.run(free_function_nondet.FreeFunctionNoise)
        [diag] = report.by_code("SDG101")
        chain = dict(diag.chain)
        assert chain["put_noisy"] == line_in_file(
            free_function_nondet, "self.table.put(key, noise())")
        assert chain["noise"] == line_in_file(
            free_function_nondet, "return random.random()")

    def test_chain_serialises_to_json(self):
        report = analysis.run(laundered_bypass.LaunderedBypass)
        [diag] = report.by_code("SDG303")
        payload = diag.to_dict()
        assert payload["chain"] == [
            {"function": fn, "line": line} for fn, line in diag.chain
        ]
        json.dumps(payload)  # must be JSON-clean

    def test_chained_sdg403_names_the_path(self):
        report = analysis.run(shared_global.SharedGlobal,
                              substrate_safety=True)
        [diag] = report.by_code("SDG403")
        assert "(through _bump)" in diag.message
        assert [fn for fn, _ in diag.chain] == ["record", "_bump"]

    def test_direct_finding_has_no_chain_key(self):
        from tests.analysis.fixtures import process_identity
        report = analysis.run(process_identity.ProcessIdentity)
        for diag in report.by_code("SDG101"):
            assert "chain" not in diag.to_dict()


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


class TestCertification:
    def test_hazardous_program_is_refused_the_flag(self):
        caps = certify(lambda_state.LambdaState)
        assert not caps.substrate_safe
        assert "SUBSTRATE_SAFE" not in caps.flags
        assert any(d.code == "SDG401" for d in caps.substrate_findings)

    def test_warning_findings_do_not_cost_the_flag(self):
        caps = certify(shared_global.SharedGlobal)
        assert caps.substrate_safe  # SDG403 is warning-severity
        assert any(d.code == "SDG403" for d in caps.substrate_findings)

    def test_clean_program_is_certified(self):
        caps = certify(clean.CleanCounters)
        assert caps.substrate_safe
        assert caps.flags[-1] == "SUBSTRATE_SAFE"
        assert caps.substrate_findings == ()

    def test_every_bundled_target_is_substrate_safe(self):
        for key, loader in bundled_objects().items():
            target, label = loader()
            caps = certify(target, label.split(":")[-1])
            assert caps.substrate_safe, key

    def test_findings_serialise_in_the_certificate(self):
        payload = certify(lambda_state.LambdaState).to_dict()
        assert payload["substrate_safe"] is False
        [finding] = [f for f in payload["substrate_findings"]
                     if f["code"] == "SDG401"]
        assert "lambda" in finding["message"]


# ---------------------------------------------------------------------------
# The deploy gate
# ---------------------------------------------------------------------------


def multiprocess_config(**overrides):
    config = RuntimeConfig(substrate="multiprocess", workers=2,
                           **overrides)
    return config


class TestDeployGate:
    def test_enforce_refuses_a_hazardous_program(self):
        config = multiprocess_config(substrate_check="enforce")
        with pytest.raises(RuntimeExecutionError) as err:
            lambda_state.LambdaState.launch(config=config, table=2)
        message = str(err.value)
        assert "refusing to deploy" in message
        assert "SDG401" in message

    def test_precertified_capabilities_are_reused(self):
        config = multiprocess_config(substrate_check="enforce")
        config.capabilities = certify(lambda_state.LambdaState)
        with pytest.raises(RuntimeExecutionError, match="SDG401"):
            lambda_state.LambdaState.launch(config=config, table=2)

    def test_warn_mode_surfaces_and_proceeds(self):
        config = multiprocess_config(substrate_check="warn")
        with pytest.warns(RuntimeWarning, match="SDG403"):
            app = shared_global.SharedGlobal.launch(config=config,
                                                    table=2)
        try:
            app.record("k", 1)
            app.run()
        finally:
            app.runtime.close()

    def test_off_mode_is_silent(self):
        config = multiprocess_config(substrate_check="off")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            app = lambda_state.LambdaState.launch(config=config, table=2)
        app.runtime.close()

    def test_in_process_substrate_is_never_gated(self):
        # The hazard is multiprocess-specific; in one address space the
        # lambda is a perfectly good value.
        config = RuntimeConfig(substrate_check="enforce")
        app = lambda_state.LambdaState.launch(config=config, table=2)
        try:
            app.plan("k", 21)
            app.run()
        finally:
            app.runtime.close()

    def test_bad_mode_is_rejected_at_validation(self):
        from repro.apps import KeyValueStore

        config = RuntimeConfig(substrate_check="sometimes")
        with pytest.raises(Exception, match="substrate_check"):
            KeyValueStore.launch(config=config, table=2)

    def test_certified_app_deploys_under_enforce(self):
        """The CI smoke: a bundled app passes the multiprocess gate."""
        from repro.apps import KeyValueStore

        config = multiprocess_config(substrate_check="enforce")
        app = KeyValueStore.launch(config=config, table=2)
        try:
            app.put("k", 7)
            app.run()
            app.get("k")
            app.run()
            assert app.results("get") == [("k", 7)]
        finally:
            app.runtime.close()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestLintCLI:
    def test_substrate_flag_finds_the_hazard(self, capsys):
        assert main(["lint", LAMBDA, "--substrate-safety"]) == 1
        assert "SDG401" in capsys.readouterr().out

    def test_without_the_flag_the_target_is_clean(self, capsys):
        assert main(["lint", LAMBDA]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warning_findings_respect_fail_on(self, capsys):
        assert main(["lint", GLOBAL, "--substrate-safety"]) == 0
        capsys.readouterr()
        assert main(["lint", GLOBAL, "--substrate-safety",
                     "--fail-on", "warning"]) == 1

    def test_fail_on_warning_applies_to_regular_passes_too(self, capsys):
        dead = "tests.analysis.fixtures.dead_payload:DeadPayload"
        assert main(["lint", dead]) == 0
        capsys.readouterr()
        assert main(["lint", dead, "--fail-on", "warning"]) == 1

    def test_json_chain_round_trips_through_the_cli(self, capsys):
        assert main(["lint", HELPER, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        [report] = payload["reports"]
        chains = [d["chain"] for d in report["diagnostics"]
                  if "chain" in d]
        assert chains, report
        assert chains[0][0]["function"] == "put_jittered"

    def test_all_bundled_apps_pass_the_substrate_lint(self, capsys):
        assert main(["lint", "--all", "--substrate-safety",
                     "--fail-on", "warning"]) == 0
        out = capsys.readouterr().out
        assert "7 target(s), 0 error(s), 0 warning(s)" in out

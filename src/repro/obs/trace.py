"""Per-envelope causal tracing in logical time.

When a runtime is deployed with ``RuntimeConfig(trace=True)`` every
injected envelope is stamped with a ``trace_id`` that survives dispatch
fan-out, repartition re-routing and crash replay (the id rides the
frozen :class:`~repro.runtime.envelope.Envelope`).  The :class:`Tracer`
reconstructs, per trace, the ordered list of :class:`Hop` records:
which TE instance served the item, how long it waited in the inbox
(queue-wait steps), how long the invocation took (service steps), and
whether the hop was a *replay* of work already executed before a crash.

Everything is denominated in logical steps; the tracer never reads the
wall clock.  With tracing off the engine's hot path does a single
``is None`` check and nothing else — see
``benchmarks/test_obs_overhead.py`` for the enforced bound.

Across the **multiprocess substrate** each worker records hops with
its own local :class:`Tracer` (forked from the coordinator's), stamps
them with its worker id, and ships completed hops back as *shards*
(:meth:`Tracer.drain_shard`) piggybacked on the wire protocol's idle
frames. The coordinator folds every shard into its own tracer
(:meth:`Tracer.merge_shard`), re-running replay detection against the
fleet-wide served-set — so ``runtime.tracer`` shows one merged causal
view no matter which process served each hop. Worker-local step
numbers are process-local logical clocks: queue-wait and service spans
stay meaningful per hop, while cross-process step arithmetic is not
(compare hop *sets*, not step stamps, across substrates).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runtime imports obs)
    from repro.runtime.envelope import Envelope

__all__ = ["DEFAULT_SERVED_LIMIT", "Hop", "Trace", "Tracer"]

#: Default bound on the replay served-set (and the enqueue-step map).
#: Long chaos soaks replay the same items across many crash cycles;
#: without a bound those books grow with the item count forever.
#: Eviction is FIFO: a key evicted here can, at worst, mis-report a
#: *very* old replay as fresh — never the reverse.
DEFAULT_SERVED_LIMIT = 1 << 16


@dataclass
class Hop:
    """One service of a traced envelope by one TE instance."""

    te: str
    instance: str
    enqueue_step: int
    entry_step: int
    exit_step: int = -1
    replayed: bool = False
    #: Worker that served the hop (None = coordinator / in-process).
    worker: int | None = None
    #: Replay-identity key; rides shards so the coordinator can re-run
    #: replay detection fleet-wide. Not part of equality/rendering.
    key: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def queue_wait(self) -> int:
        """Steps spent in the destination inbox before service."""
        return max(0, self.entry_step - self.enqueue_step)

    @property
    def service_steps(self) -> int:
        """Steps spent inside the invocation (0 while still in flight)."""
        return max(0, self.exit_step - self.entry_step) if self.exit_step >= 0 else 0

    def describe(self) -> str:
        mark = " [replayed]" if self.replayed else ""
        return (
            f"{self.te}/{self.instance} wait={self.queue_wait} "
            f"steps={self.entry_step}->{self.exit_step}{mark}"
        )


@dataclass
class Trace:
    """All hops recorded under one trace id, in service order."""

    trace_id: int
    start_step: int
    hops: list[Hop] = field(default_factory=list)

    @property
    def end_step(self) -> int:
        return max((h.exit_step for h in self.hops if h.exit_step >= 0), default=self.start_step)

    @property
    def latency(self) -> int:
        """End-to-end logical latency: injection to last hop exit."""
        return self.end_step - self.start_step

    @property
    def total_queue_wait(self) -> int:
        return sum(h.queue_wait for h in self.hops)

    @property
    def replayed_hops(self) -> int:
        return sum(1 for h in self.hops if h.replayed)

    def path(self) -> list[str]:
        return [f"{h.te}/{h.instance}" for h in self.hops]

    def describe(self) -> str:
        chain = " -> ".join(h.describe() for h in self.hops) or "(no hops)"
        return (
            f"trace {self.trace_id}: latency={self.latency} "
            f"queue_wait={self.total_queue_wait} hops={len(self.hops)} | {chain}"
        )


def _stream_key(channel) -> tuple[int, str | None, int]:
    return (channel.edge_index, channel.src_te, channel.src_instance)


class Tracer:
    """Collects hop records for traced envelopes.

    The engine drives three callbacks:

    * :meth:`on_deliver` when the transport appends a traced envelope to
      an inbox (records the enqueue step, so queue wait is observable);
    * :meth:`begin_hop` when an instance pops the envelope for service;
    * :meth:`end_hop` when the invocation (and dispatch) completes.

    Replay detection: a hop is ``replayed`` when the same logical item
    — identified by ``(trace_id, destination TE, producer stream key,
    producer sequence number)`` — has already been served once.  The
    engine's duplicate filter drops re-deliveries it has already seen
    on the *same* instance, so replayed hops surface exactly where
    recovery re-executes work on a replacement instance.
    """

    def __init__(self, served_limit: int = DEFAULT_SERVED_LIMIT) -> None:
        if served_limit < 1:
            raise ValueError(
                f"served_limit must be >= 1, got {served_limit}"
            )
        self._next_id = 1
        self._traces: dict[int, Trace] = {}
        #: Bound on the replay books below (FIFO eviction).
        self.served_limit = served_limit
        # (trace_id, channel, ts) -> step the envelope entered the inbox
        self._enqueued: OrderedDict[tuple, int] = OrderedDict()
        # (trace_id, dst_te, stream_key, ts) seen served at least once;
        # an OrderedDict-as-set so the oldest key can be evicted.
        self._served: OrderedDict[tuple, None] = OrderedDict()
        #: Worker id stamped on recorded hops (multiprocess workers).
        self.worker: int | None = None
        #: When shard recording is on, every begun hop is also queued
        #: for :meth:`drain_shard` (workers ship these to the
        #: coordinator). Off by default so the in-process tracer never
        #: accumulates an undrained pending list.
        self._record_shard = False
        self._pending_shard: list[tuple[int, Hop]] = []

    def record_shards(self, worker: int) -> None:
        """Switch this tracer into worker mode: stamp ``worker`` on new
        hops and queue them for :meth:`drain_shard`."""
        self.worker = worker
        self._record_shard = True

    def _remember_served(self, item_key: tuple) -> None:
        served = self._served
        served[item_key] = None
        if len(served) > self.served_limit:
            served.popitem(last=False)

    # -- trace lifecycle -------------------------------------------------

    def new_trace(self, step: int) -> int:
        trace_id = self._next_id
        self._next_id += 1
        self._traces[trace_id] = Trace(trace_id=trace_id, start_step=step)
        return trace_id

    def on_deliver(self, envelope: "Envelope", step: int) -> None:
        if envelope.trace_id is None:
            return
        self._enqueued[(envelope.trace_id, envelope.channel, envelope.ts)] = step
        if len(self._enqueued) > self.served_limit:
            self._enqueued.popitem(last=False)

    def begin_hop(self, envelope: "Envelope", te: str, instance_name: str, step: int) -> Hop | None:
        trace_id = envelope.trace_id
        if trace_id is None:
            return None
        trace = self._traces.get(trace_id)
        if trace is None:
            # Trace ids minted by another runtime (e.g. envelopes carried
            # across a migration) still get a trace record.
            trace = self._traces[trace_id] = Trace(trace_id=trace_id, start_step=step)
        enqueue = self._enqueued.pop((trace_id, envelope.channel, envelope.ts), step)
        item_key = (trace_id, te, _stream_key(envelope.channel), envelope.ts)
        replayed = item_key in self._served
        self._remember_served(item_key)
        hop = Hop(
            te=te,
            instance=instance_name,
            enqueue_step=enqueue,
            entry_step=step,
            replayed=replayed,
            worker=self.worker,
            key=item_key,
        )
        trace.hops.append(hop)
        if self._record_shard:
            self._pending_shard.append((trace_id, hop))
        return hop

    def end_hop(self, hop: Hop, step: int) -> None:
        hop.exit_step = step

    # -- cross-process sharding (multiprocess substrate) -----------------

    def drain_shard(self) -> list[tuple[int, Hop]]:
        """Hops recorded since the last drain, as picklable
        ``(trace_id, Hop)`` pairs; clears the pending queue.

        Only populated after :meth:`record_shards`. A hop still in
        flight when the shard ships keeps ``exit_step == -1``.
        """
        shard, self._pending_shard = self._pending_shard, []
        return shard

    def merge_shard(self, shard: list[tuple[int, Hop]]) -> None:
        """Fold one worker's drained shard into this (coordinator)
        tracer's view.

        Replay detection is re-run against *this* tracer's served-set:
        a worker that re-executes an item another (crashed) worker
        already served could not know locally, but the coordinator —
        which merged the first execution's shard — marks the second
        hop ``replayed``.
        """
        for trace_id, hop in shard:
            trace = self._traces.get(trace_id)
            if trace is None:
                trace = self._traces[trace_id] = Trace(
                    trace_id=trace_id, start_step=hop.enqueue_step
                )
            if hop.key is not None:
                if not hop.replayed and hop.key in self._served:
                    hop.replayed = True
                self._remember_served(hop.key)
            trace.hops.append(hop)

    # -- read side -------------------------------------------------------

    def trace(self, trace_id: int) -> Trace | None:
        return self._traces.get(trace_id)

    def traces(self) -> list[Trace]:
        return [self._traces[tid] for tid in sorted(self._traces)]

    def latencies(self) -> list[int]:
        return [t.latency for t in self.traces() if t.hops]

    def summary(self, limit: int = 10) -> str:
        """Human-readable digest: latency distribution + sample traces."""
        traces = [t for t in self.traces() if t.hops]
        if not traces:
            return "no traces recorded"
        lats = sorted(t.latency for t in traces)
        waits = sorted(t.total_queue_wait for t in traces)

        def pct(sorted_vals: list[int], q: float) -> int:
            return sorted_vals[min(len(sorted_vals) - 1, int(q * len(sorted_vals)))]

        replayed = sum(t.replayed_hops for t in traces)
        lines = [
            f"traces: {len(traces)}  hops: {sum(len(t.hops) for t in traces)}"
            f"  replayed-hops: {replayed}",
            "latency (logical steps): "
            f"p50={pct(lats, 0.50)} p90={pct(lats, 0.90)} p99={pct(lats, 0.99)} "
            f"max={lats[-1]}",
            "queue wait (logical steps): "
            f"p50={pct(waits, 0.50)} p90={pct(waits, 0.90)} max={waits[-1]}",
            f"slowest {min(limit, len(traces))} traces:",
        ]
        slowest = sorted(traces, key=lambda t: (-t.latency, t.trace_id))[:limit]
        lines.extend(f"  {t.describe()}" for t in slowest)
        return "\n".join(lines)


def merge_traces(tracers: Iterable[Tracer]) -> list[Trace]:
    """Flatten traces from several tracers, ordered by trace id."""
    merged: list[Trace] = []
    for tracer in tracers:
        merged.extend(tracer.traces())
    return sorted(merged, key=lambda t: t.trace_id)

"""Fig. 10 — runtime parallelism for handling stragglers.

The paper deploys CF with one deliberately slow machine and plots
throughput and node count over 60 s. Expected timeline: ~3.6 k req/s
with one getRecVec instance; a new instance at t=10 s lands on the slow
machine and raises throughput to ~6.2 k; a further instance at t=30 s
does *not* help because the straggler gates the barrier; at t=50 s the
straggler is detected and relieved, unlocking ~11 k req/s.

The second part demonstrates the reactive mechanism on the real engine:
a backlogged TE is detected and scaled, and a slow node is flagged.
"""

from conftest import print_figure

from repro.runtime import BottleneckDetector, Runtime, RuntimeConfig
from repro.simulation import simulate_stragglers

from repro.testing import build_kv_sdg


def test_fig10_timeline(benchmark):
    timeline = benchmark(simulate_stragglers)
    rows = [
        (p.t, p.throughput, p.n_nodes, p.event or "")
        for p in timeline
        if p.event or p.t % 10 == 5
    ]
    print_figure(
        "Fig. 10: throughput and nodes over time (straggler handling)",
        ["t (s)", "throughput (req/s)", "nodes", "event"],
        rows,
    )
    by_t = {p.t: p for p in timeline}
    assert by_t[5].throughput == 3_600
    assert by_t[15].throughput == 6_200
    # Addition without relieving the straggler: no improvement.
    assert by_t[45].throughput == 6_200
    assert by_t[45].n_nodes == 3
    # Relief unlocks the final jump (paper: 6.2k -> 11k).
    assert by_t[55].throughput >= 10_000
    events = [p.event for p in timeline if p.event]
    assert [e.split()[0] for e in events] == ["add", "add", "relieve"]


def test_fig10_mechanism_reactive_detection(benchmark):
    """The real engine detects backlog and straggling instances."""

    def run():
        runtime = Runtime(
            build_kv_sdg(),
            RuntimeConfig(se_instances={"table": 2}, max_instances=4),
        ).deploy()
        slow = runtime.te_instances("serve")[1]
        runtime.nodes[slow.node_id].speed = 0.4
        for i in range(300):
            runtime.inject("serve", ("put", i, i))
        detector = BottleneckDetector(threshold=50, max_instances=4)
        bottlenecked = detector.bottlenecks(runtime)
        stragglers = detector.straggling_instances(runtime, "serve")
        scaled = runtime.scale_up("serve")
        runtime.run_until_idle()
        return {
            "bottlenecked": bottlenecked,
            "stragglers": stragglers,
            "scaled": scaled,
            "instances": len(runtime.te_instances("serve")),
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 10 mechanism: reactive detection on the real engine",
        ["signal", "value"],
        [(k, str(v)) for k, v in outcome.items()],
    )
    assert outcome["bottlenecked"] == ["serve"]
    assert outcome["stragglers"] == [1]
    assert outcome["scaled"] is True
    assert outcome["instances"] == 3

"""SDG302 (regression): operand-swapped non-commutative accumulation.

Assigning ``current - accumulator`` folds the loop-carried value
through ``-`` just as the usual ``accumulator - current`` shape does —
only the operand order differs — so the result still depends on the
replica delivery order. The pass originally matched only the
accumulator-on-the-left shape; this fixture pins the swapped form.
"""

from repro.annotations import Partial, Partitioned, collection, entry, global_
from repro.program import SDGProgram
from repro.state import Matrix


class OperandSwapMerge(SDGProgram):
    """Order-dependent merge hiding behind swapped operands."""

    ratings = Partitioned(Matrix, key="user")
    co_occ = Partial(Matrix)

    @entry
    def recommend(self, user):
        row = self.ratings.get_row(user)
        scores = global_(self.co_occ).multiply(row)
        best = self.alternating(collection(scores))
        return best

    def alternating(self, all_scores):
        acc = 0
        for cur in all_scores:
            acc = cur - acc
        return acc

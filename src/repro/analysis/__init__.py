"""``sdglint`` — the multi-pass static analyzer for SDG programs.

The paper's ``java2sdg`` translator is itself a static-analysis
pipeline (state-access classification, TE splitting, live-variable
analysis, §4); this package turns that front-end into a diagnostics
engine. :func:`run` executes every registered pass over an annotated
program class (or a hand-built :class:`~repro.core.graph.SDG`) and
returns a :class:`~repro.analysis.diagnostics.Report` of **all**
findings — unlike ``translate()``/``validate()``, which stop at the
first error.

Passes (see ``docs/analysis.md`` for the full diagnostic catalogue):

* restriction scan — §4.1 determinism / location independence
  (``SDG101``/``SDG102``, import aliases resolved);
* structural validation — the §3 invariants (``SDG2xx``);
* partial-state race detection (``SDG301``);
* merge order-sensitivity (``SDG302``);
* checkpoint safety — journal-bypassing state writes (``SDG303``);
* key-consistency dataflow (``SDG304``);
* dead-payload detection (``SDG305``);
* interprocedural summaries — helper-/free-function-laundered
  violations with call chains (chained ``SDG101``/``SDG102``/
  ``SDG303``);
* substrate safety (opt-in) — fork hazards for the multiprocess
  substrate (``SDG401``/``SDG402``/``SDG403``).

This ``__init__`` deliberately imports only the dependency-free
diagnostics module: ``translate`` and ``core.validation`` emit through
it, so eagerly importing the engine here would be circular.
"""

from repro.analysis.diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    DiagnosticSink,
    Report,
    Severity,
    Span,
)

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "DiagnosticSink",
    "Report",
    "Severity",
    "Span",
    "run",
]


def run(target, name: str | None = None,
        substrate_safety: bool = False) -> Report:
    """Analyse ``target`` (program class, SDG, or SDG factory).

    Library entry point of ``repro lint``. Imported lazily to keep the
    diagnostics primitives importable from the translator without a
    cycle. ``substrate_safety`` additionally runs the SDG4xx
    fork-hazard passes.
    """
    from repro.analysis.engine import analyze

    return analyze(target, name=name, substrate_safety=substrate_safety)

"""Fig. 9 — batch logistic regression: throughput vs cluster size.

The paper runs LR over Spark's 100 GB dataset on 25-100 EC2 nodes.
Expected shape: both systems scale linearly; SDG throughput is higher
at every size because the materialised pipeline avoids re-instantiating
tasks each iteration (and higher throughput means shorter iterations
and faster convergence).

The second part trains the real translated LR program with growing
replica counts to confirm the mechanism: partial-state management does
not impair learning.
"""

from conftest import print_figure

from repro.apps import LogisticRegression
from repro.apps.logistic_regression import sigmoid
from repro.baselines import SparkModel
from repro.baselines.spark import SDGBatchModel
from repro.workloads import LabelledPoints

NODES = [25, 50, 75, 100]


def compute_figure():
    sdg = SDGBatchModel()
    spark = SparkModel()
    return [
        (n, sdg.lr_throughput(n) / 1e9, spark.lr_throughput(n) / 1e9)
        for n in NODES
    ]


def test_fig9_scalability(benchmark):
    rows = benchmark(compute_figure)
    print_figure(
        "Fig. 9: LR scan throughput vs nodes",
        ["nodes", "SDG (GB/s)", "Spark (GB/s)"],
        rows,
    )
    sdg_values = [row[1] for row in rows]
    spark_values = [row[2] for row in rows]
    # Both linear (4x nodes => ~4x throughput).
    assert sdg_values[-1] / sdg_values[0] > 3.6
    assert spark_values[-1] / spark_values[0] > 3.4
    # SDG above Spark at every cluster size.
    for sdg_value, spark_value in zip(sdg_values, spark_values):
        assert sdg_value > spark_value


def test_fig9_mechanism_partial_model_learns(benchmark):
    """Replica-averaged training reaches high accuracy (the partial
    state management does not limit the algorithm)."""

    def run():
        accuracies = {}
        points = LabelledPoints(dimensions=5, margin=2.0, noise=0.4,
                                seed=21)
        data = list(points.points(400))
        for replicas in (1, 4):
            app = LogisticRegression.launch(weights=replicas)
            for _ in range(3):
                for features, label in data:
                    app.train(features, label, 0.5)
                app.run()
            app.get_model()
            app.run()
            model = app.results("get_model")[-1]

            def predict(features, model=model):
                z = sum(m * f for m, f in zip(model, features))
                return sigmoid(z)

            correct = sum(
                1 for features, label in data
                if (predict(features) > 0.5) == bool(label)
            )
            accuracies[replicas] = correct / len(data)
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 9 mechanism: LR accuracy per replica count",
        ["weight replicas", "training accuracy"],
        list(accuracies.items()),
    )
    assert accuracies[1] > 0.93
    assert accuracies[4] > 0.9

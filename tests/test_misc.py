"""Miscellaneous coverage: size accounting, error taxonomy, metadata."""

import pytest

import repro
from repro.errors import (
    AllocationError,
    RecoveryError,
    RuntimeExecutionError,
    SDGError,
    SimulationError,
    StateError,
    TranslationError,
    ValidationError,
)
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap, Matrix, Vector

from tests.helpers import build_kv_sdg


class TestErrorTaxonomy:
    @pytest.mark.parametrize("error_type", [
        AllocationError, RecoveryError, RuntimeExecutionError,
        SimulationError, StateError, TranslationError, ValidationError,
    ])
    def test_all_errors_are_sdg_errors(self, error_type):
        assert issubclass(error_type, SDGError)
        with pytest.raises(SDGError):
            raise error_type("boom")

    def test_translation_error_line_prefix(self):
        error = TranslationError("bad", lineno=17)
        assert "line 17" in str(error)
        assert error.lineno == 17


class TestSizeAccounting:
    def test_kv_size_linear_in_entries(self):
        kv = KeyValueMap()
        assert kv.estimated_size_bytes() == 0
        for i in range(10):
            kv.put(i, i)
        assert kv.estimated_size_bytes() == 10 * KeyValueMap.BYTES_PER_ENTRY

    def test_matrix_entry_cost(self):
        matrix = Matrix()
        matrix.set_element(0, 0, 1.0)
        matrix.set_element(5, 5, 1.0)
        assert matrix.estimated_size_bytes() == 2 * Matrix.BYTES_PER_ENTRY

    def test_entry_count_is_overlay_aware(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.begin_checkpoint()
        kv.put("b", 2)
        kv.delete("a")
        assert kv.entry_count() == 1
        kv.consolidate()

    def test_node_state_size(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 1}))
        runtime.deploy()
        for i in range(25):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.nodes[
            runtime.se_instance("table", 0).node_id
        ]
        assert node.state_size_bytes() == (
            25 * KeyValueMap.BYTES_PER_ENTRY
        )


class TestAbortCheckpoint:
    def test_abort_preserves_dirty_writes(self):
        vector = Vector(values=[1.0])
        vector.begin_checkpoint()
        vector.set(0, 9.0)
        vector.abort_checkpoint()
        assert not vector.checkpoint_active
        assert vector.get(0) == 9.0

    def test_abort_without_checkpoint_is_noop(self):
        vector = Vector()
        vector.abort_checkpoint()  # must not raise
        assert not vector.checkpoint_active


class TestPackageMetadata:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_is_runnable(self):
        """The package docstring's example must actually work."""
        from repro import Partitioned, SDGProgram, entry
        from repro.state import KeyValueMap as KV

        class Store(SDGProgram):
            table = Partitioned(KV, key="key")

            @entry
            def put(self, key, value):
                self.table.put(key, value)

            @entry
            def get(self, key):
                return self.table.get(key)

        app = Store.launch(table=4)
        app.put("answer", 42)
        app.get("answer")
        app.run()
        assert app.results("get") == [42]

"""Tests for incremental (delta) checkpointing across the recovery stack.

Covers the :class:`~repro.recovery.CheckpointPolicy` cadence, delta
chunk emission with version lineage, the backup store's chain
bookkeeping, chain-folding restore, base-only restore plus log replay,
and the guards that silently re-anchor with a full checkpoint when a
delta would be unsafe.
"""

import pytest

from repro.errors import RecoveryError, RuntimeExecutionError
from repro.recovery import BackupStore, CheckpointManager, CheckpointPolicy
from repro.recovery.checkpoint import NodeCheckpoint
from repro.runtime import Runtime, RuntimeConfig
from repro.state import DeltaChunk, StateElement

from tests.helpers import build_kv_sdg


def deploy(policy=None, n_partitions=1, config_policy=None):
    config = RuntimeConfig(se_instances={"table": n_partitions},
                           checkpoint_policy=config_policy)
    runtime = Runtime(build_kv_sdg(), config)
    runtime.deploy()
    store = BackupStore(m_targets=2)
    manager = CheckpointManager(runtime, store, policy=policy)
    return runtime, store, manager


def put_many(runtime, pairs):
    for key, value in pairs:
        runtime.inject("serve", ("put", key, value))
    runtime.run_until_idle()


def table_node(runtime, index=0):
    return runtime.se_instance("table", index).node_id


def merged_table(runtime):
    state = {}
    for instance in runtime.se_instances("table"):
        state.update(dict(instance.element.items()))
    return state


class TestPolicy:
    def test_defaults_to_full_every_cycle(self):
        policy = CheckpointPolicy()
        assert not policy.is_incremental
        assert all(policy.wants_full(c) for c in range(5))

    def test_full_every_k(self):
        policy = CheckpointPolicy(full_every=3)
        assert [policy.wants_full(c) for c in range(7)] == [
            True, False, False, True, False, False, True]

    def test_zero_means_one_base_then_deltas_forever(self):
        policy = CheckpointPolicy(full_every=0)
        assert policy.wants_full(0)
        assert not any(policy.wants_full(c) for c in range(1, 10))

    def test_invalid_cadence_rejected(self):
        for bad in (-1, 1.5, "2", True):
            with pytest.raises(RecoveryError):
                CheckpointPolicy(full_every=bad)

    def test_runtime_config_validates_duck_typed_policy(self):
        class Bogus:
            full_every = "often"

        config = RuntimeConfig(checkpoint_policy=Bogus())
        with pytest.raises(RuntimeExecutionError):
            config.validate(build_kv_sdg())

    def test_manager_picks_up_policy_from_runtime_config(self):
        runtime, _store, manager = deploy(
            config_policy=CheckpointPolicy(full_every=4))
        assert manager.policy.full_every == 4

    def test_explicit_policy_overrides_config(self):
        runtime, _store, manager = deploy(
            policy=CheckpointPolicy(full_every=2),
            config_policy=CheckpointPolicy(full_every=7))
        assert manager.policy.full_every == 2


class TestDeltaEmission:
    def test_cycle_kinds_follow_the_cadence(self):
        runtime, _store, manager = deploy(CheckpointPolicy(full_every=3))
        node = table_node(runtime)
        kinds = []
        for i in range(6):
            put_many(runtime, [(f"k{i}", i)])
            kinds.append(manager.checkpoint(node).kind)
        assert kinds == ["full", "delta", "delta", "full", "delta", "delta"]

    def test_delta_lineage_is_contiguous(self):
        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        for i in range(4):
            put_many(runtime, [(f"k{i}", i)])
            manager.checkpoint(node)
        chain = store.chain(node)
        assert [c.kind for c in chain] == ["full", "delta", "delta", "delta"]
        assert chain[0].base_version is None
        for prev, entry in zip(chain, chain[1:]):
            assert entry.base_version == prev.version

    def test_delta_moves_only_the_mutations(self):
        runtime, _store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [(f"k{i}", i) for i in range(50)])
        manager.checkpoint(node)
        put_many(runtime, [("k3", 99), ("new", 1)])
        checkpoint = manager.checkpoint(node)
        assert checkpoint.kind == "delta"
        assert checkpoint.state_entries() == 2
        for chunks in checkpoint.se_chunks.values():
            for chunk in chunks:
                assert isinstance(chunk, DeltaChunk)

    def test_quiet_delta_cycle_is_empty(self):
        runtime, _store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [("a", 1)])
        manager.checkpoint(node)
        checkpoint = manager.checkpoint(node)
        assert checkpoint.kind == "delta"
        assert checkpoint.state_entries() == 0

    def test_version_gap_forces_reanchor_with_full(self):
        """An aborted cycle burns a version number; the contiguity guard
        must re-anchor with a full checkpoint, not emit an orphan delta."""
        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [("a", 1)])
        manager.checkpoint(node)
        pending = manager.begin(node)
        manager.abort(pending)
        put_many(runtime, [("b", 2)])
        checkpoint = manager.checkpoint(node)
        assert checkpoint.kind == "full"
        assert store.latest(node).version == checkpoint.version

    def test_legacy_hook_se_forces_full_checkpoints(self):
        """A custom SE that overrides the ``_store_*`` hooks bypasses the
        backend journal, so the manager must never trust its deltas."""

        class LegacyKV(StateElement):
            def __init__(self):
                super().__init__()
                self._own = {}

            def _store_set(self, key, value):
                self._own[key] = value

            def _store_get(self, key):
                return self._own[key]

            def _store_delete(self, key):
                del self._own[key]

            def _store_contains(self, key):
                return key in self._own

            def _store_items(self):
                return iter(self._own.items())

            def _store_clear(self):
                self._own.clear()

            def spawn_empty(self):
                return LegacyKV()

            def put(self, key, value):
                self._set(key, value)

        runtime, _store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        instance = runtime.se_instance("table", 0)
        instance.element = LegacyKV()
        manager.checkpoint(node)
        assert manager.checkpoint(node).kind == "full"


class TestStoreChain:
    def test_full_evicts_prior_chain(self):
        runtime, store, manager = deploy(CheckpointPolicy(full_every=2))
        node = table_node(runtime)
        for i in range(4):
            put_many(runtime, [(f"k{i}", i)])
            manager.checkpoint(node)
        chain = store.chain(node)
        assert [c.kind for c in chain] == ["full", "delta"]
        assert chain[0].version == 3

    def test_delta_with_broken_lineage_refused(self):
        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [("a", 1)])
        base = manager.checkpoint(node)
        orphan = NodeCheckpoint(
            node_id=node, version=base.version + 5, kind="delta",
            base_version=base.version + 4)
        with pytest.raises(RecoveryError, match="base"):
            store.save(orphan)

    def test_base_and_latest(self):
        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [("a", 1)])
        full = manager.checkpoint(node)
        put_many(runtime, [("b", 2)])
        delta = manager.checkpoint(node)
        assert store.base(node).version == full.version
        assert store.latest(node).version == delta.version


class TestChainRestore:
    def test_restore_folds_base_plus_deltas(self):
        from repro.recovery import RecoveryManager

        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [(f"k{i}", i) for i in range(30)])
        manager.checkpoint(node)
        put_many(runtime, [("k3", 99), ("extra", 7)])
        manager.checkpoint(node)
        # A deletion mid-delta-window: only the tombstone in the next
        # delta chunk carries it (the kv SDG has no delete request).
        runtime.se_instance("table", 0).element.delete("k5")
        manager.checkpoint(node)
        expected = merged_table(runtime)

        runtime.fail_node(node)
        RecoveryManager(runtime, store).recover_node(node)
        runtime.run_until_idle()
        assert merged_table(runtime) == expected
        assert "k5" not in merged_table(runtime)
        assert merged_table(runtime)["k3"] == 99

    def test_base_only_restore_plus_replay_matches_oracle(self):
        from repro.recovery import RecoveryManager

        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        # Keep upstream buffers: deltas never trim them, and base-only
        # recovery replays the delta-covered span from them.
        manager.trim_input_log = False
        node = table_node(runtime)
        put_many(runtime, [(f"k{i}", i) for i in range(10)])
        manager.checkpoint(node)
        put_many(runtime, [("late", 42)])
        manager.checkpoint(node)
        expected = merged_table(runtime)

        runtime.fail_node(node)
        RecoveryManager(runtime, store).recover_node(node, use_deltas=False)
        runtime.run_until_idle()
        assert merged_table(runtime) == expected

    def test_restored_node_reanchors_with_full(self):
        """After a restore the replacement's first checkpoint must be a
        fresh full base — its version counter restarted."""
        from repro.recovery import RecoveryManager

        runtime, store, manager = deploy(CheckpointPolicy(full_every=0))
        node = table_node(runtime)
        put_many(runtime, [("a", 1)])
        manager.checkpoint(node)
        put_many(runtime, [("b", 2)])
        manager.checkpoint(node)
        runtime.fail_node(node)
        RecoveryManager(runtime, store).recover_node(node)
        new_node = table_node(runtime)
        put_many(runtime, [("c", 3)])
        assert manager.checkpoint(new_node).kind == "full"

"""Tests for the py2sdg command-line tool."""

import subprocess
import sys

from repro.cli import main


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )


class TestTranslateCommand:
    def test_translate_cf(self, capsys):
        assert main(["translate",
                     "repro.apps:CollaborativeFiltering"]) == 0
        out = capsys.readouterr().out
        assert "5 task elements" in out
        assert "user_item" in out and "co_occ" in out
        assert "one_to_all" in out and "all_to_one" in out
        assert "add_rating(user, item, rating)" in out

    def test_translate_dot(self, capsys):
        assert main(["translate", "repro.apps:KeyValueStore",
                     "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"table"' in out

    def test_allocate(self, capsys):
        assert main(["allocate",
                     "repro.apps:CollaborativeFiltering"]) == 0
        out = capsys.readouterr().out
        assert "allocation (3 nodes" in out
        assert "node 0:" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "SDG" in out and "Piccolo" in out


class TestErrors:
    def test_bad_spec_format(self, capsys):
        assert main(["translate", "no-colon"]) == 1
        assert "expected <module>:<Class>" in capsys.readouterr().err

    def test_unknown_module(self, capsys):
        assert main(["translate", "nope.nope:X"]) == 1
        assert "cannot import" in capsys.readouterr().err

    def test_unknown_class(self, capsys):
        assert main(["translate", "repro.apps:Missing"]) == 1
        assert "no class" in capsys.readouterr().err

    def test_untranslatable_class(self, capsys):
        # A class without annotations fails with a TranslationError.
        assert main(["translate", "repro.state:Vector"]) == 1
        assert "error:" in capsys.readouterr().err


class TestSubprocessEntryPoint:
    def test_python_dash_m_repro(self):
        completed = run_cli("translate", "repro.apps:KMeans")
        assert completed.returncode == 0
        assert "accumulators" in completed.stdout

    def test_exit_code_on_error(self):
        completed = run_cli("translate", "garbage")
        assert completed.returncode == 1

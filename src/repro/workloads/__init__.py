"""Synthetic workload generators.

The paper evaluates on the Netflix ratings dataset, a Wikipedia text
dump, Spark's 100 GB LR dataset and synthetic KV request streams. None
of those are redistributable here, so deterministic generators produce
streams with the statistics the experiments depend on: Zipf-skewed
user/item popularity for CF, Zipf word frequencies for wordcount,
configurable read/write mixes for the KV store, and labelled Gaussian
feature vectors for logistic regression. All generators take explicit
seeds and are reproducible run-to-run.
"""

from repro.workloads.kv import KVWorkload
from repro.workloads.points import LabelledPoints
from repro.workloads.ratings import RatingsWorkload
from repro.workloads.text import TextWorkload
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "KVWorkload",
    "LabelledPoints",
    "RatingsWorkload",
    "TextWorkload",
    "ZipfSampler",
]

"""Unit tests for the wire layer: framing and serialisation safety.

The multiprocess substrate's correctness rests on two contracts this
file pins down: (1) the length-prefixed frame codec survives arbitrary
chunking, partial reads and junk headers; (2) every message class that
crosses a process boundary — envelopes, the identity-compared
``NO_RESPONSE`` sentinel, state checkpoint chunks, chaos fault records
— round-trips through pickle without losing meaning, so a future
``__slots__`` or dataclass refactor cannot silently break the
multiprocess path.
"""

import os
import pickle

import pytest

from repro.chaos import fault_from_dict, fault_to_dict
from repro.chaos.plan import CrashTask, KillNode, ScaleUp
from repro.runtime.envelope import (
    INPUT_EDGE,
    NO_RESPONSE,
    WIRE_EDGE,
    ChannelId,
    Envelope,
)
from repro.runtime.wire import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    FrameBuffer,
    WireError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.state.base import DeltaChunk, StateChunk


def make_envelope(payload="x", ts=7, request_id=None, expected=None,
                  trace_id=None):
    channel = ChannelId(2, "split", 1, "count", 3)
    return Envelope(payload=payload, ts=ts, channel=channel,
                    request_id=request_id, expected_responses=expected,
                    trace_id=trace_id)


class TestFrameCodec:
    def test_encode_decode_round_trip(self):
        message = ("deliver", {"k": [1, 2, 3]})
        frame = encode_frame(message)
        (length,) = FRAME_HEADER.unpack(frame[:FRAME_HEADER.size])
        assert length == len(frame) - FRAME_HEADER.size
        assert decode_frame(frame[FRAME_HEADER.size:]) == message

    def test_oversized_message_refused(self, monkeypatch):
        import repro.runtime.wire as wire

        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        with pytest.raises(WireError, match="exceeds"):
            encode_frame(b"x" * 65)

    def test_pipe_round_trip_blocking(self):
        r, w = os.pipe()
        try:
            write_frame(w, ("idle", 3, 4, 5))
            write_frame(w, ("out", make_envelope()))
            assert read_frame(r) == ("idle", 3, 4, 5)
            tag, envelope = read_frame(r)
            assert tag == "out"
            assert envelope == make_envelope()
        finally:
            os.close(r)
            os.close(w)

    def test_read_frame_eof_on_closed_pipe(self):
        r, w = os.pipe()
        os.close(w)
        try:
            with pytest.raises(EOFError):
                read_frame(r)
        finally:
            os.close(r)

    def test_read_frame_rejects_corrupt_header(self):
        r, w = os.pipe()
        try:
            os.write(w, FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(WireError, match="corrupt"):
                read_frame(r)
        finally:
            os.close(r)
            os.close(w)


class TestFrameBuffer:
    def test_yields_messages_across_arbitrary_chunking(self):
        messages = [("a", i) for i in range(5)]
        stream = b"".join(encode_frame(m) for m in messages)
        for chunk_size in (1, 2, 3, 7, len(stream)):
            buffer = FrameBuffer()
            received = []
            for start in range(0, len(stream), chunk_size):
                received.extend(
                    buffer.feed(stream[start:start + chunk_size])
                )
            assert received == messages
            assert buffer.pending_bytes() == 0

    def test_partial_frame_stays_buffered(self):
        frame = encode_frame(("deliver", "payload"))
        buffer = FrameBuffer()
        assert list(buffer.feed(frame[:-1])) == []
        assert buffer.pending_bytes() == len(frame) - 1
        assert list(buffer.feed(frame[-1:])) == [("deliver", "payload")]

    def test_corrupt_header_raises(self):
        buffer = FrameBuffer()
        with pytest.raises(WireError, match="corrupt"):
            list(buffer.feed(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1)))


class TestEnvelopeSerialisation:
    def test_pickle_round_trip_preserves_every_field(self):
        envelope = make_envelope(payload=("put", "k1", {"v": 2}), ts=19,
                                 request_id=5, expected=3, trace_id=11)
        clone = pickle.loads(pickle.dumps(envelope))
        for field in Envelope.WIRE_FIELDS:
            assert getattr(clone, field) == getattr(envelope, field)
        assert clone == envelope

    def test_to_wire_from_wire_round_trip(self):
        envelope = make_envelope(payload=[1, "two"], ts=3,
                                 request_id=8, expected=2, trace_id=4)
        wired = envelope.to_wire()
        assert len(wired) == len(Envelope.WIRE_FIELDS)
        assert Envelope.from_wire(wired) == envelope

    def test_wire_fields_cover_the_dataclass(self):
        # A new Envelope field must be added to WIRE_FIELDS (and
        # to_wire/from_wire) deliberately, not forgotten.
        from dataclasses import fields

        assert tuple(f.name for f in fields(Envelope)) \
            == Envelope.WIRE_FIELDS

    def test_no_response_survives_pickle_as_the_singleton(self):
        envelope = make_envelope(payload=NO_RESPONSE, request_id=1,
                                 expected=2)
        clone = pickle.loads(pickle.dumps(envelope))
        # Identity, not equality: the gather barrier compares with `is`.
        assert clone.payload is NO_RESPONSE

    def test_channel_sentinels_round_trip(self):
        for edge in (INPUT_EDGE, WIRE_EDGE, 0, 5):
            channel = ChannelId(edge, "src", 0, "dst", 1)
            assert pickle.loads(pickle.dumps(channel)) == channel


class TestStateAndFaultCodecs:
    def test_state_chunk_round_trip(self):
        chunk = StateChunk(index=1, total=4,
                           items=(("k1", 10), ("k2", [1, 2])),
                           meta={"se": "table"})
        clone = pickle.loads(pickle.dumps(chunk))
        assert clone == chunk

    def test_delta_chunk_round_trip(self):
        delta = DeltaChunk(index=0, total=2, items=(("k", 9),),
                           meta={"se": "counts"}, version=7,
                           base_version=6, deleted=("gone",))
        clone = pickle.loads(pickle.dumps(delta))
        assert clone == delta
        assert clone.version == 7 and clone.deleted == ("gone",)

    def test_fault_records_round_trip_both_codecs(self):
        faults = [KillNode(at_step=10, node_id=2),
                  CrashTask(at_step=5, te="serve"),
                  ScaleUp(at_step=30, te="count")]
        for fault in faults:
            assert pickle.loads(pickle.dumps(fault)) == fault
            assert fault_from_dict(fault_to_dict(fault)) == fault

    def test_frame_carries_delta_chunk(self):
        delta = DeltaChunk(index=0, total=1, items=(("a", 1),),
                           version=2, base_version=1)
        buffer = FrameBuffer()
        (message,) = buffer.feed(encode_frame(("snapshot", delta)))
        assert message == ("snapshot", delta)

"""Regenerate every table and figure of the paper's evaluation (§6).

Prints the data series behind Table 1 and Figs. 5-13 using the
calibrated performance models (see EXPERIMENTS.md for the side-by-side
comparison with the published numbers). For the asserting versions,
run the benchmark harness:

    pytest benchmarks/ --benchmark-only

Run this script with:

    python examples/paper_figures.py
"""

from repro.baselines import NaiadModel, SparkModel, StreamingSparkModel
from repro.baselines.spark import SDGBatchModel
from repro.designspace import render_table
from repro.simulation import (
    CheckpointPolicy,
    NodeParams,
    deployment_time,
    pipelined_throughput,
    recovery_time,
    simulate_cluster,
    simulate_node,
    simulate_stragglers,
)
from repro.simulation.cf_model import CFModel, ratio_to_read_fraction


def heading(title):
    print(f"\n{'=' * 66}\n{title}\n{'=' * 66}")


def main():
    heading("Table 1: design space")
    print(render_table())

    heading("Fig. 5: CF throughput/latency vs read:write ratio")
    model = CFModel()
    for reads, writes in ((1, 5), (1, 2), (1, 1), (2, 1), (5, 1)):
        f = ratio_to_read_fraction(reads, writes)
        stick = model.read_latency(f)
        print(f"  {reads}:{writes}  {model.throughput(f):8,.0f} req/s   "
              f"p50 {stick.p50 * 1000:5.0f} ms   "
              f"p95 {stick.p95 * 1000:5.0f} ms")

    heading("Fig. 6: KV single node — throughput vs state size")
    run = dict(duration_s=120.0, tick_s=0.004)
    for gb in (0.1, 0.5, 1.0, 2.0, 2.5):
        params = NodeParams(service_rate=65_000, state_bytes=gb * 1e9)
        sdg = simulate_node(
            60_000, params,
            CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
            **run)
        nodisk = NaiadModel.nodisk().simulate(60_000, gb * 1e9, **run)
        disk = NaiadModel.disk().simulate(60_000, gb * 1e9, **run)
        print(f"  {gb:4.1f} GB   SDG {sdg.throughput:7,.0f}   "
              f"Naiad-NoDisk {nodisk.throughput:7,.0f}   "
              f"Naiad-Disk {disk.throughput:7,.0f}")

    heading("Fig. 7: KV scale-out (5 GB/node)")
    for n in (10, 20, 30, 40):
        result = simulate_cluster(
            n, 45_000 * n,
            NodeParams(service_rate=50_000, state_bytes=5e9,
                       base_latency_s=0.001, write_fraction=0.8),
            CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
            duration_s=40.0, remote_latency_s=0.0,
            per_node_latency_s=0.0007,
        )
        print(f"  {n:3d} nodes ({n * 5:3d} GB): "
              f"{result.throughput:10,.0f} req/s   "
              f"p50 {result.p(50) * 1000:5.1f} ms   "
              f"p95 {result.p(95) * 1000:6.0f} ms")

    heading("Fig. 8: wordcount throughput vs window size")
    spark = StreamingSparkModel()
    low, high = NaiadModel.low_latency(), NaiadModel.high_throughput()
    sdg_rate = pipelined_throughput(90_000, 1e-6)
    print("  window    SDG      SparkStr  Naiad-Low  Naiad-High")
    for ms in (10, 50, 100, 250, 1000, 10_000):
        w = ms / 1000
        print(f"  {ms:6d}ms  {sdg_rate:7,.0f}  "
              f"{spark.wordcount_throughput(w):8,.0f}  "
              f"{low.wordcount_throughput(w):9,.0f}  "
              f"{high.wordcount_throughput(w):10,.0f}")

    heading("Fig. 9: LR scalability")
    sdg_lr, spark_lr = SDGBatchModel(), SparkModel()
    for n in (25, 50, 75, 100):
        print(f"  {n:3d} nodes: SDG {sdg_lr.lr_throughput(n) / 1e9:5.1f} "
              f"GB/s   Spark {spark_lr.lr_throughput(n) / 1e9:5.1f} GB/s")

    heading("Fig. 10: straggler-mitigation timeline")
    for point in simulate_stragglers():
        if point.event or point.t % 10 == 9:
            event = f"   <- {point.event}" if point.event else ""
            print(f"  t={point.t:2d}s  {point.throughput:7,.0f} req/s  "
                  f"{point.n_nodes} nodes{event}")

    heading("Fig. 11: recovery time by m-to-n strategy")
    print("  state     1-to-1   2-to-1   1-to-2   2-to-2")
    for gb in (1, 2, 4):
        times = [recovery_time(gb * 1e9, m, n)
                 for m, n in ((1, 1), (2, 1), (1, 2), (2, 2))]
        print(f"  {gb} GB   " + "  ".join(f"{t:6.1f}s" for t in times))

    heading("Fig. 12: sync vs async checkpointing")
    for gb in (1, 2, 3, 4):
        params = NodeParams(service_rate=65_000, state_bytes=gb * 1e9)
        kwargs = dict(interval_s=10, disk_bw=400e6)
        sync = simulate_node(50_000, params,
                             CheckpointPolicy(mode="sync", **kwargs),
                             **run)
        async_ = simulate_node(50_000, params,
                               CheckpointPolicy(mode="async", **kwargs),
                               **run)
        print(f"  {gb} GB: sync {sync.throughput:7,.0f} req/s "
              f"(p99 {sync.p(99):5.1f} s)   "
              f"async {async_.throughput:7,.0f} req/s "
              f"(p99 {async_.p(99) * 1000:4.0f} ms)")

    heading("Fig. 13: checkpointing overhead (p95 latency)")
    base = NodeParams(service_rate=65_000, state_bytes=1e9)
    no_ft = simulate_node(45_000, base, CheckpointPolicy.none(), **run)
    print(f"  no fault tolerance: {no_ft.p(95) * 1000:5.0f} ms")
    for interval in (2, 6, 10):
        r = simulate_node(
            45_000, base,
            CheckpointPolicy(mode="async", interval_s=interval,
                             disk_bw=400e6), **run)
        print(f"  1 GB every {interval:2d} s:   {r.p(95) * 1000:5.0f} ms")
    for gb in (2, 4, 5):
        r = simulate_node(
            45_000,
            NodeParams(service_rate=65_000, state_bytes=gb * 1e9),
            CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
            **run)
        print(f"  {gb} GB every 10 s:   {r.p(95) * 1000:5.0f} ms")

    heading("§3.4: deployment cost")
    for n in (10, 50, 100):
        print(f"  {n:3d} instances: {deployment_time(n):4.1f} s"
              + ("   <- the paper's 7 s point" if n == 50 else ""))


if __name__ == "__main__":
    main()

"""Tests for the metrics primitives and the registry."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import MetricError, default_registry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("reqs")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_labeled_children_independent(self):
        c = Counter("items")
        c.labels(te="split").inc(5)
        c.labels(te="count").inc(1)
        assert c.value(te="split") == 5
        assert c.value(te="count") == 1
        assert c.value(te="never") == 0

    def test_prebound_child_is_stable(self):
        c = Counter("hot")
        child = c.labels(te="x")
        assert c.labels(te="x") is child
        child.inc()
        assert c.value(te="x") == 1

    def test_counters_only_go_up(self):
        with pytest.raises(MetricError):
            Counter("n").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(3)
        g.dec(5)
        assert g.value() == 8

    def test_gauge_can_go_negative(self):
        g = Gauge("delta")
        g.dec(2)
        assert g.value() == -2


class TestHistogram:
    def test_observe_buckets_and_quantile(self):
        h = Histogram("lat", buckets=(1, 10, 100))
        for v in (1, 2, 2, 50, 500):
            h.observe(v)
        child = h.labels()
        assert child.count == 5
        assert child.sum == 555
        # value() surfaces the observation count.
        assert h.value() == 5
        assert child.quantile(0.5) == 10
        assert child.quantile(1.0) == float("inf")

    def test_default_buckets_are_step_denominated(self):
        h = Histogram("span")
        h.observe(3)
        assert h.labels().quantile(0.5) == 5


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.names() == ["a"]

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")

    def test_to_dict(self):
        reg = MetricsRegistry()
        reg.counter("c").labels(te="a").inc(2)
        reg.histogram("h").observe(7)
        dump = reg.to_dict()
        assert dump["c"] == {"te=a": 2.0}
        assert dump["h"]["#count"] == 1.0
        assert dump["h"]["#sum"] == 7.0

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").labels(te="a").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1, 2)).observe(2)
        text = reg.to_prometheus_text()
        assert "# HELP c a counter" in text
        assert "# TYPE c counter" in text
        assert 'c{te="a"} 2' in text
        assert "g 1.5" in text
        # Histogram buckets are cumulative and end with +Inf.
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 2" in text
        assert "h_count 1" in text

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()

    def test_label_values_are_escaped(self):
        # Prometheus text format: backslash, double-quote and newline
        # in a label value must be escaped or the line is unparseable.
        reg = MetricsRegistry()
        reg.counter("c").labels(path='a\\b"c\nd').inc()
        text = reg.to_prometheus_text()
        assert 'c{path="a\\\\b\\"c\\nd"} 1' in text
        assert "\n\n" not in text.strip()  # no raw newline leaked

    def test_escaping_does_not_double_escape(self):
        # Backslash must be escaped first: a value that already looks
        # escaped ('\\n') becomes '\\\\n', not a mangled '\\\\\\n'.
        reg = MetricsRegistry()
        reg.counter("c").labels(v="\\n").inc()
        assert 'c{v="\\\\n"} 1' in reg.to_prometheus_text()

    def test_help_text_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", "first line\nsecond \\ line").inc()
        text = reg.to_prometheus_text()
        assert "# HELP c first line\\nsecond \\\\ line" in text


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        c = NULL_REGISTRY.counter("anything")
        c.labels(te="x").inc()
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").observe(1)
        assert NULL_REGISTRY.names() == []
        assert NULL_REGISTRY.to_prometheus_text() == ""
        assert c.value() == 0.0

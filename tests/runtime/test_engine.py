"""End-to-end tests for the pipelined runtime engine."""

import pytest

from repro.core import SDG
from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_cf_sdg, build_iterative_sdg, build_kv_sdg


def deploy_kv(n_partitions=4):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": n_partitions}))
    return runtime.deploy()


class TestDeployment:
    def test_deploy_materialises_all_instances(self):
        runtime = deploy_kv(4)
        assert len(runtime.te_instances("serve")) == 4
        assert len(runtime.se_instances("table")) == 4

    def test_stateful_te_colocated_with_its_partition(self):
        runtime = deploy_kv(3)
        for te_inst in runtime.te_instances("serve"):
            assert te_inst.node_id == te_inst.se_instance.node_id
            assert te_inst.index == te_inst.se_instance.index

    def test_double_deploy_rejected(self):
        runtime = deploy_kv(1)
        with pytest.raises(RuntimeExecutionError):
            runtime.deploy()

    def test_cf_deploys_on_three_nodes(self):
        runtime = Runtime(build_cf_sdg()).deploy()
        assert len(runtime.nodes) == 3

    def test_partial_replicas_on_distinct_nodes(self):
        runtime = Runtime(
            build_cf_sdg(), RuntimeConfig(se_instances={"coOcc": 3})
        ).deploy()
        nodes = {inst.node_id for inst in runtime.se_instances("coOcc")}
        assert len(nodes) == 3


class TestKVStore:
    def test_put_then_get(self):
        runtime = deploy_kv()
        runtime.inject("serve", ("put", "k1", "v1"))
        runtime.inject("serve", ("get", "k1", None))
        runtime.run_until_idle()
        assert runtime.results["serve"] == [("k1", "v1")]

    def test_keys_routed_to_owning_partition(self):
        runtime = deploy_kv(4)
        for i in range(40):
            runtime.inject("serve", ("put", f"key{i}", i))
        runtime.run_until_idle()
        partitioner = runtime._partitioners["table"]
        for se_inst in runtime.se_instances("table"):
            for key in se_inst.element.keys():
                assert partitioner.partition(key) == se_inst.index

    def test_interleaved_puts_and_gets(self):
        runtime = deploy_kv(2)
        for i in range(20):
            runtime.inject("serve", ("put", i, i * 10))
            runtime.inject("serve", ("get", i, None))
        runtime.run_until_idle()
        assert sorted(runtime.results["serve"]) == [
            (i, i * 10) for i in range(20)
        ]

    def test_inject_unknown_entry_rejected(self):
        runtime = deploy_kv()
        with pytest.raises(KeyError):
            runtime.inject("nope", ("put", 1, 1))

    def test_inject_non_entry_rejected(self):
        runtime = Runtime(build_cf_sdg()).deploy()
        with pytest.raises(RuntimeExecutionError):
            runtime.inject("mergeRec", "x")


def reference_cf(ratings, query_user):
    """Sequential Alg. 1: the ground truth for the CF pipeline."""
    user_item = {}
    co_occ = {}
    for user, item, rating in ratings:
        user_item[(user, item)] = rating
        row = {i: r for (u, i), r in user_item.items() if u == user}
        for i, value in row.items():
            if value > 0 and i != item:
                co_occ[(item, i)] = co_occ.get((item, i), 0) + 1
                co_occ[(i, item)] = co_occ.get((i, item), 0) + 1
    row = {i: r for (u, i), r in user_item.items() if u == query_user}
    rec = {}
    for (r, c), count in co_occ.items():
        if c in row and row[c]:
            rec[r] = rec.get(r, 0.0) + count * row[c]
    return rec


class TestCollaborativeFiltering:
    RATINGS = [
        (0, 0, 5), (0, 1, 3), (1, 0, 4), (1, 2, 2), (2, 1, 1), (2, 2, 5),
        (0, 2, 1), (1, 1, 2),
    ]

    def run_cf(self, n_partial):
        runtime = Runtime(
            build_cf_sdg(),
            RuntimeConfig(se_instances={"userItem": 2,
                                        "coOcc": n_partial}),
        ).deploy()
        for rating in self.RATINGS:
            runtime.inject("updateUserItem", rating)
        runtime.run_until_idle()
        runtime.inject("getUserVec", 0)
        runtime.run_until_idle()
        return runtime

    @pytest.mark.parametrize("n_partial", [1, 2, 3])
    def test_recommendations_match_sequential_reference(self, n_partial):
        runtime = self.run_cf(n_partial)
        results = runtime.results["mergeRec"]
        assert len(results) == 1
        user, rec = results[0]
        assert user == 0
        expected = reference_cf(self.RATINGS, 0)
        for item, score in expected.items():
            assert rec.get(item) == pytest.approx(score)

    def test_partial_instances_hold_divergent_state(self):
        runtime = self.run_cf(2)
        sizes = [inst.element.nnz()
                 for inst in runtime.se_instances("coOcc")]
        # Updates were load-balanced across replicas, so each replica
        # holds only part of the co-occurrence counts.
        assert all(size > 0 for size in sizes)

    def test_merge_sums_across_all_partials(self):
        # With 3 replicas the per-replica recommendation is partial; the
        # merged result must equal the single-replica (global) result.
        single = self.run_cf(1).results["mergeRec"][0][1]
        merged = self.run_cf(3).results["mergeRec"][0][1]
        assert merged.to_list() == single.to_list()


class TestIteration:
    def test_cycle_terminates(self):
        runtime = Runtime(build_iterative_sdg()).deploy()
        runtime.inject("stepA", 5)
        processed = runtime.run_until_idle()
        # 5 -> 4 -> ... -> 0 travels the loop, two TEs per round trip.
        assert processed > 5
        assert runtime.is_idle()

    def test_runaway_loop_hits_step_limit(self):
        sdg = SDG("forever")
        sdg.add_task("spin", lambda ctx, item: item, is_entry=True)
        sdg.connect("spin", "spin")
        runtime = Runtime(sdg).deploy()
        runtime.inject("spin", 1)
        with pytest.raises(RuntimeExecutionError, match="idle"):
            runtime.run_until_idle(max_steps=100)


class TestDeterminism:
    def test_same_input_same_results(self):
        def run():
            runtime = deploy_kv(3)
            for i in range(30):
                runtime.inject("serve", ("put", f"k{i}", i))
                runtime.inject("serve", ("get", f"k{i}", None))
            runtime.run_until_idle()
            return runtime.results["serve"]

        assert run() == run()


class TestErrorPropagation:
    def test_task_exception_is_wrapped(self):
        sdg = SDG()

        def boom(ctx, item):
            raise ValueError("bad item")

        sdg.add_task("boom", boom, is_entry=True)
        runtime = Runtime(sdg).deploy()
        runtime.inject("boom", 1)
        with pytest.raises(RuntimeExecutionError, match="boom"):
            runtime.run_until_idle()


class TestEmitAPI:
    def test_ctx_emit_produces_multiple_outputs(self):
        sdg = SDG()

        def splitter(ctx, item):
            for ch in item:
                ctx.emit(ch)

        sdg.add_task("split", splitter, is_entry=True)
        runtime = Runtime(sdg).deploy()
        runtime.inject("split", "abc")
        runtime.run_until_idle()
        assert runtime.results["split"] == ["a", "b", "c"]

    def test_emit_and_return_both_collected(self):
        sdg = SDG()

        def both(ctx, item):
            ctx.emit("emitted")
            return "returned"

        sdg.add_task("t", both, is_entry=True)
        runtime = Runtime(sdg).deploy()
        runtime.inject("t", 1)
        runtime.run_until_idle()
        assert runtime.results["t"] == ["emitted", "returned"]

"""Optimizer smoke — capability-driven dispatch on a wide graph.

The coalescing licence pays where per-envelope dispatch overhead
dominates: a *wide* partitioned KV (many SE instances) under the
longest-queue policy re-ranks every instance on every engine step, so
serving one envelope per step is mostly scheduling. With
``optimize=True`` the certifier grants ``COALESCIBLE_DISPATCH`` on the
entry and the transport folds consecutive deliveries into batches —
one scheduling decision then serves up to ``optimize_batch_max``
items.

The measured pair (baseline vs optimized, best-of-N walls) is written
to ``BENCH_optimizer.json`` so CI can archive the trend; the run
asserts the acceptance bar — at least a 1.2x dispatch speedup — and,
as everywhere else in the optimizer work, byte-identical
``state_fingerprint`` between the two modes.
"""

import json
import os
import time

from conftest import print_figure

from repro.durability.manifest import state_fingerprint
from repro.runtime import Runtime, RuntimeConfig
from repro.testing import build_kv_sdg

ITEMS = 6000
PARTITIONS = 32
SCHEDULER = "longest_queue"
ROUNDS = 3
RESULT_FILE = os.path.join(os.path.dirname(__file__),
                           "BENCH_optimizer.json")


def timed_run(optimize: bool):
    config = RuntimeConfig(se_instances={"table": PARTITIONS},
                           scheduler=SCHEDULER, optimize=optimize)
    runtime = Runtime(build_kv_sdg(), config).deploy()
    try:
        start = time.perf_counter()
        for i in range(ITEMS):
            runtime.inject("serve", ("put", i % (PARTITIONS * 5), i))
        runtime.run_until_idle()
        wall = time.perf_counter() - start
        fingerprint = state_fingerprint(runtime)
        metrics = runtime.merged_metrics()
        coalesced = int(metrics.total("dispatch_coalesced_total"))
        processed = int(metrics.total("engine_items_processed_total"))
    finally:
        runtime.close()
    assert processed == ITEMS
    return wall, fingerprint, coalesced


def best_of(optimize: bool):
    """Best wall over ROUNDS runs (noise floor for sub-second walls)."""
    runs = [timed_run(optimize) for _ in range(ROUNDS)]
    fingerprints = {fp for _, fp, _ in runs}
    assert len(fingerprints) == 1, "non-deterministic state"
    wall = min(w for w, _, _ in runs)
    return wall, runs[0][1], runs[0][2]


def compute_figure():
    wall_base, fp_base, co_base = best_of(optimize=False)
    wall_opt, fp_opt, co_opt = best_of(optimize=True)
    # The optimizer's contract: same state, fewer dispatch decisions.
    assert fp_opt == fp_base
    assert co_base == 0 and co_opt > 0
    return [
        ("baseline", wall_base, ITEMS / wall_base, 1.0, co_base, fp_base),
        ("optimized", wall_opt, ITEMS / wall_opt, wall_base / wall_opt,
         co_opt, fp_opt),
    ]


def test_optimizer_wide_graph_dispatch(benchmark):
    rows = benchmark.pedantic(compute_figure, rounds=1, iterations=1)
    print_figure(
        "Optimizer: wide-graph KV dispatch, baseline vs "
        "capability-driven coalescing",
        ["mode", "wall (s)", "items/s", "speedup", "coalesced",
         "state hash"],
        rows,
    )
    speedup = rows[1][3]
    assert speedup >= 1.2, (
        f"optimized dispatch {speedup:.2f}x below the 1.2x bar"
    )
    payload = {
        "items": ITEMS,
        "partitions": PARTITIONS,
        "scheduler": SCHEDULER,
        "rounds_best_of": ROUNDS,
        "series": [
            {
                "mode": row[0],
                "wall_s": round(row[1], 4),
                "throughput_items_s": round(row[2], 1),
                "speedup_vs_baseline": round(row[3], 2),
                "dispatch_coalesced_total": row[4],
                "state_hash": row[5],
            }
            for row in rows
        ],
    }
    with open(RESULT_FILE, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

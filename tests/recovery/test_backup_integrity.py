"""Backup integrity: chunk counts, CRC-32 checksums, offline targets.

A restore must never be silently partial or silently corrupt — a lost
or tampered chunk surfaces as a typed
:class:`~repro.errors.BackupIntegrityError` on the read path.
"""

import os

import pytest

from repro.apps import KeyValueStore
from repro.errors import BackupIntegrityError, RecoveryError
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    DiskBackupStore,
    NodeCheckpoint,
    RecoveryManager,
    chunk_checksum,
)
from repro.state import KeyValueMap


def make_checkpoint(node_id=0, version=1, n_entries=30, n_chunks=4):
    kv = KeyValueMap()
    for i in range(n_entries):
        kv.put(f"k{i}", i)
    return NodeCheckpoint(
        node_id=node_id, version=version,
        se_chunks={("table", 0): kv.to_chunks(n_chunks)},
    )


class TestSaveRecordsIntegrityMetadata:
    def test_chunk_counts_and_checksums_recorded(self):
        store = BackupStore(m_targets=2)
        checkpoint = make_checkpoint(n_chunks=4)
        store.save(checkpoint)
        assert checkpoint.chunk_counts == {("table", 0): 4}
        assert set(checkpoint.chunk_checksums) == {
            (("table", 0), i) for i in range(4)
        }
        for chunk in checkpoint.se_chunks[("table", 0)]:
            recorded = checkpoint.chunk_checksums[(("table", 0),
                                                   chunk.index)]
            assert recorded == chunk_checksum(chunk)

    def test_verified_read_passes_on_intact_data(self):
        store = BackupStore(m_targets=3)
        store.save(make_checkpoint(n_chunks=5))
        chunks = store.chunks_for(0, ("table", 0))
        assert [c.index for c in chunks] == [0, 1, 2, 3, 4]


class TestCorruptionDetection:
    def test_corrupted_chunk_fails_its_crc_check(self):
        store = BackupStore(m_targets=2)
        store.save(make_checkpoint(n_chunks=4))
        key = store.corrupt_chunk()
        assert key is not None
        with pytest.raises(BackupIntegrityError, match="CRC-32"):
            store.chunks_for(0, ("table", 0))

    def test_unverified_read_still_returns_raw_chunks(self):
        store = BackupStore(m_targets=2)
        store.save(make_checkpoint(n_chunks=4))
        store.corrupt_chunk()
        assert len(store.chunks_for(0, ("table", 0), verify=False)) == 4

    def test_corrupt_chunk_on_empty_store_is_a_noop(self):
        assert BackupStore().corrupt_chunk() is None

    def test_corruption_scoped_to_node(self):
        store = BackupStore(m_targets=2)
        store.save(make_checkpoint(node_id=0))
        store.save(make_checkpoint(node_id=1))
        key = store.corrupt_chunk(node_id=1)
        assert key[0] == 1
        store.chunks_for(0, ("table", 0))  # node 0 unaffected
        with pytest.raises(BackupIntegrityError):
            store.chunks_for(1, ("table", 0))


class TestMissingChunks:
    def test_offline_target_surfaces_as_missing_chunks(self):
        store = BackupStore(m_targets=2)
        store.save(make_checkpoint(n_chunks=4))
        store.set_target_offline(0)
        with pytest.raises(BackupIntegrityError, match="missing"):
            store.chunks_for(0, ("table", 0))
        # Bringing the target back heals the read path.
        store.set_target_offline(0, offline=False)
        assert len(store.chunks_for(0, ("table", 0))) == 4

    def test_save_skips_offline_targets(self):
        store = BackupStore(m_targets=3)
        store.set_target_offline(1)
        store.save(make_checkpoint(n_chunks=6))
        assert store.target_loads()[1] == 0
        assert len(store.chunks_for(0, ("table", 0))) == 6

    def test_save_with_every_target_offline_raises(self):
        store = BackupStore(m_targets=2)
        store.set_target_offline(0)
        store.set_target_offline(1)
        with pytest.raises(RecoveryError, match="every backup target"):
            store.save(make_checkpoint())

    def test_unknown_target_rejected(self):
        with pytest.raises(RecoveryError, match="no backup target"):
            BackupStore(m_targets=2).set_target_offline(5)

    def test_legacy_checkpoints_without_counts_skip_verification(self):
        """Hand-built checkpoints predating the integrity metadata (or
        assembled by external tools) still restore unverified."""
        store = BackupStore(m_targets=2)
        checkpoint = make_checkpoint(n_chunks=4)
        store.save(checkpoint)
        checkpoint.chunk_counts = {}
        checkpoint.chunk_checksums = {}
        store.set_target_offline(0)
        # Incomplete, but nothing recorded to verify against.
        chunks = store.chunks_for(0, ("table", 0))
        assert 0 < len(chunks) < 4


class TestDiskIntegrity:
    def test_disk_corruption_survives_reload(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_chunks=4))
        store.corrupt_chunk()
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        with pytest.raises(BackupIntegrityError, match="CRC-32"):
            fresh.chunks_for(0, ("table", 0))

    def test_unreadable_file_becomes_a_missing_chunk(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_chunks=4))
        chunk_files = [
            os.path.join(directory, name)
            for directory in store._dirs
            for name in os.listdir(directory)
            if "chunk" in name
        ]
        with open(sorted(chunk_files)[0], "wb") as fh:
            fh.write(b"\x00garbage")  # not a pickle any more
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        with pytest.raises(BackupIntegrityError, match="missing"):
            fresh.chunks_for(0, ("table", 0))

    def test_deleted_file_becomes_a_missing_chunk(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_chunks=4))
        chunk_files = [
            os.path.join(directory, name)
            for directory in store._dirs
            for name in os.listdir(directory)
            if "chunk" in name
        ]
        os.unlink(sorted(chunk_files)[0])
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        with pytest.raises(BackupIntegrityError, match="missing"):
            fresh.chunks_for(0, ("table", 0))


class TestRecoveryRefusesPartialRestore:
    """Satellite regression: recovery raises on gaps instead of
    silently restoring a truncated SE."""

    def _checkpointed_kv(self):
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        for i in range(60):
            app.put(i, i)
        app.run()
        manager.checkpoint_all()
        return app, store

    def test_corrupt_chunk_fails_recovery_loudly(self):
        app, store = self._checkpointed_kv()
        victim = app.runtime.se_instance("table", 0).node_id
        store.corrupt_chunk(node_id=victim)
        app.runtime.fail_node(victim)
        recovery = RecoveryManager(app.runtime, store)
        with pytest.raises(BackupIntegrityError, match="CRC-32"):
            recovery.recover_node(victim)

    def test_missing_chunk_fails_recovery_loudly(self):
        app, store = self._checkpointed_kv()
        victim = app.runtime.se_instance("table", 1).node_id
        store.set_target_offline(1)
        app.runtime.fail_node(victim)
        recovery = RecoveryManager(app.runtime, store)
        with pytest.raises(BackupIntegrityError, match="missing"):
            recovery.recover_node(victim)

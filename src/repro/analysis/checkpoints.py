"""Pass 3 — checkpoint safety (``SDG303``).

Incremental (delta) checkpointing relies on the **mutation journal**:
every write must flow through the journalled ``StateBackend`` API
(``set``/``delete``/``clear``), which records the touched keys so a
delta checkpoint ships exactly the changed entries. A raw write on the
backend's internal containers — ``self.table._backend._data[k] = v``,
``ctx.state._data.update(...)`` — mutates state *without* journalling
it: the next delta checkpoint silently omits the entry, the
base+delta restore chain folds to a state that never contained it, and
recovery is wrong without any integrity check firing (the CRC covers
what was serialised, not what was skipped).

The pass scans program methods (and, for hand-built SDGs, the task
functions' sources) for expressions rooted at a state field or
``ctx.state`` that reach

* any underscore-prefixed attribute (``_backend``, ``_data``,
  ``_do_set``, ...), or
* the ``backend`` accessor followed by a mutation (subscript store,
  attribute store, or a non-journalled method call).

Reads through public APIs never match; every bundled app is clean.
"""

from __future__ import annotations

import ast
import inspect
import textwrap

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import ProgramModel

#: Journalled mutators that are safe to call on a backend directly.
_JOURNALLED = frozenset({"set", "delete", "clear", "get", "contains",
                         "items", "journal", "mark_clean"})


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    fields = set(model.result.fields)
    for name, fn_ast in model.result.method_asts.items():
        _scan_function(fn_ast, name, sink,
                       roots=_program_roots(fields))


def run_graph(sdg, sink: DiagnosticSink) -> None:
    """Scan the task functions of a hand-built SDG, where possible."""
    for te in sdg.tasks.values():
        try:
            source = textwrap.dedent(inspect.getsource(te.fn))
            fn_ast = ast.parse(source).body[0]
        except (OSError, TypeError, SyntaxError, IndexError):
            continue  # generated / built-in functions have no source
        if not isinstance(fn_ast, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        _scan_function(fn_ast, te.name, sink, roots=_context_roots())


def _program_roots(fields: set[str]):
    def is_root(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in fields
        )
    return is_root


def _context_roots():
    def is_root(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "state"
            and isinstance(node.value, ast.Name)
            and node.value.id == "ctx"
        )
    return is_root


def _scan_function(fn_ast, origin: str, sink: DiagnosticSink,
                   roots) -> None:
    for node in ast.walk(fn_ast):
        if not isinstance(node, ast.Attribute):
            continue
        if not roots(node.value):
            continue
        if node.attr.startswith("_"):
            sink.emit(
                "SDG303",
                f"{origin!r} reaches into state internals via "
                f"{ast.unparse(node)!r}; writes that bypass the "
                f"journalled StateBackend API are invisible to the "
                f"mutation journal, so delta checkpoints silently omit "
                f"them and restores rebuild corrupt state",
                lineno=node.lineno, col=node.col_offset, origin=origin,
                hint="mutate state only through the element's public "
                     "API (put/set_element/add/... ), which journals "
                     "every key it touches",
            )
        elif node.attr == "backend":
            sink.emit(
                "SDG303",
                f"{origin!r} addresses the physical backend via "
                f"{ast.unparse(node)!r}; program code must stay on the "
                f"logical state-element API so every mutation is "
                f"journalled for incremental checkpointing",
                lineno=node.lineno, col=node.col_offset, origin=origin,
                hint="use the state element's public API instead of its "
                     "backend",
            )

"""Fig. 12 — synchronous vs asynchronous checkpointing.

The paper grows the checkpoint from 1 to 4 GB and compares throughput
and 99th-percentile latency under the two mechanisms. Expected shape:

* sync: throughput drops ~33% at 4 GB; p99 latency climbs from ~2 s to
  ~8 s (processing stops during the checkpoint);
* async: ~5% throughput impact; latency an order of magnitude lower and
  only moderately affected (hundreds of milliseconds).

The second part exercises the real dirty-state SEs: updates applied
while a checkpoint is open are served from the overlay and survive
consolidation — the mechanism that lets processing continue.
"""

from conftest import print_figure

from repro.recovery import BackupStore, CheckpointManager
from repro.runtime import Runtime, RuntimeConfig
from repro.simulation import CheckpointPolicy, NodeParams, simulate_node

from repro.testing import build_kv_sdg

STATE_GB = [1, 2, 3, 4]
OFFERED = 50_000.0
RUN = dict(duration_s=120.0, tick_s=0.004)


def compute_figure():
    rows = []
    for gb in STATE_GB:
        params = NodeParams(service_rate=65_000, state_bytes=gb * 1e9)
        sync = simulate_node(
            OFFERED, params,
            CheckpointPolicy(mode="sync", interval_s=10, disk_bw=400e6),
            **RUN,
        )
        async_ = simulate_node(
            OFFERED, params,
            CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
            **RUN,
        )
        rows.append((
            gb,
            sync.throughput, async_.throughput,
            sync.p(99), async_.p(99),
        ))
    return rows


def test_fig12_sync_vs_async(benchmark):
    rows = benchmark.pedantic(compute_figure, rounds=1, iterations=1)
    print_figure(
        "Fig. 12: sync vs async checkpointing",
        ["state (GB)", "sync t'put (req/s)", "async t'put (req/s)",
         "sync p99 (s)", "async p99 (s)"],
        rows,
    )
    first, last = rows[0], rows[-1]
    # Sync throughput degrades heavily with state (paper: -33% at 4GB).
    assert last[1] < first[1] * 0.8
    assert last[1] < OFFERED * 0.75
    # Async throughput impact stays small (paper: ~5%).
    assert last[2] > OFFERED * 0.93
    # Sync p99 in whole seconds; async an order of magnitude lower.
    assert last[3] > 4.0
    assert last[4] < last[3] / 10
    # Async latency only moderately affected by state growth.
    assert last[4] < 1.2


def test_fig12_mechanism_dirty_state(benchmark):
    """Real engine: updates flow while a checkpoint is open."""

    def run():
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 1}))
        runtime.deploy()
        manager = CheckpointManager(runtime, BackupStore(m_targets=2))
        for i in range(200):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        pending = manager.begin(node)
        # Processing continues against the dirty overlay.
        for i in range(200, 400):
            runtime.inject("serve", ("put", i, i))
        processed_during = runtime.run_until_idle()
        element = runtime.se_instance("table", 0).element
        dirty = element.dirty_size
        checkpoint = manager.complete(pending)
        return {
            "processed during checkpoint": processed_during,
            "dirty entries at completion": dirty,
            "snapshot entries": checkpoint.state_entries(),
            "live entries after consolidation": len(element),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 12 mechanism: dirty-state checkpoint on the real engine",
        ["measure", "value"],
        list(result.items()),
    )
    assert result["processed during checkpoint"] == 200
    assert result["dirty entries at completion"] == 200
    assert result["snapshot entries"] == 200   # consistent cut
    assert result["live entries after consolidation"] == 400

"""Latency/throughput metric collection.

The paper reports latency distributions as candlesticks with the 5th,
25th, 50th, 75th and 95th percentiles; :func:`candlestick` reproduces
exactly that summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def percentile(samples: list[float], p: float) -> float:
    """Linear-interpolation percentile (p in [0, 100])."""
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


@dataclass(frozen=True)
class Candlestick:
    """The paper's five-point latency summary."""

    p5: float
    p25: float
    p50: float
    p75: float
    p95: float

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.p5, self.p25, self.p50, self.p75, self.p95)


def candlestick(samples: list[float]) -> Candlestick:
    """5/25/50/75/95th percentiles of ``samples``."""
    return Candlestick(*(percentile(samples, p)
                         for p in (5, 25, 50, 75, 95)))


class LatencyRecorder:
    """Accumulates latency samples and summarises them."""

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency: float, weight: int = 1) -> None:
        """Record ``weight`` requests that experienced ``latency``."""
        if weight == 1:
            self._samples.append(latency)
        else:
            self._samples.extend([latency] * weight)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def percentile(self, p: float) -> float:
        return percentile(self._samples, p)

    def candlestick(self) -> Candlestick:
        return candlestick(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

"""The ``sdglint`` driver: run every pass, produce a Report.

:func:`analyze` accepts

* an annotated :class:`~repro.program.SDGProgram` subclass — the full
  pipeline runs: the translator front-end in collect-all mode
  (restrictions §4.1, structural splitting, SDG validation), then the
  five value-level passes over the captured method IR;
* a hand-built :class:`~repro.core.graph.SDG` — the graph passes run:
  structural validation plus the checkpoint-safety scan over the task
  functions' sources;
* a zero-argument callable returning an SDG (the low-level app
  builders).

:func:`bundled_targets` names the repository's evaluation applications
so ``repro lint <app-name>`` and the CI gate can sweep all of them.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis import (
    checkpoints,
    interproc,
    keyflow,
    merges,
    payload,
    races,
)
from repro.analysis.diagnostics import DiagnosticSink, Report
from repro.analysis.model import ProgramModel, source_location
from repro.core.graph import SDG

#: The program-level passes, in execution (and documentation) order.
PROGRAM_PASSES: list[tuple[str, Callable]] = [
    ("partial-state-race", races.run),
    ("order-sensitive-merge", merges.run),
    ("checkpoint-bypass", checkpoints.run),
    ("key-consistency", keyflow.run),
    ("dead-payload", payload.run),
    ("interprocedural", interproc.run),
]


def analyze(target, name: str | None = None,
            substrate_safety: bool = False) -> Report:
    """Run the analyzer over ``target`` and return the full report.

    With ``substrate_safety`` the SDG4xx fork-hazard passes run too;
    they are opt-in because substrate-unsafe code is valid in-process.
    """
    from repro.program import SDGProgram

    if isinstance(target, SDG):
        return _analyze_sdg(target, name or target.name,
                            substrate_safety)
    if isinstance(target, type) and issubclass(target, SDGProgram):
        return _analyze_program(target, name or target.__name__,
                                substrate_safety)
    if callable(target):
        sdg = target()
        if isinstance(sdg, SDG):
            label = name or getattr(target, "__name__", sdg.name)
            return _analyze_sdg(sdg, label, substrate_safety)
    raise TypeError(
        f"cannot lint {target!r}: expected an SDGProgram subclass, an "
        f"SDG, or a zero-argument SDG factory"
    )


def _analyze_program(cls: type, name: str,
                     substrate_safety: bool = False) -> Report:
    from repro.translate.builder import translate

    file, line_base = source_location(cls)
    sink = DiagnosticSink(file=file, line_base=line_base)
    result = translate(cls, sink=sink)
    model = ProgramModel.build(cls, result)
    for _pass_name, run in PROGRAM_PASSES:
        run(model, sink)
    if substrate_safety:
        from repro.analysis import substrate

        substrate.run_program(model, sink)
    return Report(target=name, diagnostics=sink.diagnostics)


def _analyze_sdg(sdg: SDG, name: str,
                 substrate_safety: bool = False) -> Report:
    from repro.core.validation import collect

    sink = DiagnosticSink()
    sink.extend(collect(sdg))
    checkpoints.run_graph(sdg, sink)
    if substrate_safety:
        from repro.analysis import substrate

        substrate.run_graph(sdg, sink)
    return Report(target=name, diagnostics=sink.diagnostics)


def bundled_targets(
    substrate_safety: bool = False,
) -> dict[str, Callable[[], Report]]:
    """Lintable bundled applications, by CLI name."""
    def program(path: str, cls_name: str):
        def load() -> Report:
            import importlib

            module = importlib.import_module(path)
            return analyze(getattr(module, cls_name),
                           name=f"{path}:{cls_name}",
                           substrate_safety=substrate_safety)
        return load

    def graph(path: str, builder: str):
        def load() -> Report:
            import importlib

            module = importlib.import_module(path)
            return analyze(getattr(module, builder)(),
                           name=f"{path}:{builder}",
                           substrate_safety=substrate_safety)
        return load

    return {
        "cf": program("repro.apps.collaborative_filtering",
                      "CollaborativeFiltering"),
        "kvstore": program("repro.apps.kvstore", "KeyValueStore"),
        "lr": program("repro.apps.logistic_regression",
                      "LogisticRegression"),
        "kmeans": program("repro.apps.kmeans", "KMeans"),
        "multiclass": program("repro.apps.multiclass",
                              "MulticlassRegression"),
        "wordcount": graph("repro.apps.wordcount", "build_wordcount_sdg"),
        "pagerank": graph("repro.apps.pagerank", "build_pagerank_sdg"),
    }


def bundled_objects() -> dict[str, Callable[[], tuple[object, str]]]:
    """The bundled applications as certifiable objects, by CLI name.

    Same keys as :func:`bundled_targets`, but each loader returns the
    raw target (program class or built SDG) plus its display name, so
    callers can run :func:`repro.analysis.capabilities.certify` — or
    anything else — over it instead of the lint pipeline.
    """
    def program(path: str, cls_name: str):
        def load() -> tuple[object, str]:
            import importlib

            module = importlib.import_module(path)
            return getattr(module, cls_name), f"{path}:{cls_name}"
        return load

    def graph(path: str, builder: str):
        def load() -> tuple[object, str]:
            import importlib

            module = importlib.import_module(path)
            return getattr(module, builder)(), f"{path}:{builder}"
        return load

    return {
        "cf": program("repro.apps.collaborative_filtering",
                      "CollaborativeFiltering"),
        "kvstore": program("repro.apps.kvstore", "KeyValueStore"),
        "lr": program("repro.apps.logistic_regression",
                      "LogisticRegression"),
        "kmeans": program("repro.apps.kmeans", "KMeans"),
        "multiclass": program("repro.apps.multiclass",
                              "MulticlassRegression"),
        "wordcount": graph("repro.apps.wordcount", "build_wordcount_sdg"),
        "pagerank": graph("repro.apps.pagerank", "build_pagerank_sdg"),
    }

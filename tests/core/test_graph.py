"""Unit tests for the SDG graph container."""

import pytest

from repro.core import SDG, AccessMode, Dispatch
from repro.errors import ValidationError
from repro.state import KeyValueMap

from tests.helpers import build_cf_sdg, build_iterative_sdg, noop


class TestConstruction:
    def test_duplicate_state_rejected(self):
        sdg = SDG()
        sdg.add_state("s", KeyValueMap)
        with pytest.raises(ValidationError):
            sdg.add_state("s", KeyValueMap)

    def test_duplicate_task_rejected(self):
        sdg = SDG()
        sdg.add_task("t", noop)
        with pytest.raises(ValidationError):
            sdg.add_task("t", noop)

    def test_task_and_state_namespaces_are_shared(self):
        sdg = SDG()
        sdg.add_state("x", KeyValueMap)
        with pytest.raises(ValidationError):
            sdg.add_task("x", noop)
        sdg.add_task("y", noop)
        with pytest.raises(ValidationError):
            sdg.add_state("y", KeyValueMap)

    def test_task_with_unknown_state_rejected(self):
        sdg = SDG()
        with pytest.raises(ValidationError):
            sdg.add_task("t", noop, state="nope",
                         access=AccessMode.LOCAL)

    def test_access_mode_without_state_rejected(self):
        sdg = SDG()
        sdg.add_state("s", KeyValueMap)
        with pytest.raises(ValueError):
            sdg.add_task("t", noop, state="s")  # mode NONE but SE named

    def test_dataflow_requires_known_endpoints(self):
        sdg = SDG()
        sdg.add_task("a", noop)
        with pytest.raises(ValidationError):
            sdg.connect("a", "missing")

    def test_keyed_dataflow_requires_key_fn(self):
        sdg = SDG()
        sdg.add_task("a", noop)
        sdg.add_task("b", noop)
        with pytest.raises(ValueError):
            sdg.connect("a", "b", Dispatch.KEY_PARTITIONED)


class TestQueries:
    def test_cf_entries(self):
        sdg = build_cf_sdg()
        assert {t.name for t in sdg.entries()} == {
            "updateUserItem", "getUserVec",
        }

    def test_successors_and_predecessors(self):
        sdg = build_cf_sdg()
        assert [e.dst for e in sdg.successors("getUserVec")] == ["getRecVec"]
        assert [e.src for e in sdg.predecessors("mergeRec")] == ["getRecVec"]

    def test_tasks_accessing(self):
        sdg = build_cf_sdg()
        names = {t.name for t in sdg.tasks_accessing("coOcc")}
        assert names == {"updateCoOcc", "getRecVec"}

    def test_se_of(self):
        sdg = build_cf_sdg()
        assert sdg.se_of("updateUserItem").name == "userItem"
        assert sdg.se_of("mergeRec") is None

    def test_reachability(self):
        sdg = build_cf_sdg()
        assert sdg.reachable_from_entries() == set(sdg.tasks)


class TestCycles:
    def test_acyclic_graph_has_no_cycles(self):
        assert build_cf_sdg().cycles() == []

    def test_two_te_loop_found(self):
        cycles = build_iterative_sdg().cycles()
        assert cycles == [{"stepA", "stepB"}]

    def test_self_loop_found(self):
        sdg = SDG()
        sdg.add_task("t", noop, is_entry=True)
        sdg.connect("t", "t", Dispatch.ONE_TO_ANY)
        assert sdg.cycles() == [{"t"}]

    def test_long_pipeline_no_recursion_blowup(self):
        sdg = SDG()
        n = 2000
        for i in range(n):
            sdg.add_task(f"t{i}", noop, is_entry=(i == 0))
        for i in range(n - 1):
            sdg.connect(f"t{i}", f"t{i+1}")
        assert sdg.cycles() == []


class TestRendering:
    def test_to_dot_mentions_all_elements(self):
        sdg = build_cf_sdg()
        dot = sdg.to_dot()
        for name in list(sdg.tasks) + list(sdg.states):
            assert name in dot
        assert "all_to_one" in dot

    def test_repr(self):
        assert "tasks=5" in repr(build_cf_sdg())


class TestDispatchProperties:
    def test_broadcast_flag(self):
        assert Dispatch.ONE_TO_ALL.is_broadcast
        assert not Dispatch.ONE_TO_ANY.is_broadcast

    def test_barrier_flag(self):
        assert Dispatch.ALL_TO_ONE.needs_barrier
        assert not Dispatch.ONE_TO_ALL.needs_barrier

    def test_key_flag(self):
        assert Dispatch.KEY_PARTITIONED.needs_key
        assert not Dispatch.ALL_TO_ONE.needs_key

"""Fig. 6 — KV store on one node: throughput/latency vs state size.

The paper grows the dictionary state from 100 MB to 2.5 GB on one VM
and compares SDG against Naiad with its synchronous global
checkpointing, both on disk and on a RAM disk. Expected shape:

* ~65 k requests/s parity at 100 MB;
* SDG throughput largely unaffected by state growth;
* Naiad-Disk collapses as checkpoints outgrow the interval;
* Naiad-NoDisk still ends up far below SDG at 2.5 GB (paper: 63%
  lower), and its p95 latency spikes during stop-the-world pauses.
"""

from conftest import print_figure

from repro.baselines import NaiadModel
from repro.simulation import CheckpointPolicy, NodeParams, simulate_node

STATE_SIZES = [0.1e9, 0.5e9, 1e9, 2e9, 2.5e9]
OFFERED = 60_000.0  # ~92% of capacity, as a loaded-but-stable server
# Long enough for several checkpoint cycles even at 2.5 GB, so the
# measured duty cycle reflects steady state rather than one pause.
RUN = dict(duration_s=120.0, tick_s=0.004)


def sdg(state_bytes):
    return simulate_node(
        OFFERED,
        NodeParams(service_rate=65_000, state_bytes=state_bytes),
        CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
        **RUN,
    )


def compute_figure():
    rows = []
    for state in STATE_SIZES:
        sdg_result = sdg(state)
        nodisk = NaiadModel.nodisk().simulate(OFFERED, state, **RUN)
        disk = NaiadModel.disk().simulate(OFFERED, state, **RUN)
        rows.append((
            state / 1e9,
            sdg_result.throughput,
            nodisk.throughput,
            disk.throughput,
            sdg_result.p(95) * 1000,
            nodisk.p(95) * 1000,
        ))
    return rows


def test_fig6_state_size_single_node(benchmark):
    rows = benchmark.pedantic(compute_figure, rounds=1, iterations=1)
    print_figure(
        "Fig. 6: KV throughput/latency vs state size (single node)",
        ["state (GB)", "SDG (req/s)", "Naiad-NoDisk (req/s)",
         "Naiad-Disk (req/s)", "SDG p95 (ms)", "NoDisk p95 (ms)"],
        rows,
    )
    smallest, largest = rows[0], rows[-1]

    # Parity at small state.
    assert abs(smallest[1] - smallest[2]) / smallest[1] < 0.12

    # SDG largely unaffected by state growth.
    assert largest[1] > smallest[1] * 0.9

    # Naiad-NoDisk ends far below SDG at 2.5 GB (paper: 63% lower).
    assert largest[2] < largest[1] * 0.5

    # Naiad-Disk collapses hardest.
    assert largest[3] < largest[2]
    assert largest[3] < smallest[3] * 0.5

    # Naiad's stop-the-world pauses dominate its tail latency.
    assert largest[5] > largest[4] * 3

"""Unified observability: metrics registry, causal tracing, event bus.

Three pillars, wired through every layer behind the existing
step-hook/facade seams:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  primitives in an injectable :class:`MetricsRegistry` with a
  Prometheus text exporter.  Histogram buckets are *logical steps*;
  nothing in the registry touches the wall clock, so the deterministic
  core (§4.1) stays deterministic.
* :mod:`repro.obs.trace` — optional per-envelope causal tracing
  (``RuntimeConfig(trace=True)``): each envelope carries a trace id and
  the :class:`Tracer` reconstructs its hop list (TE, instance,
  queue-wait and service spans in logical steps, ``replayed`` marks).
* :mod:`repro.obs.events` — a typed, structured :class:`EventBus` that
  the engine, checkpoint manager, recovery supervisor, failure
  detector and chaos injector publish to instead of private logs,
  with JSON-lines export.

``repro obs`` (see :mod:`repro.obs.runner`) runs a workload with the
full stack enabled and renders metrics + traces + events.
"""

from repro.obs.events import Event, EventBus, JsonlExporter
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import Hop, Trace, Tracer

__all__ = [
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "Hop",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Trace",
    "Tracer",
]

"""Asynchronous PageRank over a cyclic SDG (§3.1 iteration).

Cycles in the dataflow propagate updates between TEs, and "SDGs do not
provide coordination during iteration by default — sufficient for many
iterative machine learning and data mining algorithms because they can
converge from different intermediate states". Residual-push PageRank is
the canonical such algorithm: each message carries probability mass to
a vertex; the vertex absorbs it into its rank and, once its residual
exceeds a threshold, pushes the damped mass onward along its out-edges
— a keyed dataflow cycle with no barriers, terminating when all
residual mass falls below the threshold.

The vertex state (rank, residual, adjacency) lives in a partitioned SE;
the loop edge is key-partitioned on the vertex id, so the allocation
algorithm's step 1 (colocate cycle state) applies.
"""

from __future__ import annotations

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.state import KeyValueMap


def build_pagerank_sdg(damping: float = 0.85,
                       epsilon: float = 1e-6) -> SDG:
    """A cyclic PageRank SDG.

    Entries:

    * ``load`` — ``(vertex, out_edges)``: register a vertex and seed it
      with the teleport mass ``1 - damping``;
    * ``push``  — internal/loop messages ``(vertex, mass)``; also the
      external seed channel;
    * ``read`` — ``vertex``: emit ``(vertex, rank)``.
    """
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")

    sdg = SDG("pagerank")
    sdg.add_state("vertices", KeyValueMap, kind=StateKind.PARTITIONED,
                  partition_by="vertex")

    def load(ctx, item):
        vertex, out_edges = item
        # Mass pushed by already-loaded neighbours may have arrived
        # first; merge rather than overwrite so none of it is lost.
        record = ctx.state.get(vertex) or {
            "rank": 0.0, "residual": 0.0, "out": [], "scheduled": False,
        }
        record["out"] = list(out_edges)
        ctx.state.put(vertex, record)
        # Seed with the teleport mass; flows around the loop from here.
        return (vertex, 1.0 - damping)

    def push(ctx, message):
        """Handle a mass delivery ``(v, m)`` or an activation ``(v, None)``.

        Mass deliveries only accumulate into the vertex residual; the
        first delivery that lifts the residual over the threshold
        schedules one activation token. The activation then absorbs the
        *whole* accumulated residual at once — coalescing any deliveries
        queued in between, which keeps the message complexity near the
        textbook bound instead of branching per delivery.
        """
        vertex, mass = message
        record = ctx.state.get(vertex)
        if record is None:
            # Mass sent to a vertex not loaded yet: retain it.
            record = {"rank": 0.0, "residual": 0.0, "out": [],
                      "scheduled": False}
        if mass is not None:
            record["residual"] += mass
            if record["residual"] >= epsilon and not record["scheduled"]:
                record["scheduled"] = True
                ctx.emit((vertex, None))
            ctx.state.put(vertex, record)
            return None
        # Activation: absorb everything accumulated so far.
        record["scheduled"] = False
        absorbed = record["residual"]
        record["residual"] = 0.0
        record["rank"] += absorbed
        ctx.state.put(vertex, record)
        if absorbed > 0 and record["out"]:
            share = damping * absorbed / len(record["out"])
            for neighbour in record["out"]:
                ctx.emit((neighbour, share))
        return None

    def read(ctx, vertex):
        record = ctx.state.get(vertex)
        return (vertex, record["rank"] if record else 0.0)

    sdg.add_task("load", load, state="vertices",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda item: item[0],
                 entry_key_name="vertex")
    sdg.add_task("push", push, state="vertices",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda item: item[0],
                 entry_key_name="vertex")
    sdg.add_task("read", read, state="vertices",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda vertex: vertex,
                 entry_key_name="vertex")
    sdg.connect("load", "push", Dispatch.KEY_PARTITIONED,
                key_fn=lambda item: item[0], key_name="vertex")
    # The iteration: push feeds itself along the keyed loop edge.
    sdg.connect("push", "push", Dispatch.KEY_PARTITIONED,
                key_fn=lambda item: item[0], key_name="vertex")
    return sdg


def pagerank_scores(runtime, vertices) -> dict:
    """Normalised ranks for ``vertices`` from a drained runtime."""
    before = len(runtime.results.get("read", []))
    for vertex in vertices:
        runtime.inject("read", vertex)
    runtime.run_until_idle()
    raw = dict(runtime.results["read"][before:])
    total = sum(raw.values()) or 1.0
    return {vertex: rank / total for vertex, rank in raw.items()}

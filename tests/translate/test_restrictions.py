"""Tests for the §4.1 program-restriction scanner."""

import pytest

from repro import (
    Partitioned,
    SDGProgram,
    TranslationError,
    entry,
)
from repro.state import KeyValueMap


class TestDeterminism:
    def test_random_rejected(self):
        class UsesRandom(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import random

                self.table.put(key, random.random())

        with pytest.raises(TranslationError, match="deterministic"):
            UsesRandom.translate()

    def test_time_rejected(self):
        class UsesTime(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import time

                self.table.put(key, time.time())

        with pytest.raises(TranslationError, match="deterministic"):
            UsesTime.translate()

    def test_violation_in_helper_rejected(self):
        class HelperViolates(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                self.table.put(key, self.stamp())

            def stamp(self):
                import datetime

                return datetime.datetime.now()

        with pytest.raises(TranslationError, match="deterministic"):
            HelperViolates.translate()

    def test_timestamps_as_arguments_allowed(self):
        class Clean(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key, timestamp):
                self.table.put(key, timestamp)

        Clean.translate()  # no error: determinism is the caller's job


class TestLocationIndependence:
    def test_open_rejected(self):
        class ReadsFiles(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def load(self, key):
                with open("/etc/hosts") as fh:
                    self.table.put(key, fh.read())

        with pytest.raises(TranslationError, match="location independent"):
            ReadsFiles.translate()

    def test_socket_rejected(self):
        class UsesSockets(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def ping(self, key):
                import socket

                self.table.put(key, socket.gethostname())

        with pytest.raises(TranslationError, match="location independent"):
            UsesSockets.translate()

    def test_os_environ_rejected(self):
        class ReadsEnv(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def load(self, key):
                import os

                self.table.put(key, os.getenv("HOME"))

        with pytest.raises(TranslationError, match="location independent"):
            ReadsEnv.translate()

    def test_error_carries_line_number(self):
        class UsesRandom(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import random

                value = random.random()
                self.table.put(key, value)

        with pytest.raises(TranslationError, match="line"):
            UsesRandom.translate()

"""Static enforcement of the paper's §4.1 program restrictions.

Beyond the structural rules (one SE per statement, merge-after-global),
translated programs must be:

* **deterministic** — replay-based recovery re-executes computation and
  downstream duplicate filtering assumes identical outputs, so programs
  "should not depend on system time or random input";
* **location independent** — TEs migrate between nodes, so programs
  "cannot make assumptions about the execution environment", e.g. local
  files, sockets or environment variables.

The checks are a conservative static scan over the method ASTs for
calls into the offending modules/builtins. Import aliases are resolved
first (``from time import time as now`` and ``import random as r`` do
not evade the scan), both for aliases introduced inside the scanned
method and for aliases passed in from the surrounding module/class
scope. Local bindings are resolved too, in the opposite direction: a
parameter or local variable that merely *shadows* a forbidden builtin
(``def load(self, open)``) is a call through a local value, not the
environment, and is not flagged. The checks are heuristic (Python
cannot be fully sandboxed statically) but catch the realistic mistakes
with actionable errors.

:func:`restriction_sites` exposes the raw findings as structured
sites; the interprocedural summary layer
(:mod:`repro.analysis.summaries`) reuses them so helper- and
free-function-laundered violations surface with their call chain.

With a :class:`~repro.analysis.diagnostics.DiagnosticSink` the scan
reports **every** violation as a structured diagnostic; without one it
raises :class:`~repro.errors.TranslationError` on the first, which is
the historical ``translate()`` behaviour.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.diagnostics import DiagnosticSink
from repro.errors import TranslationError

#: Module roots whose use breaks determinism (§4.1).
_NONDETERMINISTIC_MODULES = frozenset({
    "random", "secrets", "uuid", "time", "datetime",
})

#: Module roots whose use breaks location independence (§4.1).
_ENVIRONMENT_MODULES = frozenset({
    "os", "socket", "subprocess", "pathlib", "tempfile", "shutil",
})

#: Builtins that read the execution environment.
_FORBIDDEN_BUILTINS = frozenset({"input", "open"})

#: Builtins whose result is process-dependent: ``hash`` differs across
#: interpreter runs and forked workers under hash randomization
#: (PYTHONHASHSEED), and ``id`` is an address. Both break the §4.1
#: determinism that replay recovery and duplicate filtering assume.
_NONDETERMINISTIC_BUILTINS = frozenset({"hash", "id"})


def _call_root(node: ast.Call) -> str | None:
    """The leftmost name of a call target (``random.random`` → ``random``)."""
    target = node.func
    while isinstance(target, ast.Attribute):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id
    return None


def collect_import_aliases(nodes: list[ast.stmt]) -> dict[str, str]:
    """Map every name an import binds to the *root* module it came from.

    ``import random as r`` → ``{"r": "random"}``; ``from time import
    time as now`` → ``{"now": "time"}``; ``from os.path import join``
    → ``{"join": "os"}``. Plain ``import random`` maps the root to
    itself, so resolution is a no-op for the unaliased case.
    """
    aliases: dict[str, str] = {}
    for stmt in nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    bound = alias.asname or root
                    aliases[bound] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports cannot name stdlib roots
                root = node.module.split(".")[0]
                for alias in node.names:
                    bound = alias.asname or alias.name
                    aliases[bound] = root
    return aliases


@dataclass(frozen=True)
class RestrictionSite:
    """One raw §4.1 violation site, before message formatting."""

    #: ``"nondet"`` (SDG101) or ``"env"`` (SDG102).
    kind: str
    #: The offending module root or builtin name, alias-resolved.
    detail: str
    #: The name as written at the call site (differs under an alias).
    root: str
    lineno: int
    col: int


def _fn_local_bindings(fn: ast.FunctionDef) -> set[str]:
    # Imported lazily: callgraph imports this module for the alias
    # collector, so the reverse import must not run at module load.
    from repro.analysis.callgraph import local_bindings

    return local_bindings(fn)


def restriction_sites(
    fn: ast.FunctionDef,
    module_aliases: dict[str, str] | None = None,
) -> list[RestrictionSite]:
    """Every §4.1 violation site in one function, in walk order.

    Alias-resolved (imports inside the function override the passed-in
    module/class aliases) and shadow-aware: a call through a name the
    function binds locally — a parameter or assignment shadowing
    ``open``, ``time``, ``hash``... — never matches, because it calls
    a local value, not the builtin or module.
    """
    aliases = dict(module_aliases or {})
    fn_aliases = collect_import_aliases(fn.body)
    aliases.update(fn_aliases)
    shadowed = _fn_local_bindings(fn) - set(fn_aliases)
    sites: list[RestrictionSite] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        root = _call_root(node)
        if root is None or root in shadowed:
            continue
        resolved = aliases.get(root, root)
        if resolved in _NONDETERMINISTIC_MODULES:
            kind = "nondet"
        elif resolved in _ENVIRONMENT_MODULES:
            kind = "env"
        elif (resolved in _FORBIDDEN_BUILTINS and root == resolved
                and isinstance(node.func, ast.Name)):
            kind = "env"
        elif (resolved in _NONDETERMINISTIC_BUILTINS and root == resolved
                and isinstance(node.func, ast.Name)):
            kind = "nondet"
        else:
            continue
        sites.append(RestrictionSite(
            kind=kind, detail=resolved, root=root,
            lineno=node.lineno, col=node.col_offset,
        ))
    return sites


def site_message(site: RestrictionSite, method: str) -> tuple[str, str, str]:
    """(code, message, hint) for one restriction site."""
    alias_note = (f" (via the import alias {site.root!r})"
                  if site.detail != site.root else "")
    if site.kind == "nondet":
        if site.detail in _NONDETERMINISTIC_BUILTINS:
            return (
                "SDG101",
                f"method {method!r} calls the builtin {site.detail!r}: "
                f"its result is process-dependent (hash randomization / "
                f"object addresses), so replay recovery and forked "
                f"workers compute different values (§4.1)",
                "derive keys and identities from the data itself "
                "(stable fields, explicit counters), never from "
                "hash()/id()",
            )
        return (
            "SDG101",
            f"method {method!r} calls into {site.detail!r}{alias_note}: "
            f"translated programs must be deterministic — recovery "
            f"re-executes computation and filters duplicates by "
            f"identity (§4.1); pass randomness/timestamps in as "
            f"entry arguments instead",
            "pass the nondeterministic value in as an entry "
            "argument computed by the caller",
        )
    return (
        "SDG102",
        f"method {method!r} calls into {site.detail!r}{alias_note}: "
        f"translated programs must be location independent — TEs "
        f"run on (and migrate between) arbitrary nodes and cannot "
        f"rely on local files, sockets or the OS environment "
        f"(§4.1)",
        "move environment interaction outside the program; "
        "feed external data in through entry methods",
    )


def check_restrictions(
    fn: ast.FunctionDef,
    method: str,
    module_aliases: dict[str, str] | None = None,
    sink: DiagnosticSink | None = None,
) -> None:
    """Scan one method for §4.1 violations.

    Raises on the first violation, or — when ``sink`` is given —
    records every violation as a diagnostic and returns.
    """
    for site in restriction_sites(fn, module_aliases):
        code, message, hint = site_message(site, method)
        if sink is None:
            raise TranslationError(message, lineno=site.lineno)
        sink.emit(code, message, lineno=site.lineno, col=site.col,
                  origin=method, hint=hint)

"""Tests for the §4.1 program-restriction scanner."""

import ast

import pytest

from repro import (
    Partitioned,
    SDGProgram,
    TranslationError,
    entry,
)
from repro.state import KeyValueMap
from repro.translate.restrictions import (
    check_restrictions,
    collect_import_aliases,
)


class TestDeterminism:
    def test_random_rejected(self):
        class UsesRandom(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import random

                self.table.put(key, random.random())

        with pytest.raises(TranslationError, match="deterministic"):
            UsesRandom.translate()

    def test_time_rejected(self):
        class UsesTime(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import time

                self.table.put(key, time.time())

        with pytest.raises(TranslationError, match="deterministic"):
            UsesTime.translate()

    def test_violation_in_helper_rejected(self):
        class HelperViolates(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                self.table.put(key, self.stamp())

            def stamp(self):
                import datetime

                return datetime.datetime.now()

        with pytest.raises(TranslationError, match="deterministic"):
            HelperViolates.translate()

    def test_timestamps_as_arguments_allowed(self):
        class Clean(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key, timestamp):
                self.table.put(key, timestamp)

        Clean.translate()  # no error: determinism is the caller's job


class TestLocationIndependence:
    def test_open_rejected(self):
        class ReadsFiles(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def load(self, key):
                with open("/etc/hosts") as fh:
                    self.table.put(key, fh.read())

        with pytest.raises(TranslationError, match="location independent"):
            ReadsFiles.translate()

    def test_socket_rejected(self):
        class UsesSockets(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def ping(self, key):
                import socket

                self.table.put(key, socket.gethostname())

        with pytest.raises(TranslationError, match="location independent"):
            UsesSockets.translate()

    def test_os_environ_rejected(self):
        class ReadsEnv(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def load(self, key):
                import os

                self.table.put(key, os.getenv("HOME"))

        with pytest.raises(TranslationError, match="location independent"):
            ReadsEnv.translate()

    def test_error_carries_line_number(self):
        class UsesRandom(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import random

                value = random.random()
                self.table.put(key, value)

        with pytest.raises(TranslationError, match="line"):
            UsesRandom.translate()


class TestImportAliases:
    """The scan must see through import aliases (the old blind spot)."""

    def test_from_import_alias_rejected(self):
        class AliasedTime(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                from time import time as now

                self.table.put(key, now())

        with pytest.raises(TranslationError, match="deterministic"):
            AliasedTime.translate()

    def test_module_alias_rejected(self):
        class AliasedRandom(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                import random as r

                self.table.put(key, r.random())

        with pytest.raises(TranslationError, match="deterministic"):
            AliasedRandom.translate()

    def test_submodule_from_import_rejected(self):
        class AliasedPath(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                from os.path import join

                self.table.put(key, join("a", "b"))

        with pytest.raises(TranslationError, match="location independent"):
            AliasedPath.translate()

    def test_error_message_names_the_alias(self):
        class AliasedTime(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key):
                from time import time as now

                self.table.put(key, now())

        with pytest.raises(TranslationError, match="via the import alias"):
            AliasedTime.translate()

    def test_module_level_alias_reaches_methods(self):
        # Aliases from the enclosing scope are passed in by translate();
        # check_restrictions applies them to the scanned method.
        fn = ast.parse(
            "def put(self, key):\n    self.table.put(key, now())"
        ).body[0]
        aliases = {"now": "time"}
        with pytest.raises(TranslationError, match="deterministic"):
            check_restrictions(fn, "put", module_aliases=aliases)

    def test_innocent_alias_not_flagged(self):
        fn = ast.parse(
            "def put(self, key):\n    self.table.put(key, sqrt(key))"
        ).body[0]
        check_restrictions(fn, "put", module_aliases={"sqrt": "math"})


class TestCollectImportAliases:
    def test_plain_and_aliased_imports(self):
        tree = ast.parse(
            "import random\n"
            "import random as r\n"
            "from time import time as now\n"
            "from os.path import join\n"
        )
        aliases = collect_import_aliases(tree.body)
        assert aliases == {"random": "random", "r": "random",
                           "now": "time", "join": "os"}

    def test_relative_imports_skipped(self):
        tree = ast.parse("from .local import helper")
        assert collect_import_aliases(tree.body) == {}


class TestCollectMode:
    def test_sink_collects_every_violation(self):
        from repro.analysis import DiagnosticSink

        fn = ast.parse(
            "def put(self, key):\n"
            "    import random\n"
            "    a = random.random()\n"
            "    import socket\n"
            "    b = socket.gethostname()\n"
            "    self.table.put(key, (a, b))\n"
        ).body[0]
        sink = DiagnosticSink()
        check_restrictions(fn, "put", sink=sink)  # must not raise
        codes = [d.code for d in sink.diagnostics]
        assert codes == ["SDG101", "SDG102"]

"""Tests for the synthetic workload generators."""

from collections import Counter

import pytest

from repro.apps import CollaborativeFiltering, KeyValueStore
from repro.workloads import (
    KVWorkload,
    LabelledPoints,
    RatingsWorkload,
    TextWorkload,
    ZipfSampler,
)


class TestZipfSampler:
    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, seed=5).sample_many(50)
        b = ZipfSampler(100, seed=5).sample_many(50)
        assert a == b

    def test_skew_favours_low_ranks(self):
        sampler = ZipfSampler(1000, s=1.2, seed=1)
        counts = Counter(sampler.sample_many(5000))
        top10 = sum(counts[r] for r in range(10))
        assert top10 > 5000 * 0.3

    def test_zero_exponent_is_uniform_mass(self):
        sampler = ZipfSampler(10, s=0.0)
        assert sampler.probability(0) == pytest.approx(0.1)
        assert sampler.probability(9) == pytest.approx(0.1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, s=1.0)
        total = sum(sampler.probability(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_samples_in_range(self):
        sampler = ZipfSampler(7, seed=3)
        assert all(0 <= r < 7 for r in sampler.sample_many(200))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=-1)
        with pytest.raises(ValueError):
            ZipfSampler(5).probability(5)


class TestRatingsWorkload:
    def test_read_fraction_respected(self):
        workload = RatingsWorkload(read_fraction=0.25, seed=1)
        ops = list(workload.ops(2000))
        reads = sum(1 for op in ops if op.kind == "get_rec")
        assert reads / len(ops) == pytest.approx(0.25, abs=0.05)

    def test_writes_carry_item_and_rating(self):
        workload = RatingsWorkload(read_fraction=0.0)
        for op in workload.ops(50):
            assert op.kind == "add_rating"
            assert 0 <= op.item < workload.n_items
            assert 1 <= op.rating <= 5

    def test_drives_cf_program(self):
        app = CollaborativeFiltering.launch(co_occ=2)
        workload = RatingsWorkload(n_users=20, n_items=10,
                                   read_fraction=0.3, seed=2)
        writes, reads = workload.apply_to(app, 60)
        app.run()
        assert writes + reads == 60
        assert len(app.results("get_rec")) == reads

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            RatingsWorkload(read_fraction=1.5)


class TestTextWorkload:
    def test_line_shape(self):
        workload = TextWorkload(words_per_line=5, inter_arrival=10)
        lines = list(workload.lines(4))
        assert [t for t, _ in lines] == [0, 10, 20, 30]
        assert all(len(line.split()) == 5 for _, line in lines)

    def test_zipf_word_frequencies(self):
        workload = TextWorkload(vocabulary=1000, skew=1.2, seed=1)
        counts = Counter()
        for _, line in workload.lines(500):
            counts.update(line.split())
        assert counts["w0"] > counts.get("w500", 0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TextWorkload(vocabulary=0)


class TestKVWorkload:
    def test_pure_write_stream(self):
        workload = KVWorkload(read_fraction=0.0, seed=1)
        assert all(op.kind == "put" for op in workload.ops(100))

    def test_mixed_stream(self):
        workload = KVWorkload(read_fraction=0.5, seed=1)
        kinds = Counter(op.kind for op in workload.ops(1000))
        assert kinds["get"] == pytest.approx(500, abs=80)

    def test_skewed_keys_concentrate(self):
        workload = KVWorkload(n_keys=1000, skew=1.2, seed=1)
        keys = Counter(op.key for op in workload.ops(2000))
        assert keys["key0"] > keys.get("key500", 0)

    def test_drives_kv_program(self):
        app = KeyValueStore.launch(table=3)
        workload = KVWorkload(n_keys=50, read_fraction=0.4, seed=9)
        writes, reads = workload.apply_to(app, 100)
        app.run()
        assert writes + reads == 100
        assert len(app.results("get")) == reads


class TestLabelledPoints:
    def test_features_include_bias(self):
        points = LabelledPoints(dimensions=3)
        features, label = next(points.points(1))
        assert len(features) == 4
        assert features[0] == 1.0
        assert label in (0, 1)

    def test_separable_with_wide_margin(self):
        points = LabelledPoints(dimensions=4, margin=3.0, noise=0.2,
                                seed=1)

        # An oracle along the generating direction classifies well.
        direction = points._direction

        def oracle(features):
            z = sum(d * f for d, f in zip(direction, features[1:]))
            return 1.0 if z > 0 else 0.0

        assert points.accuracy_of(oracle) > 0.97

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            LabelledPoints(dimensions=0)


class TestDesignSpace:
    def test_sdg_row_claims(self):
        from repro.designspace import sdg_row

        row = sdg_row()
        assert row.programming_model == "imperative"
        assert row.state_representation == "explicit"
        assert row.execution == "pipelined"
        assert row.failure_recovery == "async. local checkpoints"

    def test_sdg_is_unique_in_combination(self):
        """Table 1's argument: no other framework combines imperative
        programming, large explicit state with fine-grained updates,
        pipelined low-latency execution, iteration and async local
        checkpoints."""
        from repro.designspace import YES, frameworks_with

        matches = frameworks_with(
            programming_model="imperative",
            state_representation="explicit",
            large_state=YES,
            fine_grained_updates=YES,
            execution="pipelined",
            low_latency=YES,
            iteration=YES,
        )
        assert [row.system for row in matches] == ["SDG"]

    def test_table_renders_all_rows(self):
        from repro.designspace import TABLE_1, render_table

        rendered = render_table()
        for row in TABLE_1:
            assert row.system in rendered

    def test_fifteen_frameworks(self):
        from repro.designspace import TABLE_1

        assert len(TABLE_1) == 15

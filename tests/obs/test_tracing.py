"""Tests for per-envelope causal tracing through the live runtime."""

from repro.apps.wordcount import build_wordcount_sdg
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def deploy_wordcount(trace=True):
    runtime = Runtime(
        build_wordcount_sdg(window_size=10),
        RuntimeConfig(se_instances={"counts": 2}, trace=trace),
    )
    runtime.deploy()
    return runtime


class TestTracing:
    def test_tracing_off_by_default(self):
        runtime = Runtime(build_kv_sdg())
        runtime.deploy()
        runtime.inject("serve", ("put", 1, 1))
        runtime.run_until_idle()
        assert runtime.tracer is None
        for node in runtime.nodes.values():
            for instance in node.te_instances.values():
                assert all(e.trace_id is None
                           for b in instance.output_buffers.values()
                           for e in b)

    def test_one_trace_per_injection(self):
        runtime = deploy_wordcount()
        for i in range(5):
            runtime.inject("split", (i, "a b"))
        runtime.run_until_idle()
        traces = runtime.tracer.traces()
        assert len(traces) == 5
        assert sorted(t.trace_id for t in traces) == [1, 2, 3, 4, 5]

    def test_trace_id_rides_dispatch_fanout(self):
        runtime = deploy_wordcount()
        runtime.inject("split", (0, "x y z"))
        runtime.run_until_idle()
        (trace,) = runtime.tracer.traces()
        # One split hop, then one count hop per emitted word.
        assert [h.te for h in trace.hops] == ["split"] + ["count"] * 3
        assert trace.replayed_hops == 0
        assert trace.latency >= len(trace.hops)

    def test_queue_wait_observed(self):
        runtime = deploy_wordcount()
        # Ten items are queued before the engine takes a single step,
        # so later items demonstrably wait in the inbox.
        for i in range(10):
            runtime.inject("split", (i, "w"))
        runtime.run_until_idle()
        traces = runtime.tracer.traces()
        first_hops = [t.hops[0] for t in traces]
        assert all(h.enqueue_step <= h.entry_step for h in first_hops)
        assert max(h.queue_wait for h in first_hops) > 0
        assert all(h.service_steps >= 1 for h in first_hops)

    def test_repartition_keeps_trace_ids(self):
        runtime = Runtime(
            build_kv_sdg(),
            RuntimeConfig(se_instances={"table": 2}, trace=True),
        )
        runtime.deploy()
        # Queue items, then repartition before any of them is served:
        # the drained envelopes are re-routed under the new epoch but
        # must keep their original trace ids (no fresh traces minted).
        for i in range(8):
            runtime.inject("serve", ("put", i, i))
        runtime.scale_up("serve")
        runtime.run_until_idle()
        traces = runtime.tracer.traces()
        assert len(traces) == 8
        assert all(len(t.hops) == 1 for t in traces)
        assert all(t.replayed_hops == 0 for t in traces)

    def test_summary_renders(self):
        runtime = deploy_wordcount()
        for i in range(4):
            runtime.inject("split", (i, "a b c"))
        runtime.run_until_idle()
        summary = runtime.tracer.summary(limit=2)
        assert "traces: 4" in summary
        assert "p50=" in summary and "queue wait" in summary
        assert "split/0" in summary


class TestBoundedReplayBooks:
    """Satellite: the served-set and enqueue map are FIFO-bounded, so
    long chaos soaks (many crash-replay cycles over the same items)
    keep tracer memory flat instead of growing with item count."""

    def test_served_limit_is_enforced(self):
        import pytest

        from repro.obs.trace import DEFAULT_SERVED_LIMIT, Tracer

        assert Tracer().served_limit == DEFAULT_SERVED_LIMIT
        with pytest.raises(ValueError, match="served_limit"):
            Tracer(served_limit=0)

    def test_books_stay_flat_across_replay_cycles(self):
        from repro.obs.trace import Tracer
        from repro.runtime.envelope import ChannelId, Envelope

        tracer = Tracer(served_limit=64)
        channel = ChannelId(edge_index=0, src_te="a", src_instance=0,
                            dst_te="b", dst_instance=0)
        # 10 "crash cycles", each serving 100 distinct items: without
        # the bound the served-set would hold 1000 keys.
        for cycle in range(10):
            for i in range(100):
                trace_id = tracer.new_trace(step=i)
                env = Envelope(channel=channel, ts=i, payload=i,
                               trace_id=trace_id)
                tracer.on_deliver(env, step=i)
                hop = tracer.begin_hop(env, "b", "b/0", step=i + 1)
                tracer.end_hop(hop, step=i + 2)
        assert len(tracer._served) <= 64
        assert len(tracer._enqueued) <= 64

    def test_eviction_only_forgets_oldest(self):
        from repro.obs.trace import Tracer
        from repro.runtime.envelope import ChannelId, Envelope

        tracer = Tracer(served_limit=8)

        def serve(ts):
            channel = ChannelId(edge_index=0, src_te="a",
                                src_instance=0, dst_te="b",
                                dst_instance=0)
            trace_id = tracer.new_trace(step=ts)
            env = Envelope(channel=channel, ts=ts, payload=ts,
                           trace_id=trace_id)
            return tracer.begin_hop(env, "b", "b/0", step=ts)

        first = serve(0)
        for ts in range(1, 9):  # push ts=0 out of the 8-slot book
            serve(ts)
        assert not first.replayed
        # A re-execution of a *recent* item is still caught...
        recent = tracer.begin_hop(
            Envelope(channel=ChannelId(edge_index=0, src_te="a",
                                       src_instance=0, dst_te="b",
                                       dst_instance=0),
                     ts=8, payload=8, trace_id=9), "b", "b/0", step=20)
        assert recent.replayed
        # ...while the evicted oldest item mis-reports as fresh (the
        # documented, safe direction of the trade-off).
        evicted = tracer.begin_hop(
            Envelope(channel=ChannelId(edge_index=0, src_te="a",
                                       src_instance=0, dst_te="b",
                                       dst_instance=0),
                     ts=0, payload=0, trace_id=1), "b", "b/0", step=21)
        assert not evicted.replayed

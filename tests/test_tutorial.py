"""The tutorial's HashtagStats program must work as documented."""

import pytest

from repro import (
    Partial,
    Partitioned,
    SDGProgram,
    collection,
    entry,
    global_,
)
from repro.core import AccessMode, Dispatch
from repro.state import KeyValueMap


class HashtagStats(SDGProgram):
    by_author = Partitioned(KeyValueMap, key="author")
    totals = Partial(KeyValueMap)

    @entry
    def mention(self, author, tag):
        counts = self.by_author.get(author) or {}
        counts[tag] = counts.get(tag, 0) + 1
        self.by_author.put(author, counts)
        self.totals.increment(tag)

    @entry
    def favourite(self, author):
        counts = self.by_author.get(author) or {}
        best = None
        for tag in counts:
            if best is None or counts[tag] > counts[best]:
                best = tag
        return (author, best)

    @entry
    def total_of(self, tag):
        partial_count = global_(self.totals).get(tag, 0)
        count = self.sum_up(collection(partial_count))
        return (tag, count)

    def sum_up(self, values):
        total = 0
        for value in values:
            total = total + value
        return total


STREAM = [
    ("ada", "#sdg"), ("ada", "#sdg"), ("ada", "#dataflow"),
    ("bob", "#sdg"), ("bob", "#state"), ("carol", "#state"),
    ("carol", "#state"), ("ada", "#sdg"),
]


class TestTutorialSequential:
    def test_sequential_walkthrough(self):
        local = HashtagStats()
        local.mention("ada", "#sdg")
        local.mention("ada", "#sdg")
        assert local.favourite("ada") == ("ada", "#sdg")
        assert local.total_of("#sdg") == ("#sdg", 2)


class TestTutorialTranslation:
    def test_mention_splits_into_two_tes(self):
        result = HashtagStats.translate()
        info = result.entry_info("mention")
        assert len(info.te_names) == 2
        tasks = result.sdg.tasks
        assert tasks[info.te_names[0]].state == "by_author"
        assert tasks[info.te_names[1]].state == "totals"
        assert tasks[info.te_names[1]].access is AccessMode.LOCAL

    def test_total_of_is_broadcast_merge(self):
        result = HashtagStats.translate()
        info = result.entry_info("total_of")
        # The entry TE itself carries the global access: injection
        # broadcasts to every replica, and the merge gathers.
        first = result.sdg.task(info.te_names[0])
        assert first.access is AccessMode.GLOBAL
        dispatches = [e.dispatch for e in result.sdg.dataflows
                      if e.src == info.te_names[0]]
        assert dispatches == [Dispatch.ALL_TO_ONE]
        assert result.sdg.task(info.te_names[1]).is_merge


class TestTutorialDistributed:
    @pytest.mark.parametrize("replicas", [1, 2])
    def test_distributed_matches_sequential(self, replicas):
        local = HashtagStats()
        app = HashtagStats.launch(by_author=4, totals=replicas)
        for author, tag in STREAM:
            local.mention(author, tag)
            app.mention(author, tag)
        app.run()
        for author in ("ada", "bob", "carol"):
            app.favourite(author)
        for tag in ("#sdg", "#state", "#dataflow"):
            app.total_of(tag)
        app.run()
        assert sorted(app.results("favourite")) == sorted(
            local.favourite(author)
            for author in ("ada", "bob", "carol")
        )
        assert sorted(app.results("total_of")) == sorted(
            local.total_of(tag)
            for tag in ("#sdg", "#state", "#dataflow")
        )

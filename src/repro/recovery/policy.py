"""Checkpoint cadence policy: full bases vs incremental deltas.

The paper's dirty-state mechanism (§5) makes the *capture* of a
checkpoint cheap; this policy makes its *persistence* cheap too, by
letting most cycles back up only the keys mutated since the previous
cycle (a :class:`~repro.state.base.DeltaChunk` chain) and re-anchoring
on a full base every ``full_every`` cycles to bound the chain length a
restore has to fold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RecoveryError


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to take a full base checkpoint vs an incremental delta.

    ``full_every`` is the base cadence, counted in completed
    checkpoint cycles per node:

    * ``1`` (default) — every checkpoint is a full base: the seed
      behaviour, zero restore-chain length, O(state) backup each cycle;
    * ``K > 1`` — a full base at cycles 0, K, 2K, ... and deltas in
      between: restores fold at most K-1 deltas;
    * ``0`` — one full base at cycle 0, deltas forever after: minimal
      backup traffic, unbounded chain length.

    A delta is only *attempted* when it is sound: the previous
    checkpoint must still be in the store with a contiguous version,
    the node's SE set and partitioning epochs must be unchanged, and
    every SE must journal its mutations
    (:attr:`~repro.state.base.StateElement.delta_capable`); otherwise
    the manager silently re-anchors with a full base.
    """

    full_every: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.full_every, int) \
                or isinstance(self.full_every, bool) or self.full_every < 0:
            raise RecoveryError(
                f"full_every must be an int >= 0, got {self.full_every!r}"
            )

    @property
    def is_incremental(self) -> bool:
        """Whether this policy ever emits delta checkpoints."""
        return self.full_every != 1

    def wants_full(self, cycle: int) -> bool:
        """Whether checkpoint cycle ``cycle`` (0-based) should be full."""
        if cycle == 0 or self.full_every == 1:
            return True
        if self.full_every == 0:
            return False
        return cycle % self.full_every == 0

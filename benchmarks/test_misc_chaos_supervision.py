"""Misc — chaos supervision: detection latency and recovery timeline.

Runs the §6.1 KV workload under a seeded fault storm with the full
detect-and-repair loop installed (failure detector + recovery
supervisor, scheduled asynchronous checkpoints) and reports, per
failure, how many logical steps the detector needed to notice it and
how the supervisor resolved it. The run must converge to the
sequential oracle — self-healing must not cost correctness.
"""

from conftest import print_figure

from repro.apps import KeyValueStore
from repro.chaos import FaultInjector, KillNode, random_plan
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
    RecoverySupervisor,
)
from repro.runtime import FailureDetector
from repro.workloads import KVWorkload

SEED = 5
HEARTBEAT_TIMEOUT = 25
CHECK_EVERY = 5


def run_supervised_storm():
    app = KeyValueStore.launch(table=2)
    store = BackupStore(m_targets=3)
    manager = CheckpointManager(app.runtime, store, trim_input_log=False)
    scheduler = CheckpointScheduler(manager, every_items=40,
                                    complete_after_steps=5).install()
    recovery = RecoveryManager(app.runtime, store)
    detector = FailureDetector(app.runtime,
                               heartbeat_timeout=HEARTBEAT_TIMEOUT,
                               check_every=CHECK_EVERY).install()
    supervisor = RecoverySupervisor(detector, recovery, n_new=2,
                                    backoff_steps=10).install()
    put_te = app.translation.entry_info("put").entry_te
    plan = random_plan(SEED, horizon=700, se="table", entry_te=put_te,
                       n_kills=3, n_crashes=1, n_duplicates=2,
                       n_scale_ups=1, min_gap=80)
    injector = FaultInjector(app.runtime, plan, store=store).install()

    oracle = KeyValueStore()
    ops = list(KVWorkload(n_keys=120, read_fraction=0.0,
                          seed=SEED).ops(4000))
    applied = 0
    while True:
        for op in ops[applied:applied + 25]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        applied += 25
        if applied >= 1400 and injector.done and supervisor.settled \
                and not detector.unreported_dead_nodes():
            break
        assert applied < len(ops), "storm failed to settle"
    scheduler.flush()
    app.run()
    return app, oracle, injector, supervisor


def test_misc_chaos_supervision(benchmark):
    app, oracle, injector, supervisor = benchmark(run_supervised_storm)

    kill_steps = {}
    for record in injector.fired():
        if isinstance(record.fault, KillNode):
            node_id = int(record.detail.rsplit(" ", 1)[1])
            kill_steps[node_id] = record.step

    rows = []
    kill_latencies = []
    for detection, outcome in supervisor.cycles():
        fault_step = kill_steps.get(detection.node_id)
        if fault_step is not None:
            latency = detection.step - fault_step
            kill_latencies.append(latency)
        else:
            latency = 0  # crashes are reported in the faulting step
        rows.append((
            detection.node_id,
            detection.detail,
            fault_step if fault_step is not None else "-",
            detection.step,
            latency,
            outcome.kind,
            outcome.detail,
            outcome.step - detection.step,
        ))
    print_figure(
        "Supervised chaos: per-failure detection and recovery "
        "(logical steps)",
        ["node", "failure", "fault@", "detected@", "detect lat.",
         "outcome", "strategy", "recovery dur."],
        rows,
    )

    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    assert merged == dict(oracle.table.items())

    # One complete cycle per failure, every one repaired.
    assert len(rows) >= 4  # 3 kills + 1 crash
    assert all(row[5] == "recovered" for row in rows)
    # Silent kills are noticed within one heartbeat window plus one
    # check interval; crashes are reported immediately.
    assert len(kill_latencies) == 3
    assert all(
        latency <= HEARTBEAT_TIMEOUT + CHECK_EVERY
        for latency in kill_latencies
    )

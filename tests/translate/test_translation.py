"""End-to-end translator tests: structure and semantics (Fig. 3)."""

import pytest

from repro import (
    Partial,
    Partitioned,
    SDGProgram,
    TranslationError,
    collection,
    entry,
    global_,
)
from repro.apps import CollaborativeFiltering, KeyValueStore
from repro.core import AccessMode, Dispatch, StateKind, allocate
from repro.state import KeyValueMap


class TestCFStructure:
    """The translated CF program must match Fig. 1's SDG."""

    @pytest.fixture(scope="class")
    def result(self):
        return CollaborativeFiltering.translate()

    def test_five_task_elements(self, result):
        assert len(result.sdg.tasks) == 5

    def test_two_state_elements(self, result):
        states = result.sdg.states
        assert states["user_item"].kind is StateKind.PARTITIONED
        assert states["user_item"].partition_by == "user"
        assert states["co_occ"].kind is StateKind.PARTIAL

    def test_add_rating_splits_into_two_tes(self, result):
        info = result.entry_info("add_rating")
        assert len(info.te_names) == 2
        tasks = result.sdg.tasks
        assert tasks[info.te_names[0]].state == "user_item"
        assert tasks[info.te_names[0]].access is AccessMode.PARTITIONED
        assert tasks[info.te_names[1]].state == "co_occ"
        assert tasks[info.te_names[1]].access is AccessMode.LOCAL

    def test_get_rec_splits_into_three_tes(self, result):
        info = result.entry_info("get_rec")
        assert len(info.te_names) == 3
        tasks = result.sdg.tasks
        assert tasks[info.te_names[1]].access is AccessMode.GLOBAL
        assert tasks[info.te_names[2]].is_merge

    def test_dispatch_semantics(self, result):
        dispatches = {
            (e.src, e.dst): e.dispatch for e in result.sdg.dataflows
        }
        add = result.entry_info("add_rating").te_names
        rec = result.entry_info("get_rec").te_names
        assert dispatches[(add[0], add[1])] is Dispatch.ONE_TO_ANY
        assert dispatches[(rec[0], rec[1])] is Dispatch.ONE_TO_ALL
        assert dispatches[(rec[1], rec[2])] is Dispatch.ALL_TO_ONE

    def test_entry_tes_keyed_by_user(self, result):
        for method in ("add_rating", "get_rec"):
            te = result.sdg.task(result.entry_info(method).entry_te)
            assert te.is_entry
            assert te.entry_key_name == "user"

    def test_allocation_matches_paper_walkthrough(self, result):
        allocation = allocate(result.sdg)
        assert allocation.n_nodes == 3  # n1, n2, n3 in Fig. 1


class TestCFSemantics:
    RATINGS = [
        (0, 0, 5), (0, 1, 3), (1, 0, 4), (1, 2, 2), (2, 1, 1), (0, 2, 1),
        (3, 0, 2), (3, 1, 4),
    ]

    def sequential(self, user):
        program = CollaborativeFiltering()
        for rating in self.RATINGS:
            program.add_rating(*rating)
        return program.get_rec(user).to_list()

    @pytest.mark.parametrize("co_occ_instances", [1, 2, 4])
    @pytest.mark.parametrize("user", [0, 1, 3])
    def test_distributed_equals_sequential(self, co_occ_instances, user):
        app = CollaborativeFiltering.launch(user_item=2,
                                            co_occ=co_occ_instances)
        for rating in self.RATINGS:
            app.add_rating(*rating)
        app.run()
        app.get_rec(user)
        app.run()
        assert app.results("get_rec")[0].to_list() == self.sequential(user)

    def test_interleaved_reads_and_writes(self):
        app = CollaborativeFiltering.launch(co_occ=2)
        seq = CollaborativeFiltering()
        for i, rating in enumerate(self.RATINGS):
            app.add_rating(*rating)
            seq.add_rating(*rating)
            app.run()
        app.get_rec(0)
        app.run()
        assert app.results("get_rec")[0].to_list() == (
            seq.get_rec(0).to_list()
        )


class TestKVStoreTranslation:
    def test_each_entry_is_a_single_te(self):
        result = KeyValueStore.translate()
        assert len(result.sdg.tasks) == 4
        for info in result.entries.values():
            assert len(info.te_names) == 1
            te = result.sdg.task(info.entry_te)
            assert te.access is AccessMode.PARTITIONED
            assert te.entry_key_name == "key"

    def test_distributed_semantics(self):
        app = KeyValueStore.launch(table=4)
        for i in range(20):
            app.put(f"k{i}", i)
        app.bump("counter", 5)
        app.bump("counter", 7)
        app.remove("k0")
        app.run()
        app.get("k1")
        app.get("k0")
        app.get("counter")
        app.run()
        assert sorted(app.results("get")) == [
            ("counter", 12), ("k0", None), ("k1", 1),
        ]

    def test_sequential_semantics_identical(self):
        seq = KeyValueStore()
        seq.put("a", 1)
        seq.bump("c", 2)
        assert seq.get("a") == ("a", 1)
        assert seq.get("c") == ("c", 2)


class TestTranslationErrors:
    def test_no_state_fields_rejected(self):
        class NoState(SDGProgram):
            @entry
            def ping(self, x):
                return x

        with pytest.raises(TranslationError, match="no Partitioned"):
            NoState.translate()

    def test_no_entries_rejected(self):
        class NoEntry(SDGProgram):
            table = Partitioned(KeyValueMap, key="k")

            def helper(self, x):
                return x

        with pytest.raises(TranslationError, match="@entry"):
            NoEntry.translate()

    def test_multi_se_statement_rejected(self):
        class TwoFields(SDGProgram):
            a = Partitioned(KeyValueMap, key="k")
            b = Partitioned(KeyValueMap, key="k")

            @entry
            def bad(self, k):
                self.a.put(k, self.b.get(k))

        with pytest.raises(TranslationError, match="multiple state"):
            TwoFields.translate()

    def test_early_return_rejected(self):
        class EarlyReturn(SDGProgram):
            a = Partitioned(KeyValueMap, key="k")
            b = Partial(KeyValueMap)

            @entry
            def bad(self, k):
                if self.a.get(k) is None:
                    return None
                self.b.put(k, 1)

        with pytest.raises(TranslationError, match="final task element"):
            EarlyReturn.translate()

    def test_merge_without_global_rejected(self):
        class BadMerge(SDGProgram):
            a = Partial(KeyValueMap)

            @entry
            def bad(self, k):
                v = self.a.get(k)
                out = self.combine(collection(v))
                return out

            def combine(self, vs):
                return vs

        with pytest.raises(TranslationError, match="global_"):
            BadMerge.translate()

    def test_helper_accessing_state_rejected(self):
        class StatefulHelper(SDGProgram):
            a = Partial(KeyValueMap)

            @entry
            def op(self, k):
                v = self.sneaky(k)
                return v

            def sneaky(self, k):
                return self.a.get(k)

        with pytest.raises(TranslationError, match="at most one state"):
            StatefulHelper.translate()

    def test_partition_key_must_reach_the_te(self):
        class LostKey(SDGProgram):
            a = Partial(KeyValueMap)
            b = Partitioned(KeyValueMap, key="key")

            @entry
            def bad(self, key):
                v = self.a.get(key)
                # 'key' is dead here, so the keyed dispatch into the
                # partitioned access below cannot be derived.
                self.b.put(v, v)

        with pytest.raises(TranslationError, match="key"):
            LostKey.translate()

    def test_state_field_reassignment_rejected(self):
        class Reassign(SDGProgram):
            a = Partial(KeyValueMap)

            @entry
            def op(self, k):
                self.a.put(k, 1)

        program = Reassign()
        with pytest.raises(TranslationError, match="reassigned"):
            program.a = KeyValueMap()


class TestHelperMethods:
    def test_helpers_compose(self):
        class WithHelpers(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put_twice(self, key, value):
                doubled = self.double(value)
                self.table.put(key, doubled)

            @entry
            def get(self, key):
                return self.table.get(key)

            def double(self, v):
                return self.scale(v, 2)

            def scale(self, v, factor):
                return v * factor

        app = WithHelpers.launch(table=2)
        app.put_twice("x", 21)
        app.run()
        app.get("x")
        app.run()
        assert app.results("get") == [42]

    def test_stateless_prefix_joins_first_te(self):
        class Normalise(SDGProgram):
            table = Partitioned(KeyValueMap, key="key")

            @entry
            def put(self, key, value):
                key = str(key).lower()
                value = value * 10
                self.table.put(key, value)

            @entry
            def get(self, key):
                return self.table.get(key)

        result = Normalise.translate()
        assert len(result.entry_info("put").te_names) == 1
        app = Normalise.launch()
        app.put("KEY", 4)
        app.run()
        app.get("key")
        app.run()
        assert app.results("get") == [40]

"""Overhead guard and breakdown report for the wall-clock profiler.

Two enforced properties, mirroring ``test_obs_overhead.py``:

* **Profiling off is free.** A runtime with the profiler *and* flight
  recorder disabled (the default) must process items within 3% of the
  :data:`~repro.obs.NULL_REGISTRY` baseline — i.e. the new hooks add
  nothing beyond the already-enforced metrics bar. Off-path cost is a
  single ``is None`` check per item in ``step`` and ``_dispatch``.
* **Profiling on accounts the run.** With ``profile=True`` every item
  lands in the ``process`` and ``dispatch`` phases, and on the
  multiprocess substrate the worker shards merge with the
  coordinator's wire phases.

The second half profiles the multiprocess substrate at 1/2/4 workers
and writes ``BENCH_obs_profile.json`` — the per-phase wall-clock
breakdown the paper's operational story reads (where the time goes as
the fleet widens: task code shrinks per worker, serialize/wire_wait
move to the coordinator).
"""

import json
import os
import time

from repro.obs import NULL_REGISTRY, PHASES
from repro.runtime import Runtime, RuntimeConfig
from repro.testing import build_kv_sdg

_ITEMS = 2_000
_TRIALS = 5
_ATTEMPTS = 3
_MAX_RATIO = 1.03

#: Items per fleet width in the breakdown report.
_REPORT_ITEMS = 1_500
_REPORT_PATH = os.path.join(os.path.dirname(__file__),
                            "BENCH_obs_profile.json")


def _deploy(metrics=None, profile=False, substrate="inprocess",
            workers=None):
    config = RuntimeConfig(se_instances={"table": 2}, profile=profile,
                           substrate=substrate, workers=workers)
    if metrics is not None:
        config.metrics = metrics
    return Runtime(build_kv_sdg(), config).deploy()


def _run_batch(runtime, start, items=_ITEMS):
    for i in range(start, start + items):
        runtime.inject("serve", ("put", i % 64, i))
    runtime.run_until_idle()


def _time_batch(runtime, start):
    t0 = time.perf_counter()
    _run_batch(runtime, start)
    return time.perf_counter() - t0


def test_profile_off_overhead_under_3_percent():
    for attempt in range(1, _ATTEMPTS + 1):
        baseline = _deploy(metrics=NULL_REGISTRY)
        candidate = _deploy()  # default registry, profile+flight off
        assert candidate.profiler is None
        assert candidate.flight is None
        _run_batch(baseline, 0)
        _run_batch(candidate, 0)
        best_base = min(
            _time_batch(baseline, (1 + t) * _ITEMS)
            for t in range(_TRIALS)
        )
        best_cand = min(
            _time_batch(candidate, (1 + t) * _ITEMS)
            for t in range(_TRIALS)
        )
        ratio = best_cand / best_base
        print(f"\nprofile-off overhead attempt {attempt}: baseline "
              f"{best_base * 1e3:.2f}ms candidate "
              f"{best_cand * 1e3:.2f}ms ratio {ratio:.4f}")
        if ratio < _MAX_RATIO:
            break
    assert ratio < _MAX_RATIO, (
        f"profile-off runtime is {ratio:.4f}x the no-registry "
        f"baseline after {_ATTEMPTS} attempts (bound {_MAX_RATIO}x)"
    )


def test_profile_on_accounts_every_item():
    runtime = _deploy(profile=True)
    _run_batch(runtime, 0, items=300)
    profile = runtime.merged_profile()
    assert profile.count("process") == 300
    assert profile.count("dispatch") == 300
    # Dispatch nests inside the process span, so it can never exceed it.
    assert profile.seconds("dispatch") <= profile.seconds("process")


def test_breakdown_report_across_fleet_widths():
    """Profile 1/2/4-worker fleets and write BENCH_obs_profile.json."""
    report = {
        "items": _REPORT_ITEMS,
        "phases": list(PHASES),
        "runs": [],
    }
    for workers in (1, 2, 4):
        runtime = _deploy(profile=True, substrate="multiprocess",
                          workers=workers)
        try:
            t0 = time.perf_counter()
            _run_batch(runtime, 0, items=_REPORT_ITEMS)
            wall = time.perf_counter() - t0
            profile = runtime.merged_profile()
            breakdown = profile.breakdown()
            # Every item was served exactly once, fleet-wide.
            assert breakdown["process"]["count"] == _REPORT_ITEMS
            assert breakdown["dispatch"]["count"] == _REPORT_ITEMS
            # The coordinator contributed its wire phases.
            assert breakdown["serialize"]["count"] > 0
            report["runs"].append({
                "substrate": "multiprocess",
                "workers": workers,
                "wall_seconds": wall,
                "throughput_items_per_s": _REPORT_ITEMS / wall,
                "breakdown": breakdown,
            })
            print(f"\nworkers={workers} wall={wall:.3f}s")
            print(profile.render())
        finally:
            runtime.close()
    with open(_REPORT_PATH, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {_REPORT_PATH}")

"""Shared test fixtures — re-exported from the public testing module.

The reference graphs live in :mod:`repro.testing` so downstream users
can exercise their own deployments against them; the test suite imports
them through this shim.
"""

from repro.testing import (  # noqa: F401
    build_cf_sdg,
    build_iterative_sdg,
    build_kv_sdg,
    noop,
    reference_cf,
)

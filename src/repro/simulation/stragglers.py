"""Reactive straggler-mitigation timeline (Fig. 10).

Models the §3.3 mechanism on the CF read path: partial SE instances
serve *sticky* shares of the work (replicated state cannot be handed to
an empty newcomer), so

* a normal scale-up splits the share of the largest healthy group —
  it helps only if a healthy group was the bottleneck;
* when an addition yields no improvement, the controller concludes a
  straggler limits throughput and instead *relieves* it: a helper
  instance splits the straggler's share.

System throughput is governed by the most-overloaded group
(``min_i capacity_i / share_i``, capped by demand): the backpressure of
a pipelined SDG propagates the slowest group's rate upstream. With the
default calibration the timeline reproduces the paper's walkthrough:
3.6 k req/s → 6.2 k at t=10 s (new instance, slow machine) → flat at
t=30 s (addition without relief) → ~11 k at t=50 s (straggler relieved).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass
class _Group:
    """One work share and the node capacities serving it."""

    share: float
    capacities: list[float]
    is_straggler_group: bool = False

    @property
    def capacity(self) -> float:
        return sum(self.capacities)

    def rate(self) -> float:
        return self.capacity / self.share if self.share > 0 else float("inf")


@dataclass(frozen=True)
class StragglerScenario:
    """Inputs of the Fig. 10 timeline."""

    demand: float = 11_000.0
    #: Node capacities in allocation order; index 1 is the paper's
    #: "less powerful machine" (2.4 GHz / 4 GB).
    node_pool: tuple[float, ...] = (3_600.0, 3_100.0, 3_600.0, 3_600.0)
    straggler_indices: tuple[int, ...] = (1,)
    duration_s: int = 60
    check_interval_s: int = 10
    #: Intervals the controller waits after an action before judging it
    #: (new instances need their input queues to fill and drain).
    settle_intervals: int = 1
    #: Improvement below this fraction marks an addition as ineffective.
    improvement_threshold: float = 0.05


@dataclass
class TimelinePoint:
    t: int
    throughput: float
    n_nodes: int
    event: str | None = None


def simulate_stragglers(
    scenario: StragglerScenario = StragglerScenario(),
) -> list[TimelinePoint]:
    """Run the reactive controller; one timeline point per second."""
    if scenario.duration_s <= 0:
        raise SimulationError("duration must be positive")
    pool = list(scenario.node_pool)
    if not pool:
        raise SimulationError("node pool is empty")

    groups: list[_Group] = [_Group(share=1.0, capacities=[pool[0]])]
    used = 1
    throughput_before_last_add: float | None = None
    last_action_t = 0

    def system_throughput() -> float:
        return min(
            scenario.demand, min(group.rate() for group in groups)
        )

    timeline: list[TimelinePoint] = []
    for t in range(scenario.duration_s):
        event = None
        settle = (scenario.settle_intervals + 1) * scenario.check_interval_s
        if (
            t > 0
            and t % scenario.check_interval_s == 0
            and (last_action_t == 0 or t - last_action_t >= settle)
            and used < len(pool)
            and system_throughput() < scenario.demand * 0.99
        ):
            current = system_throughput()
            ineffective = (
                throughput_before_last_add is not None
                and current
                <= throughput_before_last_add
                * (1 + scenario.improvement_threshold)
            )
            new_capacity = pool[used]
            is_straggler = used in scenario.straggler_indices
            if ineffective:
                # Relieve: the helper splits the straggler group's share.
                target = min(groups, key=_Group.rate)
                half = target.share / 2
                target.share = half
                groups.append(_Group(share=half,
                                     capacities=[new_capacity]))
                event = f"relieve straggler (+node {used})"
            else:
                # Normal scale-up: split the largest *healthy* share —
                # replicated state pins the straggler's share to it.
                healthy = [g for g in groups if not g.is_straggler_group]
                target = max(healthy or groups, key=lambda g: g.share)
                half = target.share / 2
                target.share = half
                groups.append(_Group(
                    share=half, capacities=[new_capacity],
                    is_straggler_group=is_straggler,
                ))
                event = f"add instance (+node {used})"
            used += 1
            throughput_before_last_add = current
            last_action_t = t
        timeline.append(TimelinePoint(
            t=t, throughput=system_throughput(), n_nodes=used,
            event=event,
        ))
    return timeline

"""Matrix state elements.

``Matrix`` is the indexed *sparse* matrix the paper names for large,
sparsely-populated state such as the CF user-item and co-occurrence
matrices; ``DenseMatrix`` is its dense counterpart for small, fully
populated state such as regression weights.

Both support partitioning by row or by column (§3.2). To obtain a unique
partitioning, TEs must not access one partitioned matrix with conflicting
strategies — that invariant is enforced by SDG validation, which reads
the ``partition_axis`` recorded here.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import StateError
from repro.state.backend import DenseGridBackend, SparseMatrixBackend
from repro.state.base import StateElement
from repro.state.dirty import TOMBSTONE
from repro.state.vector import Vector

_AXES = ("row", "col")


class Matrix(StateElement):
    """A sparse 2-D matrix SE keyed by ``(row, col)`` integer pairs.

    Unwritten cells read as 0.0. Physical storage is a
    :class:`~repro.state.backend.SparseMatrixBackend`, whose per-row
    column index keeps :meth:`get_row` proportional to the row's
    population rather than the matrix size.
    """

    BYTES_PER_ENTRY = 24

    def __init__(self, partition_axis: str = "row") -> None:
        if partition_axis not in _AXES:
            raise StateError(
                f"partition_axis must be one of {_AXES}, got {partition_axis!r}"
            )
        self.partition_axis = partition_axis
        super().__init__()

    def _make_backend(self) -> SparseMatrixBackend:
        return SparseMatrixBackend()

    def spawn_empty(self) -> "Matrix":
        return Matrix(partition_axis=self.partition_axis)

    def partition_key(self, key: Hashable) -> Hashable:
        row, col = key  # type: ignore[misc]
        return row if self.partition_axis == "row" else col

    # -- domain API ----------------------------------------------------

    def get_element(self, row: int, col: int) -> float:
        """Return the cell value (0.0 when never written)."""
        return self._get((row, col), 0.0)

    def set_element(self, row: int, col: int, value: float) -> None:
        """Write one cell — the fine-grained update the paper motivates."""
        self._set((row, col), value)

    def add_element(self, row: int, col: int, delta: float) -> float:
        """Increment one cell; returns the new value."""
        value = self.get_element(row, col) + delta
        self.set_element(row, col, value)
        return value

    def _logical_row_cols(self, row: int) -> set[int]:
        backend: SparseMatrixBackend = self._backend  # type: ignore
        cols = backend.row_cols(row)
        if self._dirty is not None:
            for key, value in self._dirty.items():
                r, c = key  # type: ignore[misc]
                if r == row:
                    if value is TOMBSTONE:
                        cols.discard(c)
                    else:
                        cols.add(c)
        return cols

    def get_row(self, row: int) -> Vector:
        """Return row ``row`` as a :class:`Vector` (a copy, not a view)."""
        vector = Vector()
        for col in self._logical_row_cols(row):
            vector.set(col, self._get((row, col), 0.0))
        return vector

    def set_row(self, row: int, vector: Vector) -> None:
        """Replace row ``row`` with the non-zero entries of ``vector``."""
        for col in self._logical_row_cols(row):
            self._delete((row, col))
        for col, value in enumerate(vector.to_list()):
            if value:
                self._set((row, col), value)

    def multiply(self, vector: Vector) -> Vector:
        """Matrix-vector product: ``result[r] = sum_c M[r, c] * v[c]``.

        This is the operation ``@Global coOcc.multiply(userRow)`` from
        Alg. 1 line 16; applied to a partial instance it yields a partial
        result to be merged across instances.
        """
        values = vector.to_list()
        result = Vector()
        for (row, col), cell in self._iter_items():
            if col < len(values) and values[col]:
                result.add(row, cell * values[col])
        return result

    def to_rows(self) -> list[list[float]]:
        """Materialise the matrix as a ragged list of row lists.

        Row ``r`` is ``get_row(r).to_list()`` — its length is its own
        highest populated column + 1, so sparse tails are not padded.
        """
        return [self.get_row(r).to_list() for r in range(self.num_rows())]

    def num_rows(self) -> int:
        """1 + the highest populated row index (0 when empty)."""
        rows = [key[0] for key, _ in self._iter_items()]
        return max(rows) + 1 if rows else 0

    def num_cols(self) -> int:
        """1 + the highest populated column index (0 when empty)."""
        cols = [key[1] for key, _ in self._iter_items()]
        return max(cols) + 1 if cols else 0

    def nnz(self) -> int:
        """Number of explicitly stored (non-zero) cells."""
        return self.entry_count()

    def __repr__(self) -> str:
        return (
            f"Matrix(nnz={len(self._backend)}, axis={self.partition_axis!r},"
            f" dirty={self.dirty_size})"
        )


class DenseMatrix(StateElement):
    """A dense, fixed-shape 2-D matrix SE.

    Suited to small fully-populated state (e.g. model weights); every
    cell within the declared shape is stored explicitly, in a
    :class:`~repro.state.backend.DenseGridBackend`.
    """

    BYTES_PER_ENTRY = 8

    def __init__(self, n_rows: int, n_cols: int,
                 partition_axis: str = "row") -> None:
        if n_rows < 0 or n_cols < 0:
            raise StateError("matrix dimensions must be non-negative")
        if partition_axis not in _AXES:
            raise StateError(
                f"partition_axis must be one of {_AXES}, got {partition_axis!r}"
            )
        self.partition_axis = partition_axis
        self.n_rows = n_rows
        self.n_cols = n_cols
        super().__init__()

    def _make_backend(self) -> DenseGridBackend:
        return DenseGridBackend(self.n_rows, self.n_cols)

    def spawn_empty(self) -> "DenseMatrix":
        return DenseMatrix(self.n_rows, self.n_cols,
                           partition_axis=self.partition_axis)

    def partition_key(self, key: Hashable) -> Hashable:
        row, col = key  # type: ignore[misc]
        return row if self.partition_axis == "row" else col

    def chunk_meta(self) -> dict[str, Any]:
        return {"n_rows": self.n_rows, "n_cols": self.n_cols}

    # -- domain API ----------------------------------------------------

    def get_element(self, row: int, col: int) -> float:
        return self._get((row, col))

    def set_element(self, row: int, col: int, value: float) -> None:
        self._set((row, col), value)

    def add_element(self, row: int, col: int, delta: float) -> float:
        value = self.get_element(row, col) + delta
        self.set_element(row, col, value)
        return value

    def get_row(self, row: int) -> Vector:
        return Vector(values=[self.get_element(row, c)
                              for c in range(self.n_cols)])

    def to_rows(self) -> list[list[float]]:
        """Materialise as a dense list of row lists (shape-complete)."""
        return [self.get_row(row).to_list()
                for row in range(self.n_rows)]

    def multiply(self, vector: Vector) -> Vector:
        values = vector.to_list()
        result = Vector(size=self.n_rows)
        for row in range(self.n_rows):
            total = 0.0
            for col in range(min(self.n_cols, len(values))):
                if values[col]:
                    total += self.get_element(row, col) * values[col]
            result.set(row, total)
        return result

    def __repr__(self) -> str:
        return f"DenseMatrix({self.n_rows}x{self.n_cols})"

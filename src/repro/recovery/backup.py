"""Checkpoint backup stores.

A backup store models the "m nodes" of Fig. 4: checkpoint chunks are
distributed round-robin across backup targets so that no single disk or
NIC becomes a bottleneck during backup or restore. Two implementations
are provided — an in-memory store for tests and fast experiments, and a
disk-backed store that actually serialises chunks to files.

The store keeps, per runtime node, the current **base + delta chain**:
one full checkpoint plus the incremental checkpoints stacked on top of
it (ordered by version). Saving a new full checkpoint supersedes and
evicts the whole previous chain; saving a delta appends to the chain
and is refused (``RecoveryError``) unless its ``base_version`` matches
the chain head — a broken lineage must never be stored.

Backup integrity is first-class: at save time the store records, in each
checkpoint's metadata, the expected chunk count per SE instance and a
CRC-32 checksum per chunk. :meth:`BackupStore.chunks_for` verifies both
on the read path, so a lost chunk (e.g. a backup target offline) or a
corrupted chunk — base or delta — surfaces as a typed
:class:`~repro.errors.BackupIntegrityError` instead of a silently
truncated restore.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import zlib
from typing import TYPE_CHECKING

from repro.errors import BackupIntegrityError, RecoveryError
from repro.state.base import StateChunk

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.checkpoint import NodeCheckpoint


def chunk_checksum(chunk: StateChunk) -> int:
    """CRC-32 of the chunk's serialised form (what goes on the wire)."""
    return zlib.crc32(pickle.dumps(chunk))


def _atomic_pickle(path: str, payload: object) -> None:
    """Pickle ``payload`` to ``path`` without a torn-write window.

    The bytes land in a sibling temp file first, are fsynced, and only
    then renamed over the target. A crash at any point leaves either the
    previous file or the complete new one — never a short file that
    exists but fails its CRC check on restore.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class BackupStore:
    """In-memory chunked checkpoint storage across ``m`` backup targets.

    Per runtime node, the latest base + delta chain is retained; a new
    full checkpoint supersedes the previous chain, matching the paper's
    protocol where older checkpoints are discarded once superseded.
    """

    def __init__(self, m_targets: int = 2) -> None:
        if m_targets < 1:
            raise RecoveryError("backup store needs at least one target")
        self.m_targets = m_targets
        #: target index -> {(node_id, version, se_key, chunk_index): chunk}
        self._targets: list[dict] = [{} for _ in range(m_targets)]
        #: node_id -> {version: checkpoint metadata}
        self._meta: dict[int, dict[int, "NodeCheckpoint"]] = {}
        self._offline: set[int] = set()
        self._rr = 0

    # -- write path ------------------------------------------------------

    def save(self, checkpoint: "NodeCheckpoint") -> None:
        """Persist a node checkpoint, spreading chunks over targets (B3).

        A full checkpoint evicts the node's previous chain; a delta
        appends to it, and is refused when its ``base_version`` does not
        match the current chain head. Records the expected chunk count
        and a CRC-32 checksum per chunk into the checkpoint metadata so
        the read path can verify completeness and integrity.
        """
        online = [i for i in range(self.m_targets)
                  if i not in self._offline]
        if not online:
            raise RecoveryError(
                "cannot save checkpoint: every backup target is offline"
            )
        node_id = checkpoint.node_id
        kind = getattr(checkpoint, "kind", "full")
        if kind == "full":
            self._evict(node_id)
        else:
            head = self.latest(node_id)
            if head is None or head.version != checkpoint.base_version:
                head_version = None if head is None else head.version
                raise RecoveryError(
                    f"delta checkpoint v{checkpoint.version} of node "
                    f"{node_id} declares base v{checkpoint.base_version} "
                    f"but the stored chain head is "
                    f"{head_version!r}; refusing to store a broken "
                    f"lineage"
                )
        checkpoint.chunk_counts = {
            se_key: len(chunks)
            for se_key, chunks in checkpoint.se_chunks.items()
        }
        checkpoint.chunk_checksums = {
            (se_key, chunk.index): chunk_checksum(chunk)
            for se_key, chunks in checkpoint.se_chunks.items()
            for chunk in chunks
        }
        for se_key, chunks in checkpoint.se_chunks.items():
            for chunk in chunks:
                target = self._targets[online[self._rr % len(online)]]
                self._rr += 1
                target[
                    (node_id, checkpoint.version, se_key, chunk.index)
                ] = chunk
        self._meta.setdefault(node_id, {})[checkpoint.version] = checkpoint

    def _evict(self, node_id: int) -> None:
        for target in self._targets:
            stale = [k for k in target if k[0] == node_id]
            for key in stale:
                del target[key]
        self._meta.pop(node_id, None)

    def prune(self, node_versions: dict[int, int]) -> list[tuple[int, int]]:
        """Drop checkpoints not covered by a committed watermark.

        ``node_versions`` maps node id -> highest committed checkpoint
        version; any stored version above that mark — and every version
        of a node absent from the map — is removed. Durable runs use
        this on resume to discard checkpoints taken during a crashed,
        uncommitted epoch, so the surviving chains match exactly what
        the run manifest fenced. Returns the removed ``(node_id,
        version)`` pairs, ordered.
        """
        removed: list[tuple[int, int]] = []
        for node_id in list(self._meta):
            limit = node_versions.get(node_id)
            for version in sorted(self._meta[node_id]):
                if limit is None or version > limit:
                    removed.append((node_id, version))
                    del self._meta[node_id][version]
            if not self._meta[node_id]:
                del self._meta[node_id]
        doomed = set(removed)
        for target in self._targets:
            for key in [k for k in target if (k[0], k[1]) in doomed]:
                del target[key]
        return removed

    # -- availability ----------------------------------------------------

    def set_target_offline(self, target: int, offline: bool = True) -> None:
        """Mark one backup target (un)reachable.

        Chunks on an offline target are invisible to the read path — the
        completeness check then reports them as missing — and the write
        path spreads new chunks over the remaining targets only.
        """
        if not 0 <= target < self.m_targets:
            raise RecoveryError(
                f"no backup target {target}; store has {self.m_targets}"
            )
        if offline:
            self._offline.add(target)
        else:
            self._offline.discard(target)

    def offline_targets(self) -> list[int]:
        return sorted(self._offline)

    def _chunk_candidates(self, node_id: int | None,
                          kind: str | None) -> list[tuple[tuple, int]]:
        """Stored chunk keys matching the chaos filters, sorted."""
        return sorted(
            (key, i)
            for i, target in enumerate(self._targets)
            for key in target
            if (node_id is None or key[0] == node_id)
            and (kind is None or self._kind_of(key[0], key[1]) == kind)
        )

    def _kind_of(self, node_id: int, version: int) -> str:
        meta = self._meta.get(node_id, {}).get(version)
        return getattr(meta, "kind", "full") if meta is not None else "full"

    def corrupt_chunk(self, node_id: int | None = None,
                      kind: str | None = None) -> tuple | None:
        """Tamper with one stored chunk, leaving its checksum stale.

        Chaos/testing hook: deterministically picks the first stored
        chunk (optionally restricted to ``node_id`` and/or checkpoint
        ``kind`` — ``"full"`` or ``"delta"``), replaces its payload with
        a perturbed copy and returns the storage key — or ``None`` if
        nothing matched. The recorded checksum is *not* updated, so the
        read path detects the corruption.
        """
        candidates = self._chunk_candidates(node_id, kind)
        if not candidates:
            return None
        key, target_index = candidates[0]
        chunk = self._targets[target_index][key]
        self._targets[target_index][key] = self._tampered(chunk)
        return key

    def drop_chunk(self, node_id: int | None = None,
                   kind: str | None = None) -> tuple | None:
        """Erase one stored chunk outright (a lost backup file).

        Chaos/testing hook, same selection rules as
        :meth:`corrupt_chunk`; the chunk-count check on the read path
        then reports the gap as a :class:`BackupIntegrityError`.
        """
        candidates = self._chunk_candidates(node_id, kind)
        if not candidates:
            return None
        key, target_index = candidates[0]
        del self._targets[target_index][key]
        return key

    @staticmethod
    def _tampered(chunk: StateChunk) -> StateChunk:
        if chunk.items:
            first_key, first_value = chunk.items[0]
            items = ((first_key, ("corrupted", first_value)),) + \
                chunk.items[1:]
        else:
            items = chunk.items
        meta = dict(chunk.meta)
        meta["__corrupted__"] = True
        # dataclasses.replace preserves the concrete chunk type, so a
        # tampered DeltaChunk keeps its lineage fields.
        return dataclasses.replace(chunk, items=items, meta=meta)

    # -- read path ---------------------------------------------------------

    def has_checkpoint(self, node_id: int) -> bool:
        return bool(self._meta.get(node_id))

    def latest(self, node_id: int) -> "NodeCheckpoint | None":
        """The chain head: the most recent checkpoint of ``node_id``."""
        versions = self._meta.get(node_id)
        if not versions:
            return None
        return versions[max(versions)]

    def base(self, node_id: int) -> "NodeCheckpoint | None":
        """The full base checkpoint anchoring ``node_id``'s chain."""
        versions = self._meta.get(node_id)
        if not versions:
            return None
        for version in sorted(versions):
            if getattr(versions[version], "kind", "full") == "full":
                return versions[version]
        return None

    def chain(self, node_id: int) -> "list[NodeCheckpoint]":
        """The stored base + delta chain, ordered by version."""
        versions = self._meta.get(node_id, {})
        return [versions[v] for v in sorted(versions)]

    def chunks_for(self, node_id: int, se_key: tuple[str, int],
                   verify: bool = True, version: int | None = None):
        """Stream all chunks of one SE instance, across online targets.

        ``version`` selects one checkpoint of the chain (default: the
        chain head). With ``verify`` (the default), the result is
        checked against the chunk counts and CRC-32 checksums recorded
        at save time; a gap or a mismatch raises
        :class:`BackupIntegrityError`. Checkpoints saved without
        recorded counts (hand-built fixtures) skip verification.
        """
        if version is None:
            head = self.latest(node_id)
            version = head.version if head is not None else None
        found = []
        for i, target in enumerate(self._targets):
            if i in self._offline:
                continue
            for (nid, ver, key, _index), chunk in target.items():
                if nid == node_id and key == se_key and (
                    version is None or ver == version
                ):
                    found.append(chunk)
        found.sort(key=lambda c: c.index)
        if not verify:
            return found
        meta = self._meta.get(node_id, {}).get(version) \
            if version is not None else None
        if meta is None:
            return found
        expected = getattr(meta, "chunk_counts", {}).get(se_key)
        if expected is None:
            return found
        indices = [c.index for c in found]
        if indices != list(range(expected)):
            missing = sorted(set(range(expected)) - set(indices))
            raise BackupIntegrityError(
                f"checkpoint v{version} of node {node_id}, SE {se_key}: "
                f"expected {expected} chunks but chunk(s) {missing} are "
                f"missing (backup target offline or data lost)"
            )
        checksums = getattr(meta, "chunk_checksums", {})
        for chunk in found:
            recorded = checksums.get((se_key, chunk.index))
            if recorded is not None and chunk_checksum(chunk) != recorded:
                raise BackupIntegrityError(
                    f"checkpoint v{version} of node {node_id}, SE "
                    f"{se_key}: chunk {chunk.index} failed its CRC-32 "
                    f"check (stored data corrupted)"
                )
        return found

    def target_loads(self) -> list[int]:
        """Number of chunks per backup target (balance diagnostics)."""
        return [len(t) for t in self._targets]

    def total_chunks(self) -> int:
        return sum(self.target_loads())


class DiskBackupStore(BackupStore):
    """A backup store that writes chunks to ``m`` directory targets.

    Each target directory models one backup node's disk; chunks are
    pickled to individual files, and restore reads them back. Metadata
    (the checkpoint skeleton with TE bookkeeping, chunk counts and
    checksums) is replicated to every target for availability.
    """

    def __init__(self, root: str, m_targets: int = 2) -> None:
        super().__init__(m_targets)
        self.root = root
        self._dirs = [os.path.join(root, f"backup{i}")
                      for i in range(m_targets)]
        for directory in self._dirs:
            os.makedirs(directory, exist_ok=True)

    @staticmethod
    def _chunk_filename(key: tuple) -> str:
        node_id, version, se_key, index = key
        return (
            f"node{node_id}_v{version}_{se_key[0]}_{se_key[1]}"
            f"_chunk{index}.pkl"
        )

    def save(self, checkpoint: "NodeCheckpoint") -> None:
        """Persist the node's current chain to disk, crash-consistently.

        Every file is written via :func:`_atomic_pickle` (temp file +
        ``os.replace``), and the new chain is written *before* stale
        files from a superseded chain are unlinked. A crash mid-save
        therefore leaves at worst both chains on disk — never a
        half-written chunk, and never a window where the old chain is
        gone but the new one is incomplete. Leftovers are swept by the
        next save or by :meth:`prune`.
        """
        super().save(checkpoint)
        node_id = checkpoint.node_id
        prefix = f"node{node_id}_"
        for i, target in enumerate(self._targets):
            if i in self._offline:
                continue
            directory = self._dirs[i]
            keep = set()
            for key, chunk in target.items():
                if key[0] != node_id:
                    continue
                name = self._chunk_filename(key)
                keep.add(name)
                _atomic_pickle(os.path.join(directory, name), chunk)
            for version, meta in self._meta.get(node_id, {}).items():
                name = f"node{node_id}_v{version}_meta.pkl"
                keep.add(name)
                _atomic_pickle(os.path.join(directory, name), meta)
            for name in os.listdir(directory):
                if name.startswith(prefix) and name not in keep:
                    os.unlink(os.path.join(directory, name))

    def corrupt_chunk(self, node_id: int | None = None,
                      kind: str | None = None) -> tuple | None:
        key = super().corrupt_chunk(node_id, kind)
        if key is None:
            return None
        filename = self._chunk_filename(key)
        for i, target in enumerate(self._targets):
            if key in target:
                _atomic_pickle(os.path.join(self._dirs[i], filename),
                               target[key])
        return key

    def drop_chunk(self, node_id: int | None = None,
                   kind: str | None = None) -> tuple | None:
        key = super().drop_chunk(node_id, kind)
        if key is None:
            return None
        filename = self._chunk_filename(key)
        for directory in self._dirs:
            path = os.path.join(directory, filename)
            if os.path.exists(path):
                os.unlink(path)
        return key

    def prune(self, node_versions: dict[int, int]) -> list[tuple[int, int]]:
        removed = super().prune(node_versions)
        for node_id, version in removed:
            prefix = f"node{node_id}_v{version}_"
            for directory in self._dirs:
                for name in os.listdir(directory):
                    if name.startswith(prefix):
                        os.unlink(os.path.join(directory, name))
        return removed

    def reload_from_disk(self) -> None:
        """Rebuild the in-memory index from the target directories.

        Used to recover checkpoints across process restarts, or to
        verify that the on-disk representation is complete. Files that
        no longer unpickle (flipped bytes, truncation) are skipped; the
        resulting gap is then caught by the chunk-count check on the
        read path rather than crashing the reload of every other node's
        checkpoints.
        """
        self._targets = [{} for _ in range(self.m_targets)]
        self._meta = {}
        for i, directory in enumerate(self._dirs):
            for name in sorted(os.listdir(directory)):
                if not name.endswith(".pkl"):
                    continue  # e.g. an orphaned .tmp from a crashed save
                path = os.path.join(directory, name)
                try:
                    with open(path, "rb") as fh:
                        payload = pickle.load(fh)
                except Exception:
                    continue  # unreadable file == lost chunk
                stem = name[:-len(".pkl")]
                node_part, version_part, rest = stem.split("_", 2)
                node_id = int(node_part[len("node"):])
                version = int(version_part[len("v"):])
                if rest == "meta":
                    self._meta.setdefault(node_id, {})[version] = payload
                else:
                    # se names may contain underscores; peel from the right.
                    se_name, se_index, chunk_part = rest.rsplit("_", 2)
                    index = int(chunk_part[len("chunk"):])
                    self._targets[i][
                        (node_id, version, (se_name, int(se_index)), index)
                    ] = payload

"""The multiprocess substrate: shared-nothing workers over OS pipes.

This is the second :class:`~repro.runtime.substrate.ExecutionSubstrate`
implementation: the deployed topology is partitioned across ``N``
forked worker processes, one per group of logical nodes
(:meth:`~repro.runtime.deployment.Topology.plan_workers`), each owning
its nodes' TE instances and — transitively — their StateElement
partitions. Workers never share memory: every cross-worker hand-off is
an :class:`~repro.runtime.envelope.Envelope` serialised through the
:mod:`repro.runtime.wire` codec, which is exactly the paper's
location-independence discipline (§4.1) made physical.

Process topology is a **star**: the coordinator (the process that
called ``deploy()``) holds two pipes per worker and relays every
cross-worker envelope. Workers are **forked**, not spawned: SDG task
functions are closures and generated code that pickle cannot ship, but
a forked child inherits the fully deployed runtime for free — only
envelopes and control messages ever cross the wire.

Deadlock freedom by construction:

* the coordinator never blocks on a write — outbound frames queue in
  per-worker byte queues and drain through a ``select`` loop that
  always also reads;
* a worker only blocks on its control pipe when it is locally idle
  *after* reporting so (``MSG_IDLE``).

Quiescence: each ``MSG_IDLE`` carries cumulative (consumed, emitted,
processed) counters. Pipes are FIFO, so every ``MSG_OUT`` a worker
emitted precedes the idle frame that counts it; the system is quiet
exactly when every worker has consumed everything the coordinator
sent, the coordinator has read everything every worker emitted, and
no outbound bytes are queued. ``run_until_idle`` then runs the barrier
sync (``MSG_SNAPSHOT``): workers ship SE elements, terminal results
and their metrics shard back, and the coordinator installs them — so
after the call, coordinator-side state inspection (fingerprints,
checkpoints, reports) is substrate-agnostic.

Observability rides the same pipes (no side channels):

* **live metrics** — idle reports piggyback the worker's cumulative
  registry snapshot, so :meth:`Runtime.merged_metrics` is fresh
  *between* barriers (drive the wire with :meth:`poll` /
  :meth:`Runtime.poll_telemetry` while a drain is in flight);
* **causal tracing** — workers record hops with their forked tracer
  and ship shards (``MSG_TRACE`` + the barrier reply) the coordinator
  merges into one fleet-wide causal view;
* **profiling** — each worker's wall-clock phase shard travels beside
  the metrics shard when ``RuntimeConfig(profile=True)``;
* **flight recorder** — a crashing worker ships its ring-buffer dump
  inside ``MSG_CRASH``, and the coordinator appends the rendered tail
  to the raised error.

Fleet restart (``RuntimeConfig(worker_restarts=N)``): a worker crash
normally aborts the run. With restarts budgeted, the coordinator
instead retires the dead fleet's barrier-fenced telemetry, tears every
worker down, re-forks a fresh fleet from its own (barrier-consistent)
state, and replays the input envelopes delivered since the last
barrier — deterministic tasks then reproduce exactly the lost work.
Metric shards fenced at the last barrier are retired so the merged
totals never double-count a crashed worker's replayed items; post-
barrier live shards are discarded (the replay re-counts that work
exactly once). Wall-clock profile shards of the dead fleet are
dropped, not retired — an accepted loss for a non-correctness signal.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import select
import time
import traceback
import weakref
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import RuntimeExecutionError
from repro.obs.events import KIND
from repro.obs.flight import render_dump
from repro.runtime.envelope import (
    INPUT_EDGE,
    WIRE_EDGE,
    ChannelId,
    Envelope,
)
from repro.runtime.substrate import InProcessSubstrate
from repro.runtime.wire import (
    MSG_CRASH,
    MSG_DELIVER,
    MSG_HELLO,
    MSG_IDLE,
    MSG_OUT,
    MSG_SHUTDOWN,
    MSG_SNAPSHOT,
    MSG_STATE,
    MSG_TRACE,
    FrameBuffer,
    encode_frame,
    write_bytes,
    write_frame,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deployment import WorkerPlacement
    from repro.runtime.engine import Runtime
    from repro.runtime.instances import TEInstance

#: Upper bound on consecutive local steps a worker takes without
#: touching its control pipe — the multiprocess analogue of the
#: in-process loop's default ``max_steps``, so a worker-local infinite
#: dataflow cycle dies loudly (MSG_CRASH) instead of spinning forever.
WORKER_DRAIN_LIMIT = 10_000_000

#: Read size for both sides of the pipe.
_READ_CHUNK = 1 << 16

#: Flight-recorder tail length appended to a fatal crash error.
_CRASH_TAIL = 20


class _WorkerFailure(Exception):
    """Internal control-flow: one worker died; the pump loop must stop
    touching its (now stale) descriptors before anyone decides whether
    the failure is fatal or absorbed by a fleet restart."""

    def __init__(self, link: "_Link", detail: str,
                 extra: dict | None = None) -> None:
        super().__init__(detail)
        self.link = link
        self.detail = detail
        self.extra = extra or {}


class _Link:
    """Coordinator-side view of one worker: process, pipes, counters."""

    __slots__ = (
        "worker_id", "process", "send_fd", "recv_fd", "buffer", "outbox",
        "sent", "consumed", "emitted", "received_out", "processed",
        "state_reply", "live_shard", "fenced_shard", "fenced_processed",
        "profile_shard",
    )

    def __init__(self, worker_id: int, process, send_fd: int,
                 recv_fd: int) -> None:
        self.worker_id = worker_id
        self.process = process
        self.send_fd = send_fd
        self.recv_fd = recv_fd
        self.buffer = FrameBuffer()
        #: Encoded frames waiting for pipe capacity (never block a write).
        self.outbox: deque = deque()
        #: Frames enqueued towards this worker (every kind).
        self.sent = 0
        #: Worker's cumulative consumed/emitted/processed, as of its
        #: latest MSG_IDLE / MSG_STATE report.
        self.consumed = 0
        self.emitted = 0
        self.processed = 0
        #: MSG_OUT frames read *from* this worker.
        self.received_out = 0
        self.state_reply: dict | None = None
        #: Freshest cumulative metrics snapshot (idle piggyback or
        #: barrier reply) — what ``merged_metrics()`` reads live.
        self.live_shard: dict | None = None
        #: Snapshot as of the last *barrier* — what survives into
        #: ``_retired_shards`` if this worker's fleet is restarted.
        self.fenced_shard: dict | None = None
        self.fenced_processed = 0
        #: Freshest wall-clock profile shard (``profile=True`` only).
        self.profile_shard: dict | None = None


def _release(links: list) -> None:
    """Tear a worker fleet down (finalizer-safe: no substrate ref)."""
    for link in links:
        try:
            os.set_blocking(link.send_fd, True)
            while link.outbox:
                chunk = link.outbox.popleft()
                while chunk:
                    chunk = chunk[os.write(link.send_fd, chunk):]
            write_frame(link.send_fd, (MSG_SHUTDOWN,))
        except OSError:
            pass
        try:
            os.close(link.send_fd)
        except OSError:
            pass
    for link in links:
        link.process.join(timeout=2.0)
        if link.process.is_alive():  # pragma: no cover - hung worker
            link.process.terminate()
            link.process.join(timeout=1.0)
        try:
            os.close(link.recv_fd)
        except OSError:
            pass


class MultiprocessSubstrate:
    """Shared-nothing worker processes behind the substrate protocol."""

    name = "multiprocess"
    #: Every cross-worker hand-off crosses the pickle wire, so the
    #: transport's defensive payload deepcopy is redundant. The same
    #: flag makes :meth:`Runtime.deploy` run the static SDG4xx
    #: substrate-safety gate (``RuntimeConfig.substrate_check``):
    #: programs that ship unpicklable payloads, leak process-dependent
    #: values onto edges, or mutate shared globals are refused (or
    #: warned about) *before* the fleet forks, with the offending call
    #: chain in the error.
    isolates_payloads = True

    def __init__(self, workers: int = 2, capacity: int | None = None,
                 restarts: int = 0) -> None:
        self.workers = int(workers)
        self.capacity = capacity
        #: Fleet-restart budget (``RuntimeConfig(worker_restarts=N)``):
        #: how many worker crashes are absorbed by re-forking before
        #: one propagates as an error.
        self.restarts = int(restarts)
        self.runtime: "Runtime | None" = None
        self.placement: "WorkerPlacement | None" = None
        self._links: list[_Link] = []
        self._routed = 0
        self._processed_base = 0
        self._finalizer = None
        self._restarts_left = self.restarts
        #: Barrier-fenced metric shards of fleets that were restarted.
        self._retired_shards: list[dict] = []
        self._retired_processed = 0
        #: Terminal results as of the barrier preceding the last
        #: restart (the re-forked fleet re-collects only newer work).
        self._retired_results: dict[str, list] = {}
        #: Input envelopes delivered since the last barrier — the
        #: replay source for a fleet restart. Only kept when restarts
        #: are budgeted.
        self._replay_log: list[Envelope] = []

    # ------------------------------------------------------------------
    # Deploy: fork the fleet
    # ------------------------------------------------------------------

    def bind(self, runtime: "Runtime") -> None:
        """Plan placement, open pipes, fork workers, say hello.

        Called at the *end* of ``deploy()`` so every forked child
        inherits the fully materialised topology — task closures and
        generated code never travel the wire.
        """
        self.runtime = runtime
        self.placement = runtime.topology.plan_workers(self.workers)
        # Coordinator and workers each mint request ids in a disjoint
        # residue class mod (workers + 1): two workers broadcasting
        # concurrently must never collide at a merge barrier.
        stride = self.workers + 1
        runtime.dispatcher._request_ids = itertools.count(stride, stride)
        self._bind_obs()
        self._fork_fleet()

    def _bind_obs(self) -> None:
        """Pre-bind the coordinator's wire metrics and profile phases."""
        m = self.runtime.metrics
        frames = m.counter(
            "wire_frames_total",
            "frames crossing the pipe star, by direction and role")
        nbytes = m.counter(
            "wire_bytes_total",
            "bytes crossing the pipe star, by direction and role")
        self._m_frames_send = frames.labels(direction="send",
                                            role="coordinator")
        self._m_frames_recv = frames.labels(direction="recv",
                                            role="coordinator")
        self._m_bytes_send = nbytes.labels(direction="send",
                                           role="coordinator")
        self._m_bytes_recv = nbytes.labels(direction="recv",
                                           role="coordinator")
        self._m_serialize = m.counter(
            "wire_serialize_seconds_total",
            "wall-clock seconds spent pickling outbound frames",
        ).labels(role="coordinator")
        outbox = m.gauge(
            "wire_outbox_depth",
            "frames queued towards each worker, awaiting pipe capacity")
        self._g_outbox = {
            wid: outbox.labels(worker=str(wid))
            for wid in range(self.workers)
        }
        profiler = getattr(self.runtime, "profiler", None)
        self._p_serialize = (profiler.phase("serialize")
                             if profiler is not None else None)
        self._p_wire_wait = (profiler.phase("wire_wait")
                             if profiler is not None else None)

    def _fork_fleet(self) -> None:
        """Fork one worker per placement group and open its pipes.

        Called at bind time and again on every fleet restart — the
        children always inherit the coordinator's *current* (barrier-
        consistent) state.
        """
        runtime = self.runtime
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise RuntimeExecutionError(
                "the multiprocess substrate requires the fork start "
                "method (POSIX); this platform does not support it"
            ) from exc
        pipes = []  # (c2w_read, c2w_write, w2c_read, w2c_write)
        for _ in range(self.workers):
            c2w_r, c2w_w = os.pipe()
            w2c_r, w2c_w = os.pipe()
            pipes.append((c2w_r, c2w_w, w2c_r, w2c_w))
        all_fds = [fd for quad in pipes for fd in quad]
        index_digest = runtime.dispatcher.export_index()
        for wid, (c2w_r, c2w_w, w2c_r, w2c_w) in enumerate(pipes):
            keep = {c2w_r, w2c_w}
            close_fds = [fd for fd in all_fds if fd not in keep]
            process = ctx.Process(
                target=_worker_main,
                args=(runtime, wid, self.placement, c2w_r, w2c_w,
                      close_fds),
                daemon=True,
                name=f"repro-worker-{wid}",
            )
            process.start()
            self._links.append(_Link(wid, process, c2w_w, w2c_r))
        for c2w_r, c2w_w, w2c_r, w2c_w in pipes:
            os.close(c2w_r)
            os.close(w2c_w)
            os.set_blocking(c2w_w, False)
            os.set_blocking(w2c_r, False)
        # Idempotent teardown: explicit close(), GC and interpreter
        # exit all funnel into one _release of this exact fleet.
        self._finalizer = weakref.finalize(self, _release, self._links)
        for link in self._links:
            self._send(link, (MSG_HELLO, link.worker_id, self.workers,
                              index_digest))

    # ------------------------------------------------------------------
    # Substrate protocol
    # ------------------------------------------------------------------

    def deliver(self, envelope: "Envelope") -> bool:
        """Route one envelope to the worker owning its destination."""
        owner = self.placement.owner_of(
            envelope.channel.dst_te, envelope.channel.dst_instance
        )
        self._routed += 1
        if self.restarts and envelope.channel.edge_index == INPUT_EDGE:
            # Log first: if the send trips over a dead worker, the
            # restart's replay re-delivers this envelope too, so the
            # handler below must not retry it itself.
            self._replay_log.append(envelope)
            try:
                self._send(self._links[owner], (MSG_DELIVER, envelope))
            except _WorkerFailure as failure:
                self._handle_failure(failure)
            return True
        self._send(self._links[owner], (MSG_DELIVER, envelope))
        return True

    def runnable(self, instances: "list[TEInstance]") \
            -> "list[TEInstance]":
        # The coordinator process owns no instances: it routes.
        return []

    def process(self, instance: "TEInstance",
                envelope: "Envelope") -> None:  # pragma: no cover
        raise RuntimeExecutionError(
            "the multiprocess coordinator does not process envelopes; "
            "instances run inside their owning workers"
        )

    def run_until_idle(self, max_steps: int) -> int:
        """Pump the star until quiescent, then barrier-sync state back."""
        routed_start = self._routed
        while True:
            try:
                while not self._quiet():
                    if self._routed - routed_start > max_steps:
                        raise RuntimeExecutionError(
                            f"pipeline did not become idle within "
                            f"{max_steps} steps"
                        )
                    self._pump(0.1)
                return self._sync()
            except _WorkerFailure as failure:
                self._handle_failure(failure)

    def poll(self, timeout: float = 0.0) -> None:
        """Service the wire once without waiting for quiescence.

        Drains whatever worker frames are ready — idle reports carrying
        live metric/profile shards, trace shards, relayed envelopes —
        and flushes pending writes. This is what keeps
        :meth:`Runtime.merged_metrics` fresh *between* barriers
        (``repro top --watch`` drives it); the coordinator otherwise
        only touches the pipes inside :meth:`run_until_idle`.
        """
        if not self._links:
            return
        try:
            self._pump(timeout)
        except _WorkerFailure as failure:
            self._handle_failure(failure)

    def blocked_channels(self) -> "list[ChannelId]":
        """Wire edges whose in-flight frame count exceeds capacity.

        The coordinator->worker stream is modelled as one channel per
        worker (``edge_index == WIRE_EDGE``): frames enqueued but not
        yet acknowledged by the worker's cumulative consumed counter
        are in flight — the multiprocess analogue of inbox depth.
        """
        if self.capacity is None:
            return []
        return [
            ChannelId(WIRE_EDGE, "__coordinator__", 0, "__worker__",
                      link.worker_id)
            for link in self._links
            if link.sent - link.consumed > self.capacity
        ]

    def shutdown(self) -> None:
        """Stop workers and close pipes (idempotent)."""
        if not self._links:
            return
        links, self._links = self._links, []
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _release(links)

    # ------------------------------------------------------------------
    # Telemetry shards
    # ------------------------------------------------------------------

    @property
    def metric_shards(self) -> list[dict]:
        """Per-worker registry snapshots: retired fleets' barrier-fenced
        shards plus the live fleet's freshest reports. Consumed by
        :meth:`Runtime.merged_metrics`; updated live as idle frames
        arrive, not only at barriers."""
        shards = list(self._retired_shards)
        shards.extend(link.live_shard for link in self._links
                      if link.live_shard is not None)
        return shards

    @property
    def profile_shards(self) -> list[dict]:
        """Per-worker wall-clock phase shards (``profile=True`` only)."""
        return [link.profile_shard for link in self._links
                if link.profile_shard is not None]

    # ------------------------------------------------------------------
    # Coordinator event loop
    # ------------------------------------------------------------------

    def _send(self, link: _Link, message: Any) -> None:
        t0 = time.perf_counter()
        data = encode_frame(message)
        elapsed = time.perf_counter() - t0
        self._m_serialize.inc(elapsed)
        if self._p_serialize is not None:
            self._p_serialize.add(elapsed)
        self._m_frames_send.inc()
        self._m_bytes_send.inc(len(data))
        link.outbox.append(data)
        link.sent += 1
        self._flush(link)

    def _flush(self, link: _Link) -> None:
        """Write queued frames without ever blocking."""
        try:
            while link.outbox:
                head = link.outbox[0]
                try:
                    written = os.write(link.send_fd, head)
                except BlockingIOError:
                    return
                except BrokenPipeError:
                    self._worker_died(link)
                if written < len(head):
                    link.outbox[0] = head[written:]
                    return
                link.outbox.popleft()
        finally:
            self._g_outbox[link.worker_id].set(len(link.outbox))

    def _pump(self, timeout: float) -> None:
        """One select round: drain worker frames, flush pending writes."""
        rlist = {link.recv_fd: link for link in self._links}
        wlist = {link.send_fd: link
                 for link in self._links if link.outbox}
        if self._p_wire_wait is not None:
            t0 = time.perf_counter()
            readable, writable, _ = select.select(
                list(rlist), list(wlist), [], timeout
            )
            self._p_wire_wait.add(time.perf_counter() - t0)
        else:
            readable, writable, _ = select.select(
                list(rlist), list(wlist), [], timeout
            )
        for fd in writable:
            self._flush(wlist[fd])
        for fd in readable:
            link = rlist[fd]
            try:
                data = os.read(fd, _READ_CHUNK)
            except BlockingIOError:  # pragma: no cover - spurious wake
                continue
            if not data:
                self._worker_died(link)
            self._m_bytes_recv.inc(len(data))
            for message in link.buffer.feed(data):
                self._m_frames_recv.inc()
                self._handle(link, message)

    def _handle(self, link: _Link, message: tuple) -> None:
        tag = message[0]
        if tag == MSG_OUT:
            link.received_out += 1
            self.deliver(message[1])
        elif tag == MSG_IDLE:
            _, link.consumed, link.emitted, link.processed, obs = message
            if obs:
                self._absorb_obs(link, obs)
        elif tag == MSG_TRACE:
            tracer = self.runtime.tracer
            if tracer is not None:
                tracer.merge_shard(message[1])
        elif tag == MSG_STATE:
            reply = message[1]
            link.consumed = reply["consumed"]
            link.emitted = reply["emitted"]
            link.processed = reply["processed"]
            link.live_shard = reply["metrics"]
            if reply.get("profile") is not None:
                link.profile_shard = reply["profile"]
            trace_shard = reply.get("trace")
            if trace_shard and self.runtime.tracer is not None:
                self.runtime.tracer.merge_shard(trace_shard)
            link.state_reply = reply
        elif tag == MSG_CRASH:
            extra = message[2] if len(message) > 2 else {}
            raise _WorkerFailure(
                link,
                f"worker {link.worker_id} crashed:\n{message[1]}",
                extra,
            )
        else:  # pragma: no cover - protocol violation
            raise RuntimeExecutionError(
                f"unexpected frame tag {tag!r} from worker "
                f"{link.worker_id}"
            )

    def _absorb_obs(self, link: _Link, obs: dict) -> None:
        """Install a piggybacked telemetry report (cumulative shards)."""
        metrics = obs.get("metrics")
        if metrics is not None:
            link.live_shard = metrics
        profile = obs.get("profile")
        if profile is not None:
            link.profile_shard = profile

    def _quiet(self) -> bool:
        """Nothing queued, nothing unconsumed, nothing unread."""
        return all(
            not link.outbox
            and link.consumed == link.sent
            and link.received_out == link.emitted
            for link in self._links
        )

    def _worker_died(self, link: _Link) -> None:
        raise _WorkerFailure(
            link,
            f"worker {link.worker_id} exited unexpectedly "
            f"(exitcode {link.process.exitcode})",
        )

    # ------------------------------------------------------------------
    # Fleet restart
    # ------------------------------------------------------------------

    def _handle_failure(self, failure: _WorkerFailure) -> None:
        """Absorb one worker death by restarting the fleet, or give up.

        Without restart budget the failure propagates, with the dead
        worker's flight-recorder tail (when it shipped one) appended to
        the error. With budget: retire the fleet's barrier-fenced
        telemetry, tear every worker down, re-fork from the
        coordinator's barrier-consistent state, and replay the input
        envelopes delivered since that barrier.
        """
        runtime = self.runtime
        flight_dump = failure.extra.get("flight")
        if self._restarts_left <= 0:
            detail = failure.detail
            if flight_dump:
                detail += (
                    f"\nworker {failure.link.worker_id} flight recorder "
                    f"(last {min(len(flight_dump), _CRASH_TAIL)} of "
                    f"{len(flight_dump)} events):\n"
                    + render_dump(flight_dump, limit=_CRASH_TAIL)
                )
            raise RuntimeExecutionError(detail) from None
        self._restarts_left -= 1
        # Retire what the last barrier fenced; everything after it is
        # recomputed by the replay and must not be counted twice.
        for link in self._links:
            if link.fenced_shard is not None:
                self._retired_shards.append(link.fenced_shard)
            self._retired_processed += link.fenced_processed
        self._retired_results = {te: list(items)
                                 for te, items in runtime.results.items()}
        runtime.events.publish(
            "substrate", KIND.WORKER_RESTART, runtime.total_steps,
            worker=failure.link.worker_id,
            restarts_left=self._restarts_left,
            replayed=len(self._replay_log),
        )
        if runtime.flight is not None:
            runtime.flight.record(
                runtime.total_steps, "worker_restart",
                worker=failure.link.worker_id,
                detail=failure.detail.splitlines()[0],
            )
        links, self._links = self._links, []
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _release(links)
        self._fork_fleet()
        log, self._replay_log = self._replay_log, []
        for envelope in log:
            self.deliver(envelope)

    # ------------------------------------------------------------------
    # Barrier sync
    # ------------------------------------------------------------------

    def _sync(self) -> int:
        """Ship worker state back and install it on the coordinator.

        After this barrier the coordinator's topology holds every SE
        element, ``runtime.results`` holds the merged terminal outputs
        (retired fleets' results first, then the live fleet in worker
        order — deterministic for a fixed placement), and
        ``metric_shards`` holds each worker's registry snapshot.
        Returns the items processed since the previous barrier.
        """
        runtime = self.runtime
        for link in self._links:
            link.state_reply = None
            self._send(link, (MSG_SNAPSHOT,))
        while any(link.state_reply is None for link in self._links):
            self._pump(0.1)
        results: dict[str, list] = {te: [] for te in runtime.results}
        for te, items in self._retired_results.items():
            results.setdefault(te, []).extend(items)
        processed_total = self._retired_processed
        for link in self._links:
            reply = link.state_reply
            for (se_name, index), element in reply["se"].items():
                inst = runtime.topology.se_instance(se_name, index)
                if inst is not None:
                    inst.element = element
            for te, items in reply["results"].items():
                results.setdefault(te, []).extend(items)
            link.live_shard = reply["metrics"]
            link.fenced_shard = reply["metrics"]
            link.fenced_processed = reply["processed"]
            if reply.get("profile") is not None:
                link.profile_shard = reply["profile"]
            trace_shard = reply.get("trace")
            if trace_shard and runtime.tracer is not None:
                runtime.tracer.merge_shard(trace_shard)
            processed_total += reply["processed"]
        runtime.results.clear()
        runtime.results.update(results)
        self._replay_log.clear()
        delta = processed_total - self._processed_base
        self._processed_base = processed_total
        return delta


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerSubstrate(InProcessSubstrate):
    """The in-process loop, restricted to the instances a worker owns.

    Workers reuse the engine's step loop verbatim — same scheduler
    rotor, same per-item semantics — which is what keeps the two
    substrates behaviourally aligned; only the candidate set shrinks
    to the local partition.
    """

    name = "multiprocess-worker"
    isolates_payloads = False

    def __init__(self, owned: set) -> None:
        super().__init__()
        self._owned = owned

    def runnable(self, instances: "list[TEInstance]") \
            -> "list[TEInstance]":
        return [inst for inst in instances if inst.key in self._owned]


def _worker_main(runtime: "Runtime", worker_id: int, placement,
                 recv_fd: int, send_fd: int,
                 close_fds: list) -> None:  # pragma: no cover - subprocess
    """Entry point of a forked worker process."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        _serve(runtime, worker_id, placement, recv_fd, send_fd)
    except (EOFError, BrokenPipeError):
        # Coordinator went away: nothing left to serve.
        pass
    except BaseException:
        extra: dict = {"worker": worker_id,
                       "steps": getattr(runtime, "total_steps", 0)}
        flight = getattr(runtime, "flight", None)
        if flight is not None:
            extra["flight"] = flight.dump()
        try:
            write_frame(send_fd, (MSG_CRASH, traceback.format_exc(),
                                  extra))
        except OSError:
            pass
        os._exit(1)


def _serve(runtime: "Runtime", worker_id: int, placement, recv_fd: int,
           send_fd: int) -> None:  # pragma: no cover - subprocess
    """The worker loop: drain local work, relay wire traffic, report."""
    # The forked copy of the coordinator's substrate must never run its
    # teardown in this process (its Process handles belong to the
    # parent); detach the inherited finalizer before replacing it.
    inherited = runtime.substrate
    if isinstance(inherited, MultiprocessSubstrate):
        if inherited._finalizer is not None:
            inherited._finalizer.detach()
        inherited._links = []
    counters = {"consumed": 0, "emitted": 0, "processed": 0}

    owned = set(placement.instances_of(worker_id))
    substrate = _WorkerSubstrate(owned)
    substrate.bind(runtime)
    runtime.substrate = substrate
    # The inherited registry holds the coordinator's deploy-time
    # values; zero it so this worker's shard is purely its own work
    # and the barrier merge never double-counts.
    runtime.metrics.reset()
    # The inherited results hold whatever the coordinator merged at its
    # last barrier (non-empty after a fleet restart); zero them so this
    # worker ships only work it performed itself.
    for te in list(runtime.results):
        runtime.results[te] = []
    tracer = runtime.tracer
    if tracer is not None:
        # Keep the inherited trace books (the served-set makes local
        # replay detection work after a restart) but switch to worker
        # mode: new hops are stamped and queued for shard shipping.
        tracer.record_shards(worker_id)
    profiler = getattr(runtime, "profiler", None)
    if profiler is not None:
        profiler.reset()
    p_wire_wait = (profiler.phase("wire_wait")
                   if profiler is not None else None)
    p_serialize = (profiler.phase("serialize")
                   if profiler is not None else None)
    flight = getattr(runtime, "flight", None)
    if flight is not None:
        flight.reset()
        flight.worker = worker_id
    m = runtime.metrics
    frames = m.counter(
        "wire_frames_total",
        "frames crossing the pipe star, by direction and role")
    nbytes = m.counter(
        "wire_bytes_total",
        "bytes crossing the pipe star, by direction and role")
    w_frames_send = frames.labels(direction="send", role="worker")
    w_frames_recv = frames.labels(direction="recv", role="worker")
    w_bytes_send = nbytes.labels(direction="send", role="worker")
    w_bytes_recv = nbytes.labels(direction="recv", role="worker")
    w_serialize = m.counter(
        "wire_serialize_seconds_total",
        "wall-clock seconds spent pickling outbound frames",
    ).labels(role="worker")

    def ship(message: Any) -> None:
        t0 = time.perf_counter()
        data = encode_frame(message)
        elapsed = time.perf_counter() - t0
        w_serialize.inc(elapsed)
        if p_serialize is not None:
            p_serialize.add(elapsed)
        write_bytes(send_fd, data)
        w_frames_send.inc()
        w_bytes_send.inc(len(data))

    def remote_send(envelope: "Envelope") -> None:
        ship((MSG_OUT, envelope))
        counters["emitted"] += 1

    runtime.transport.enable_worker_routing(placement, worker_id,
                                            remote_send)
    # Disjoint request-id residue class (see bind()).
    runtime.dispatcher._request_ids = itertools.count(
        worker_id + 1, placement.n_workers + 1
    )

    os.set_blocking(recv_fd, False)
    buffer = FrameBuffer()
    pending: deque = deque()

    def poll(block: bool) -> None:
        """Move available frames into ``pending``; optionally wait."""
        while True:
            try:
                data = os.read(recv_fd, _READ_CHUNK)
            except BlockingIOError:
                data = None
            if data == b"":
                raise EOFError("coordinator closed the control pipe")
            if data:
                w_bytes_recv.inc(len(data))
                for message in buffer.feed(data):
                    w_frames_recv.inc()
                    pending.append(message)
                continue
            if pending or not block:
                return
            if p_wire_wait is not None:
                t0 = time.perf_counter()
                select.select([recv_fd], [], [])
                p_wire_wait.add(time.perf_counter() - t0)
            else:
                select.select([recv_fd], [], [])

    reported = None
    drained = 0
    while True:
        poll(block=False)
        if not pending:
            if runtime.step():
                counters["processed"] += 1
                drained += 1
                if drained > WORKER_DRAIN_LIMIT:
                    raise RuntimeExecutionError(
                        f"worker {worker_id} did not become idle "
                        f"within {WORKER_DRAIN_LIMIT} local steps"
                    )
                continue
            drained = 0
            report = (counters["consumed"], counters["emitted"],
                      counters["processed"])
            if report != reported:
                # Trace hops first (FIFO pipe: the coordinator merges
                # them before it can observe this progress report),
                # then the counters with the telemetry shards
                # piggybacked.
                if tracer is not None:
                    shard = tracer.drain_shard()
                    if shard:
                        ship((MSG_TRACE, shard))
                obs: dict = {"metrics": runtime.metrics.snapshot()}
                if profiler is not None:
                    obs["profile"] = profiler.snapshot()
                ship((MSG_IDLE,) + report + (obs,))
                reported = report
            poll(block=True)
            continue
        message = pending.popleft()
        counters["consumed"] += 1
        tag = message[0]
        if tag == MSG_DELIVER:
            runtime.transport.deliver(message[1])
        elif tag == MSG_SNAPSHOT:
            ship((MSG_STATE, _snapshot(
                runtime, worker_id, placement, counters)))
        elif tag == MSG_HELLO:
            _check_hello(runtime, message, worker_id, placement)
        elif tag == MSG_SHUTDOWN:
            return
        else:
            raise RuntimeExecutionError(
                f"worker {worker_id}: unexpected frame tag {tag!r}"
            )


def _check_hello(runtime: "Runtime", message: tuple, worker_id: int,
                 placement) -> None:  # pragma: no cover - subprocess
    """Verify the coordinator's shipped view matches the forked one.

    A divergence between the coordinator's successor index and the
    worker's own (impossible today, cheap to check forever) would
    silently misroute envelopes; fail at bootstrap instead.
    """
    _, wid, n_workers, index_digest = message
    if wid != worker_id or n_workers != placement.n_workers:
        raise RuntimeExecutionError(
            f"hello mismatch: coordinator addressed worker {wid} of "
            f"{n_workers}, this process is worker {worker_id} of "
            f"{placement.n_workers}"
        )
    local = runtime.dispatcher.export_index()
    if index_digest != local:
        raise RuntimeExecutionError(
            f"worker {worker_id}: successor index diverged from the "
            f"coordinator's (routing tables are not identical)"
        )


def _snapshot(runtime: "Runtime", worker_id: int, placement,
              counters: dict) -> dict:  # pragma: no cover - subprocess
    """This worker's barrier payload: SE elements, results, telemetry."""
    elements = {}
    for se_name in runtime.sdg.states:
        for inst in runtime.topology.se_instances(se_name):
            if placement.worker_of_node(inst.node_id) == worker_id:
                elements[inst.key] = inst.element
    reply = {
        "worker": worker_id,
        "consumed": counters["consumed"],
        "emitted": counters["emitted"],
        "processed": counters["processed"],
        "se": elements,
        "results": {te: list(items)
                    for te, items in runtime.results.items() if items},
        "metrics": runtime.metrics.snapshot(),
        "steps": runtime.total_steps,
    }
    tracer = runtime.tracer
    if tracer is not None:
        reply["trace"] = tracer.drain_shard()
    profiler = getattr(runtime, "profiler", None)
    if profiler is not None:
        reply["profile"] = profiler.snapshot()
    flight = getattr(runtime, "flight", None)
    if flight is not None:
        reply["flight"] = flight.dump()
    return reply

"""Unit tests for the Vector state element."""

import pytest

from repro.errors import StateError
from repro.state import Vector


class TestVectorBasics:
    def test_new_vector_is_empty(self):
        assert Vector().size() == 0
        assert Vector().to_list() == []

    def test_sized_constructor_zero_fills(self):
        assert Vector(size=3).to_list() == [0.0, 0.0, 0.0]

    def test_values_constructor(self):
        assert Vector(values=[1, 2, 3]).to_list() == [1.0, 2.0, 3.0]

    def test_set_and_get(self):
        v = Vector()
        v.set(2, 5.0)
        assert v.get(2) == 5.0
        assert v.size() == 3

    def test_get_beyond_size_returns_zero(self):
        v = Vector(size=2)
        assert v.get(10) == 0.0

    def test_set_grows_with_zero_fill(self):
        v = Vector()
        v.set(4, 1.0)
        assert v.to_list() == [0.0, 0.0, 0.0, 0.0, 1.0]

    def test_add_accumulates(self):
        v = Vector()
        assert v.add(1, 2.0) == 2.0
        assert v.add(1, 3.0) == 5.0
        assert v.get(1) == 5.0

    def test_negative_index_rejected(self):
        with pytest.raises(StateError):
            Vector().set(-1, 1.0)

    def test_non_int_index_rejected(self):
        with pytest.raises(StateError):
            Vector().get("a")

    def test_bool_index_rejected(self):
        with pytest.raises(StateError):
            Vector().set(True, 1.0)

    def test_len_matches_size(self):
        v = Vector(values=[1, 2])
        assert len(v) == v.size() == 2


class TestVectorMath:
    def test_dot_product(self):
        a = Vector(values=[1, 2, 3])
        b = Vector(values=[4, 5, 6])
        assert a.dot(b) == 32.0

    def test_dot_with_plain_sequence(self):
        assert Vector(values=[1, 2]).dot([3, 4]) == 11.0

    def test_dot_length_mismatch_zero_pads(self):
        assert Vector(values=[1, 2, 3]).dot([1]) == 1.0

    def test_add_vector_elementwise(self):
        a = Vector(values=[1, 2])
        a.add_vector(Vector(values=[10, 20, 30]))
        assert a.to_list() == [11.0, 22.0, 30.0]

    def test_scale(self):
        v = Vector(values=[1, -2, 0])
        v.scale(2.0)
        assert v.to_list() == [2.0, -4.0, 0.0]

    def test_sum_merge_of_partials(self):
        parts = [Vector(values=[1, 0, 2]), Vector(values=[0, 3]), Vector()]
        merged = Vector.sum_merge(parts)
        assert merged.to_list() == [1.0, 3.0, 2.0]

    def test_sum_merge_empty_input(self):
        assert Vector.sum_merge([]).to_list() == []

    def test_equality_is_by_value(self):
        assert Vector(values=[1, 2]) == Vector(values=[1, 2])
        assert Vector(values=[1, 2]) != Vector(values=[2, 1])


class TestVectorCheckpointing:
    def test_writes_during_checkpoint_go_to_dirty(self):
        v = Vector(values=[1, 2])
        v.begin_checkpoint()
        v.set(0, 9.0)
        assert v.get(0) == 9.0  # read served by dirty state
        assert dict(v.snapshot_items())[0] == 1.0  # snapshot is consistent
        assert v.consolidate() == 1
        assert v.get(0) == 9.0

    def test_size_accounts_for_dirty_growth(self):
        v = Vector(values=[1])
        v.begin_checkpoint()
        v.set(5, 1.0)
        assert v.size() == 6
        v.consolidate()
        assert v.size() == 6

    def test_spawn_empty_is_fresh(self):
        v = Vector(values=[1, 2])
        assert v.spawn_empty().size() == 0

    def test_update_count_tracks_mutations(self):
        v = Vector()
        v.set(0, 1.0)
        v.add(0, 1.0)
        assert v.update_count == 2

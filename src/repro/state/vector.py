"""The ``Vector`` state element.

A growable dense vector of numbers, as used for the partial
recommendation vectors in the collaborative-filtering example (Alg. 1)
and for model weights in logistic regression.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.state.backend import ListBackend
from repro.state.base import StateElement


class Vector(StateElement):
    """A dense vector SE, indexed by non-negative integers.

    Reads outside the current size return 0.0 (matching the sparse
    semantics the CF algorithm relies on); writes grow the vector.
    Physical storage is a :class:`~repro.state.backend.ListBackend`,
    which owns index validation and implicit zero-fill growth.
    """

    BYTES_PER_ENTRY = 8

    def __init__(self, size: int = 0, values: Sequence[float] | None = None):
        if values is not None:
            backend = ListBackend([float(v) for v in values])
        else:
            backend = ListBackend([0.0] * size)
        super().__init__(backend=backend)

    def spawn_empty(self) -> "Vector":
        return Vector()

    def chunk_meta(self) -> dict[str, Any]:
        return {"size": len(self._backend)}

    def apply_chunk_meta(self, meta: dict[str, Any]) -> None:
        backend: ListBackend = self._backend  # type: ignore[assignment]
        backend.grow_to(meta.get("size", 0))

    # -- domain API ----------------------------------------------------

    def get(self, index: int) -> float:
        """Return element ``index`` (0.0 when never written)."""
        return self._get(index, 0.0)

    def set(self, index: int, value: float) -> None:
        """Set element ``index``, growing the vector as needed."""
        self._set(index, value)

    def add(self, index: int, delta: float) -> float:
        """Increment element ``index`` by ``delta``; return the new value."""
        value = self.get(index) + delta
        self.set(index, value)
        return value

    def size(self) -> int:
        """Logical length (highest written index + 1)."""
        if self._dirty is None:
            return len(self._backend)
        top = len(self._backend) - 1
        for key, value in self._dirty.items():
            if isinstance(key, int) and key > top:
                top = key
        return top + 1

    def to_list(self) -> list[float]:
        """Materialise the logical contents as a plain list."""
        out = [0.0] * self.size()
        for index, value in self._iter_items():
            out[index] = value
        return out

    def dot(self, other: "Vector | Sequence[float]") -> float:
        """Inner product with another vector (shorter one zero-padded)."""
        mine = self.to_list()
        theirs = other.to_list() if isinstance(other, Vector) else list(other)
        return sum(a * b for a, b in zip(mine, theirs))

    def add_vector(self, other: "Vector | Sequence[float]") -> None:
        """In-place elementwise sum (the CF ``merge`` building block)."""
        theirs = other.to_list() if isinstance(other, Vector) else list(other)
        for index, value in enumerate(theirs):
            if value:
                self.add(index, value)

    def scale(self, factor: float) -> None:
        """In-place multiplication of every element by ``factor``."""
        for index in range(self.size()):
            value = self.get(index)
            if value:
                self.set(index, value * factor)

    @staticmethod
    def sum_merge(vectors: Sequence["Vector"]) -> "Vector":
        """Elementwise sum of partial vectors — the paper's CF merge."""
        if not vectors:
            return Vector()
        merged = Vector(size=max(v.size() for v in vectors))
        for vector in vectors:
            merged.add_vector(vector)
        return merged

    def __len__(self) -> int:
        return self.size()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return self.to_list() == other.to_list()

    def __hash__(self) -> int:  # pragma: no cover - mutable, unhashable
        raise TypeError("Vector is mutable and unhashable")

    def __repr__(self) -> str:
        data = self.to_list()
        if len(data) > 8:
            head = ", ".join(f"{v:g}" for v in data[:8])
            return f"Vector([{head}, ... len={len(data)}])"
        return f"Vector({data!r})"

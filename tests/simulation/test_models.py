"""Tests for the batching, recovery, straggler and CF models."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    StragglerScenario,
    deployment_time,
    microbatch_throughput,
    pipelined_throughput,
    recovery_time,
    scaling_throughput,
    simulate_stragglers,
    sustainable,
)
from repro.simulation.cf_model import CFModel, ratio_to_read_fraction


class TestBatchingModel:
    def test_large_batches_amortise_overhead(self):
        small = microbatch_throughput(100_000, 100, 0.01)
        large = microbatch_throughput(100_000, 20_000, 0.01)
        assert large > small

    def test_microbatch_peak_can_beat_pipelined(self):
        # Naiad-HighThroughput tops the chart at large windows (Fig. 8)
        pipelined = pipelined_throughput(100_000,
                                         per_item_overhead_s=2e-6)
        batched = microbatch_throughput(120_000, 20_000, 0.01)
        assert batched > pipelined * 0.9

    def test_sustainability_cliff(self):
        # A 20k batch at 100k/s + 10ms sched takes 210 ms: a 100 ms
        # window is not sustainable, a 250 ms window is.
        assert not sustainable(0.1, 20_000, 100_000, 0.01)
        assert sustainable(0.25, 20_000, 100_000, 0.01)

    def test_pipelined_has_no_cliff(self):
        # Pipelining has no batch to finish within the window.
        assert pipelined_throughput(100_000) == pytest.approx(100_000)

    def test_scaling_linear_without_coordination(self):
        t25 = scaling_throughput(25, 500e6)
        t100 = scaling_throughput(100, 500e6)
        assert t100 == pytest.approx(4 * t25)

    def test_per_iteration_overhead_lowers_throughput(self):
        clean = scaling_throughput(50, 500e6,
                                   per_iteration_overhead_s=0.0)
        spark = scaling_throughput(50, 500e6,
                                   per_iteration_overhead_s=2.0)
        assert spark < clean

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            microbatch_throughput(1000, 0, 0.01)
        with pytest.raises(SimulationError):
            scaling_throughput(0, 1000)
        with pytest.raises(SimulationError):
            sustainable(0, 10, 100, 0.01)


class TestRecoveryModel:
    def test_paper_ordering_of_strategies(self):
        """Fig. 11: 2-to-2 fastest, 1-to-1 slowest."""
        for state in (1e9, 2e9, 4e9):
            t11 = recovery_time(state, 1, 1)
            t21 = recovery_time(state, 2, 1)
            t12 = recovery_time(state, 1, 2)
            t22 = recovery_time(state, 2, 2)
            assert t22 <= min(t21, t12) <= max(t21, t12) <= t11

    def test_reconstruction_dominates_at_large_state(self):
        """Fig. 11: at 4 GB, a second disk (m) no longer helps; a
        second recovering node (n) still does."""
        base = recovery_time(4e9, 1, 1)
        extra_disk = recovery_time(4e9, 2, 1)
        extra_node = recovery_time(4e9, 1, 2)
        gain_disk = base - extra_disk
        gain_node = base - extra_node
        assert gain_node > gain_disk

    def test_recovery_grows_with_state(self):
        assert (recovery_time(4e9, 2, 2) > recovery_time(2e9, 2, 2)
                > recovery_time(1e9, 2, 2))

    def test_recovery_in_seconds_band(self):
        """The paper recovers multi-GB state 'in seconds' (<40 s)."""
        assert recovery_time(4e9, 1, 1) < 60
        assert recovery_time(1e9, 2, 2) < 15

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            recovery_time(-1, 1, 1)
        with pytest.raises(SimulationError):
            recovery_time(1e9, 0, 1)

    def test_deployment_cost_matches_paper_point(self):
        """§3.4: 50 instances deploy in ~7 s."""
        assert deployment_time(50) == pytest.approx(7.0, abs=1.0)


class TestStragglerTimeline:
    def test_paper_walkthrough(self):
        timeline = simulate_stragglers()
        by_t = {p.t: p for p in timeline}
        assert by_t[5].throughput == pytest.approx(3600)
        assert by_t[15].throughput == pytest.approx(6200)
        # Adding an instance at t=30 without relieving the straggler
        # does not move throughput.
        assert by_t[35].throughput == pytest.approx(6200)
        assert by_t[35].n_nodes == 3
        # Relief at t=50 unlocks the jump.
        assert by_t[55].throughput > 10_000
        assert by_t[55].n_nodes == 4

    def test_events_in_order(self):
        events = [p.event for p in simulate_stragglers() if p.event]
        assert len(events) == 3
        assert "add instance" in events[0]
        assert "add instance" in events[1]
        assert "relieve" in events[2]

    def test_monotone_nodes(self):
        timeline = simulate_stragglers()
        nodes = [p.n_nodes for p in timeline]
        assert nodes == sorted(nodes)

    def test_invalid_scenario_rejected(self):
        with pytest.raises(SimulationError):
            simulate_stragglers(StragglerScenario(duration_s=0))
        with pytest.raises(SimulationError):
            simulate_stragglers(StragglerScenario(node_pool=()))


class TestCFModel:
    def test_calibration_end_points(self):
        model = CFModel()
        write_heavy = model.throughput(ratio_to_read_fraction(1, 5))
        read_heavy = model.throughput(ratio_to_read_fraction(5, 1))
        assert write_heavy == pytest.approx(14_000, rel=0.02)
        assert read_heavy == pytest.approx(10_000, rel=0.02)

    def test_throughput_monotone_in_read_share(self):
        model = CFModel()
        values = [model.throughput(f) for f in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values, reverse=True)

    def test_throughput_band_matches_paper(self):
        """Fig. 5: 10-14 k requests/s across all measured ratios."""
        model = CFModel()
        for reads, writes in ((1, 5), (1, 2), (1, 1), (2, 1), (5, 1)):
            f = ratio_to_read_fraction(reads, writes)
            assert 9_500 <= model.throughput(f) <= 14_500

    def test_latency_tail_under_paper_staleness_bound(self):
        """95th percentile at most ~1.5 s stale."""
        model = CFModel()
        for f in (0.2, 0.5, 0.8):
            stick = model.read_latency(f)
            assert stick.p95 <= 1.6
            assert stick.p5 < stick.p50 < stick.p95

    def test_latency_grows_with_read_share(self):
        model = CFModel()
        assert (model.read_latency(0.8).p50
                > model.read_latency(0.2).p50)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SimulationError):
            CFModel().throughput(1.5)
        with pytest.raises(SimulationError):
            ratio_to_read_fraction(0, 0)


class TestIncrementalRecoveryModel:
    def test_delta_bytes_add_to_recovery_time(self):
        base = recovery_time(1e9, 2, 2)
        with_chain = recovery_time(1e9, 2, 2, delta_bytes=500e6)
        assert with_chain > base
        # Folding the chain costs like restoring that much extra state.
        equivalent = recovery_time(1.5e9, 2, 2)
        assert with_chain == pytest.approx(equivalent)

    def test_delta_bytes_monotonic(self):
        times = [recovery_time(1e9, 2, 2, delta_bytes=b)
                 for b in (0.0, 1e8, 5e8, 1e9)]
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_negative_delta_bytes_rejected(self):
        with pytest.raises(SimulationError):
            recovery_time(1e9, 2, 2, delta_bytes=-1.0)

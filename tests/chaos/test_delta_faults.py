"""Chaos scenarios against the incremental checkpoint chain.

The acceptance scenario: a delta chunk is corrupted (or dropped) in the
backup store, the node fails, and the supervisor's ladder recovers via
the **base-only** rung — restore the full base, replay the
delta-covered span from the (untrimmed) upstream buffers — with no
silently truncated state.
"""

import pytest

from repro.apps import KeyValueStore
from repro.chaos import (
    CorruptDeltaChunk,
    DropDeltaChunk,
    FaultInjector,
    FaultPlan,
)
from repro.errors import BackupIntegrityError, ChaosError
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointPolicy,
    CheckpointScheduler,
    RecoveryManager,
    RecoverySupervisor,
)
from repro.runtime import FailureDetector
from repro.workloads import KVWorkload


def merged_state(app):
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    return merged


def supervised_incremental_kv(table=2, *, full_every=0, every_items=25):
    """A supervised KV deployment checkpointing incrementally."""
    app = KeyValueStore.launch(table=table)
    store = BackupStore(m_targets=2)
    manager = CheckpointManager(app.runtime, store, trim_input_log=False,
                                policy=CheckpointPolicy(full_every=full_every))
    scheduler = CheckpointScheduler(manager, every_items=every_items,
                                    complete_after_steps=3).install()
    recovery = RecoveryManager(app.runtime, store)
    detector = FailureDetector(app.runtime, heartbeat_timeout=20,
                               check_every=5).install()
    supervisor = RecoverySupervisor(detector, recovery).install()
    return app, store, scheduler, detector, supervisor


def run_workload(app, oracle, ops):
    for op in ops:
        app.put(op.key, op.value)
        oracle.put(op.key, op.value)
    app.run()


class TestCorruptDeltaRecovery:
    def test_corrupt_delta_recovers_base_only(self):
        """CRC failure in a delta -> base-only rung, state intact."""
        app, store, scheduler, _detector, supervisor = \
            supervised_incremental_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=31).ops(500))
        run_workload(app, oracle, ops[:200])
        scheduler.flush()
        run_workload(app, oracle, ops[200:300])
        scheduler.flush()

        victim = app.runtime.se_instance("table", 1).node_id
        assert len(store.chain(victim)) > 1  # base + at least one delta
        key = store.corrupt_chunk(victim, kind="delta")
        assert key is not None and store._kind_of(key[0], key[1]) == "delta"
        with pytest.raises(BackupIntegrityError):
            store.chunks_for(victim, key[2], version=key[1])

        app.runtime.fail_node(victim)
        run_workload(app, oracle, ops[300:])

        assert supervisor.settled
        fallbacks = [e for e in supervisor.events if e.kind == "fallback"]
        assert fallbacks and "base-only" in fallbacks[0].detail
        (recovered,) = [e for e in supervisor.events
                        if e.kind == "recovered"]
        assert recovered.detail == "base-only"
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_dropped_delta_recovers_base_only(self):
        """A delta chunk missing entirely (count mismatch) -> base-only."""
        app, store, scheduler, _detector, supervisor = \
            supervised_incremental_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=37).ops(500))
        run_workload(app, oracle, ops[:200])
        scheduler.flush()
        run_workload(app, oracle, ops[200:300])
        scheduler.flush()

        victim = app.runtime.se_instance("table", 1).node_id
        assert store.drop_chunk(victim, kind="delta") is not None

        app.runtime.fail_node(victim)
        run_workload(app, oracle, ops[300:])

        assert supervisor.settled
        (recovered,) = [e for e in supervisor.events
                        if e.kind == "recovered"]
        assert recovered.detail == "base-only"
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_corrupt_base_skips_to_log_replay(self):
        """A corrupt *full base* cannot use the base-only rung."""
        app, store, scheduler, _detector, supervisor = \
            supervised_incremental_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=41).ops(500))
        run_workload(app, oracle, ops[:200])
        scheduler.flush()
        run_workload(app, oracle, ops[200:300])
        scheduler.flush()

        victim = app.runtime.se_instance("table", 1).node_id
        assert store.corrupt_chunk(victim, kind="full") is not None
        # Corrupting the base poisons both the chain restore *and* the
        # base-only rung; the ladder must end at log-replay.
        app.runtime.fail_node(victim)
        run_workload(app, oracle, ops[300:])

        assert supervisor.settled
        (recovered,) = [e for e in supervisor.events
                        if e.kind == "recovered"]
        assert recovered.detail == "log-replay"
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())


class TestPlannedDeltaFaults:
    def test_planned_corrupt_delta_fault_fires(self):
        app, store, scheduler, _detector, supervisor = \
            supervised_incremental_kv()
        oracle = KeyValueStore()
        ops = list(KVWorkload(n_keys=60, read_fraction=0.0,
                              seed=43).ops(600))
        run_workload(app, oracle, ops[:200])
        scheduler.flush()
        run_workload(app, oracle, ops[200:300])
        scheduler.flush()

        victim = app.runtime.se_instance("table", 1).node_id
        step = app.runtime.total_steps + 1
        injector = FaultInjector(
            app.runtime,
            FaultPlan([CorruptDeltaChunk(at_step=step, node_id=victim)]),
            store=store,
        ).install()
        app.runtime.fail_node(victim)
        run_workload(app, oracle, ops[300:])

        assert injector.done and injector.fired()
        assert supervisor.settled
        (recovered,) = [e for e in supervisor.events
                        if e.kind == "recovered"]
        assert recovered.detail in ("base-only", "log-replay")
        scheduler.flush()
        assert merged_state(app) == dict(oracle.table.items())

    def test_delta_faults_require_a_store(self):
        app = KeyValueStore.launch(table=1)
        for fault in (CorruptDeltaChunk(at_step=1),
                      DropDeltaChunk(at_step=1)):
            with pytest.raises(ChaosError, match="store"):
                FaultInjector(app.runtime, FaultPlan([fault]))

    def test_fault_skips_when_no_delta_exists(self):
        """Full-only chains give the fault nothing to hit: log 'skipped'."""
        app = KeyValueStore.launch(table=1)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store,
                                    trim_input_log=False)
        for i in range(30):
            app.put(f"k{i}", i)
        app.run()
        manager.checkpoint(app.runtime.se_instance("table", 0).node_id)
        injector = FaultInjector(
            app.runtime,
            FaultPlan([DropDeltaChunk(at_step=app.runtime.total_steps + 1)]),
            store=store,
        ).install()
        for i in range(10):
            app.put(f"p{i}", i)
        app.run()
        assert injector.done
        assert injector.fired("skipped")
        assert not injector.fired("fired")

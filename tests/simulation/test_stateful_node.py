"""Tests for the checkpointing-node simulator (the Fig. 6/12/13 engine)."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    CheckpointPolicy,
    NodeParams,
    simulate_cluster,
    simulate_node,
)

FAST = dict(duration_s=30.0, tick_s=0.005)


class TestBasicService:
    def test_underloaded_node_serves_everything(self):
        result = simulate_node(10_000, NodeParams(service_rate=65_000),
                               CheckpointPolicy.none(), **FAST)
        assert result.throughput == pytest.approx(10_000, rel=0.02)

    def test_overloaded_node_caps_at_service_rate(self):
        result = simulate_node(100_000, NodeParams(service_rate=65_000),
                               CheckpointPolicy.none(), **FAST)
        assert result.throughput == pytest.approx(65_000, rel=0.02)

    def test_latency_is_base_when_underloaded(self):
        result = simulate_node(
            10_000, NodeParams(service_rate=65_000, base_latency_s=0.001),
            CheckpointPolicy.none(), **FAST)
        assert result.p(95) < 0.02

    def test_straggler_speed_reduces_capacity(self):
        slow = NodeParams(service_rate=65_000, speed=0.5)
        result = simulate_node(100_000, slow, CheckpointPolicy.none(),
                               **FAST)
        assert result.throughput == pytest.approx(32_500, rel=0.02)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            simulate_node(-1, NodeParams(), CheckpointPolicy.none())
        with pytest.raises(SimulationError):
            CheckpointPolicy(mode="magic")
        with pytest.raises(SimulationError):
            CheckpointPolicy(interval_s=0)


class TestSyncCheckpointing:
    def test_pauses_reduce_throughput(self):
        params = NodeParams(service_rate=65_000, state_bytes=2e9)
        sync = simulate_node(
            60_000, params,
            CheckpointPolicy(mode="sync", interval_s=10, disk_bw=400e6),
            **FAST)
        none = simulate_node(60_000, params, CheckpointPolicy.none(),
                             **FAST)
        # 5 s pause every 10 s => roughly half the capacity.
        assert sync.throughput < none.throughput * 0.75

    def test_pause_length_grows_with_state(self):
        def p95(state_bytes):
            return simulate_node(
                40_000, NodeParams(service_rate=65_000,
                                   state_bytes=state_bytes),
                CheckpointPolicy(mode="sync", interval_s=10,
                                 disk_bw=400e6),
                **FAST).p(95)

        assert p95(4e9) > p95(1e9) > p95(0.1e9)

    def test_tail_latency_reflects_stop_the_world(self):
        result = simulate_node(
            40_000, NodeParams(service_rate=65_000, state_bytes=2e9),
            CheckpointPolicy(mode="sync", interval_s=10, disk_bw=1e9),
            **FAST)
        # A 2 s pause shows up in the high percentiles.
        assert result.p(99) > 1.0
        assert result.p(25) < 0.1


class TestAsyncCheckpointing:
    def test_throughput_impact_is_small(self):
        params = NodeParams(service_rate=65_000, state_bytes=4e9)
        async_result = simulate_node(
            60_000, params,
            CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
            **FAST)
        none = simulate_node(60_000, params, CheckpointPolicy.none(),
                             **FAST)
        # The paper reports ~5% impact even at 4 GB.
        assert async_result.throughput > none.throughput * 0.90

    def test_async_beats_sync_on_tail_latency(self):
        params = NodeParams(service_rate=65_000, state_bytes=2e9)
        kwargs = dict(interval_s=10, disk_bw=400e6)
        async_result = simulate_node(
            40_000, params, CheckpointPolicy(mode="async", **kwargs),
            **FAST)
        sync_result = simulate_node(
            40_000, params, CheckpointPolicy(mode="sync", **kwargs),
            **FAST)
        assert async_result.p(99) < sync_result.p(99) / 5

    def test_consolidation_lock_scales_with_update_rate_not_state(self):
        # Doubling state size (persist window) at a fixed update rate
        # roughly doubles dirty state; but the lock stays tiny compared
        # to a sync pause over the same state.
        params = NodeParams(service_rate=65_000, state_bytes=4e9,
                            bytes_per_update=64)
        result = simulate_node(
            40_000, params,
            CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
            **FAST)
        assert result.p(99) < 1.5


class TestCluster:
    def test_throughput_scales_with_nodes(self):
        params = NodeParams(service_rate=50_000, state_bytes=5e9)
        policy = CheckpointPolicy(mode="async", interval_s=10,
                                  disk_bw=400e6)
        t10 = simulate_cluster(10, 450_000, params, policy, **FAST)
        t40 = simulate_cluster(40, 1_800_000, params, policy, **FAST)
        assert t40.throughput == pytest.approx(t10.throughput * 4,
                                               rel=0.05)

    def test_remote_latency_added(self):
        params = NodeParams(service_rate=50_000)
        single = simulate_node(10_000, params, CheckpointPolicy.none(),
                               **FAST)
        cluster = simulate_cluster(1, 10_000, params,
                                   CheckpointPolicy.none(),
                                   remote_latency_s=0.004, **FAST)
        assert cluster.p(50) == pytest.approx(single.p(50) + 0.004,
                                              abs=1e-6)

    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            simulate_cluster(0, 1000, NodeParams(),
                             CheckpointPolicy.none())


class TestIncrementalPolicy:
    def test_full_every_validation(self):
        with pytest.raises(SimulationError):
            CheckpointPolicy(full_every=-1)
        with pytest.raises(SimulationError):
            CheckpointPolicy(full_every=2.5)
        with pytest.raises(SimulationError):
            CheckpointPolicy(full_every=True)

    def test_wants_full_cadence(self):
        policy = CheckpointPolicy(full_every=3)
        assert [policy.wants_full(c) for c in range(6)] == [
            True, False, False, True, False, False]
        always = CheckpointPolicy(full_every=1)
        assert all(always.wants_full(c) for c in range(4))
        once = CheckpointPolicy(full_every=0)
        assert once.wants_full(0) and not once.wants_full(1)

    def test_delta_cycles_recorded_and_smaller(self):
        params = NodeParams(service_rate=50_000, state_bytes=1e9,
                            write_fraction=0.2)
        result = simulate_node(
            20_000, params,
            CheckpointPolicy(mode="async", interval_s=5, disk_bw=200e6,
                             full_every=0),
            **FAST)
        traffic = result.traffic
        assert traffic.full_cycles() == 1
        assert traffic.delta_cycles() >= 1
        full_bytes = [c.bytes for c in traffic.cycles if c.kind == "full"]
        delta_bytes = [c.bytes for c in traffic.cycles if c.kind == "delta"]
        assert max(delta_bytes) < min(full_bytes)
        assert traffic.savings_vs_full(params.state_bytes) > 0.5

    def test_full_every_cycle_matches_seed_traffic(self):
        params = NodeParams(service_rate=50_000, state_bytes=1e9)
        result = simulate_node(
            20_000, params,
            CheckpointPolicy(mode="async", interval_s=5, disk_bw=200e6),
            **FAST)
        assert result.traffic.delta_cycles() == 0
        for cycle in result.traffic.cycles:
            assert cycle.bytes == params.state_bytes

    def test_incremental_improves_throughput_under_sync(self):
        """Smaller persists -> shorter stop-the-world pauses."""
        params = NodeParams(service_rate=50_000, state_bytes=2e9,
                            write_fraction=0.1)
        sync_full = simulate_node(
            30_000, params,
            CheckpointPolicy(mode="sync", interval_s=5, disk_bw=200e6),
            **FAST)
        sync_delta = simulate_node(
            30_000, params,
            CheckpointPolicy(mode="sync", interval_s=5, disk_bw=200e6,
                             full_every=0),
            **FAST)
        assert sync_delta.throughput > sync_full.throughput

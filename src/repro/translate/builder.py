"""The py2sdg driver: annotated class → executable SDG (Fig. 3).

``translate(cls)`` runs the full pipeline over an ``SDGProgram``
subclass and returns a :class:`TranslationResult` holding the SDG plus
per-entry-method metadata (parameter lists, entry/terminal TE names)
used by the program runner to inject calls and collect results.

The pipeline doubles as the front-end of the ``sdglint`` analyzer
(:mod:`repro.analysis`): passing a
:class:`~repro.analysis.diagnostics.DiagnosticSink` switches every
check from raise-on-first to collect-all — restriction violations,
per-method structural failures and SDG validation findings are
recorded as diagnostics and translation continues as far as it can.
Without a sink the behaviour (and the produced SDG) is unchanged.

Each translated entry additionally records its intermediate
representation (:class:`MethodIR`: the method AST, TE blocks, live-in
sets and TE names) on the result, which is what the analysis passes
consume — capturing it costs nothing because the objects already
exist.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.diagnostics import DiagnosticSink
from repro.annotations import StateField
from repro.core.dispatch import Dispatch
from repro.core.elements import AccessMode
from repro.core.graph import SDG
from repro.errors import TranslationError
from repro.translate.codegen import compile_block, compile_helper
from repro.translate.liveness import live_ins
from repro.translate.restrictions import (
    check_restrictions,
    collect_import_aliases,
)
from repro.translate.splitter import Block, split_method


@dataclass
class EntryInfo:
    """Runner-facing metadata of one translated entry method."""

    method: str
    params: list[str]
    entry_te: str
    terminal_te: str
    #: TE names in pipeline order.
    te_names: list[str] = field(default_factory=list)


@dataclass
class MethodIR:
    """Front-end intermediate representation of one entry method.

    Captured for the ``sdglint`` passes: the split TE blocks and the
    live-variable results are exactly what the value-level analyses
    (partial-race, key-provenance, dead-payload) need.
    """

    method: str
    fn_ast: ast.FunctionDef
    params: list[str]
    blocks: list[Block]
    lives: list[list[str]]
    te_names: list[str]


@dataclass
class TranslationResult:
    """The SDG plus the metadata needed to drive it."""

    sdg: SDG
    entries: dict[str, EntryInfo]
    program_class: type
    #: Per-entry analysis IR (populated for every translated entry).
    method_ir: dict[str, MethodIR] = field(default_factory=dict)
    #: All method ASTs of the class body (entries, helpers, merges).
    method_asts: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Annotated state-field descriptors by name.
    fields: dict[str, StateField] = field(default_factory=dict)
    #: Certified :class:`~repro.analysis.capabilities.
    #: ProgramCapabilities`, attached by ``SDGProgram.launch`` when the
    #: runtime is asked to optimize (``None`` otherwise).
    capabilities: Any = None

    def entry_info(self, method: str) -> EntryInfo:
        if method not in self.entries:
            raise TranslationError(
                f"{method!r} is not an entry method of "
                f"{self.program_class.__name__}"
            )
        return self.entries[method]


def _collect_fields(cls: type) -> dict[str, StateField]:
    fields: dict[str, StateField] = {}
    for klass in reversed(cls.__mro__):
        for name, value in vars(klass).items():
            if isinstance(value, StateField):
                fields[name] = value
    return fields


def _collect_methods(cls: type) -> dict[str, Callable]:
    methods: dict[str, Callable] = {}
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        for name, value in vars(klass).items():
            if callable(value) and not name.startswith("__"):
                methods[name] = value
    return methods


def _class_ast(cls: type) -> ast.ClassDef:
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError) as exc:
        raise TranslationError(
            f"cannot read the source of {cls.__name__}: {exc}; py2sdg "
            f"needs source access (like java2sdg needs the class file)"
        ) from exc
    module = ast.parse(textwrap.dedent(source))
    for node in module.body:
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return node
    raise TranslationError(
        f"source of {cls.__name__} does not contain its class definition"
    )


def _module_aliases(cls: type) -> dict[str, str]:
    """Import aliases visible to the class from its module's top level.

    ``from time import time as now`` at module scope must not evade the
    §4.1 restriction scan any more than it would inside a method. Only
    top-level imports are considered; failure to read the module source
    (REPL-defined classes) degrades to no module aliases.
    """
    module = sys.modules.get(cls.__module__)
    if module is None:
        return {}
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return {}
    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - source is importable
        return {}
    top_level = [stmt for stmt in tree.body
                 if isinstance(stmt, (ast.Import, ast.ImportFrom))]
    return collect_import_aliases(top_level)


def _method_asts(class_def: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in class_def.body
        if isinstance(node, ast.FunctionDef)
    }


def _params_of(fn: ast.FunctionDef) -> list[str]:
    params = [arg.arg for arg in fn.args.args]
    if not params or params[0] != "self":
        raise TranslationError(
            f"entry method {fn.name!r} must take self first",
            lineno=fn.lineno,
        )
    if fn.args.vararg or fn.args.kwarg or fn.args.kwonlyargs:
        raise TranslationError(
            f"entry method {fn.name!r} must use plain positional "
            f"parameters", lineno=fn.lineno,
        )
    return params[1:]


def _item_key_fn(names: list[str], key: str) -> Callable[[Any], Any]:
    """Extract the partition key from a live-var payload."""
    if key not in names:
        raise TranslationError(
            f"partition key variable {key!r} is not available on the "
            f"dataflow (live variables: {names}); the key must reach the "
            f"task element that accesses the partitioned state"
        )
    if len(names) == 1:
        return lambda item: item
    index = names.index(key)
    return lambda item: item[index]


def _block_label(block: Block) -> str:
    if block.is_merge:
        return f"merge_{block.merge.method}"
    if block.access is None:
        return "task"
    if block.access.mode is AccessMode.GLOBAL:
        return f"{block.access.field}_global"
    return block.access.field


def translate(cls: type,
              sink: DiagnosticSink | None = None) -> TranslationResult:
    """Translate an annotated program class into an SDG.

    With ``sink`` (lint mode) every violation is recorded as a
    diagnostic and translation continues method-by-method; a method
    that cannot be structured into TEs at all is reported (``SDG001``)
    and skipped. Without a sink the first problem raises, exactly as
    the runtime callers expect.
    """
    strict = sink is None
    fields = _collect_fields(cls)
    if not fields:
        message = (f"{cls.__name__} declares no Partitioned/Partial state "
                   f"fields; nothing to distribute")
        if strict:
            raise TranslationError(message)
        sink.emit("SDG001", message, origin=cls.__name__)
        return TranslationResult(sdg=SDG(cls.__name__), entries={},
                                 program_class=cls)
    methods = _collect_methods(cls)
    entry_names = [
        name for name, method in methods.items()
        if getattr(method, "_sdg_entry", False)
    ]
    if not entry_names:
        message = f"{cls.__name__} has no @entry methods"
        if strict:
            raise TranslationError(message)
        sink.emit("SDG001", message, origin=cls.__name__)
        return TranslationResult(sdg=SDG(cls.__name__), entries={},
                                 program_class=cls, fields=fields)
    helper_names = {
        name for name in methods
        if name not in entry_names
    }

    class_def = _class_ast(cls)
    method_asts = _method_asts(class_def)
    aliases = _module_aliases(cls)
    aliases.update(collect_import_aliases(class_def.body))

    # Shared compile namespace: the program module's globals (so names
    # like Vector resolve) plus the compiled helper functions.
    module = sys.modules.get(cls.__module__)
    namespace: dict[str, Any] = dict(vars(module)) if module else {}
    for helper in sorted(helper_names):
        if helper not in method_asts:
            message = (f"helper method {helper!r} has no source in the "
                       f"class body (inherited helpers are not supported)")
            if strict:
                raise TranslationError(message)
            sink.emit("SDG001", message, origin=helper)
            continue
        check_restrictions(method_asts[helper], helper,
                           module_aliases=aliases, sink=sink)
        try:
            compile_helper(method_asts[helper], helper_names, namespace,
                           class_name=cls.__name__)
        except TranslationError as exc:
            if strict:
                raise
            sink.emit("SDG001", str(exc), origin=helper,
                      lineno=exc.lineno)
            continue

    sdg = SDG(cls.__name__)
    sdg.source_program = cls
    for name, descriptor in fields.items():
        sdg.add_state(name, descriptor.factory, kind=descriptor.kind,
                      partition_by=descriptor.key)

    result = TranslationResult(sdg=sdg, entries={}, program_class=cls,
                               method_asts=method_asts, fields=fields)
    for method in entry_names:
        if method not in method_asts:
            message = (f"entry method {method!r} has no source in the "
                       f"class body (inherited entries are not supported)")
            if strict:
                raise TranslationError(message)
            sink.emit("SDG001", message, origin=method)
            continue
        fn_ast = method_asts[method]
        check_restrictions(fn_ast, method,
                           module_aliases=aliases, sink=sink)
        try:
            _translate_entry(sdg, fn_ast, method, result, namespace)
        except TranslationError as exc:
            if strict:
                raise
            sink.emit("SDG001", str(exc), origin=method)

    if strict:
        sdg.validate()
    else:
        from repro.core.validation import collect

        sink.extend(collect(sdg))
    return result


def _translate_entry(sdg: SDG, fn_ast: ast.FunctionDef, method: str,
                     result: TranslationResult,
                     namespace: dict[str, Any]) -> None:
    """Split, analyse and compile one entry method into the SDG."""
    params = _params_of(fn_ast)
    blocks = split_method(fn_ast, result.fields)
    lives = live_ins([b.statements for b in blocks], params)

    te_names = []
    for i, block in enumerate(blocks):
        if len(blocks) == 1:
            te_names.append(method)
        else:
            te_names.append(f"{method}_{i}_{_block_label(block)}")

    # Record the front-end IR before code generation: the analysis
    # passes still want the blocks/liveness of a method whose code
    # generation or edge wiring subsequently fails.
    result.method_ir[method] = MethodIR(
        method=method, fn_ast=fn_ast, params=params,
        blocks=blocks, lives=lives, te_names=te_names,
    )

    for i, block in enumerate(blocks):
        live_in = lives[i]
        live_out = lives[i + 1] if i + 1 < len(blocks) else None
        fn = compile_block(block, te_names[i], live_in, live_out,
                           namespace,
                           class_name=result.program_class.__name__)
        is_entry = i == 0
        access = (
            block.access.mode if block.access is not None
            else AccessMode.NONE
        )
        state = block.access.field if block.access is not None else None
        entry_key_fn = None
        entry_key_name = None
        if is_entry and access is AccessMode.PARTITIONED:
            entry_key_name = block.access.key
            entry_key_fn = _item_key_fn(params, entry_key_name)
        sdg.add_task(
            te_names[i], fn, state=state, access=access,
            is_entry=is_entry, is_merge=block.is_merge,
            entry_key_fn=entry_key_fn, entry_key_name=entry_key_name,
        )

    for i in range(len(blocks) - 1):
        downstream = blocks[i + 1]
        live = lives[i + 1]
        if downstream.is_merge:
            sdg.connect(te_names[i], te_names[i + 1],
                        Dispatch.ALL_TO_ONE)
        elif (
            downstream.access is not None
            and downstream.access.mode is AccessMode.GLOBAL
        ):
            sdg.connect(te_names[i], te_names[i + 1],
                        Dispatch.ONE_TO_ALL)
        elif (
            downstream.access is not None
            and downstream.access.mode is AccessMode.PARTITIONED
        ):
            key = downstream.access.key
            sdg.connect(te_names[i], te_names[i + 1],
                        Dispatch.KEY_PARTITIONED,
                        key_fn=_item_key_fn(live, key),
                        key_name=key)
        else:
            sdg.connect(te_names[i], te_names[i + 1],
                        Dispatch.ONE_TO_ANY)

    result.entries[method] = EntryInfo(
        method=method, params=params, entry_te=te_names[0],
        terminal_te=te_names[-1], te_names=te_names,
    )

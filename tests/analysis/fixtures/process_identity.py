"""SDG101 for the process-dependent builtins ``hash`` and ``id``.

``hash()`` differs per process under hash randomization and ``id()``
is an interpreter address: both break §4.1 determinism — replay
recovery and forked workers compute different values from the same
input.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class ProcessIdentity(SDGProgram):
    """Derives stored values from hash() and id()."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def record(self, key, value):
        digest = hash(value)
        tag = id(value)
        self.table.put(key, (digest, tag))

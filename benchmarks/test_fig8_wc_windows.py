"""Fig. 8 — streaming wordcount: throughput vs window size.

The paper sweeps the result-window size from 10 ms to 10 s and compares
SDG, Streaming Spark, Naiad-LowLatency (1 000-message batches) and
Naiad-HighThroughput (20 000-message batches). Expected shape:

* only SDG and Naiad-LowLatency sustain *all* window sizes, with SDG
  throughput above Naiad-LowLatency (scheduling overhead);
* Streaming Spark matches SDG's throughput at large windows but
  collapses below a 250 ms window;
* Naiad-HighThroughput posts the highest plateau of all but collapses
  below a 100 ms window.

A second part runs the real wordcount SDG to confirm windows do not
change the computed counts (fine-grained updates are window-agnostic).
"""

from conftest import print_figure

from repro.apps import build_wordcount_sdg
from repro.baselines import NaiadModel, StreamingSparkModel
from repro.runtime import Runtime, RuntimeConfig
from repro.simulation import pipelined_throughput
from repro.workloads import TextWorkload

WINDOWS_MS = [10, 50, 100, 250, 1_000, 10_000]

SDG_SERVICE_RATE = 90_000.0
SDG_PER_ITEM_OVERHEAD = 1e-6


def compute_figure():
    naiad_low = NaiadModel.low_latency()
    naiad_high = NaiadModel.high_throughput()
    spark = StreamingSparkModel()
    sdg_rate = pipelined_throughput(SDG_SERVICE_RATE,
                                    SDG_PER_ITEM_OVERHEAD)
    rows = []
    for window_ms in WINDOWS_MS:
        window_s = window_ms / 1000
        rows.append((
            window_ms,
            sdg_rate,  # pipelining: no batch to fit inside the window
            spark.wordcount_throughput(window_s),
            naiad_low.wordcount_throughput(window_s),
            naiad_high.wordcount_throughput(window_s),
        ))
    return rows


def test_fig8_window_sweep(benchmark):
    rows = benchmark(compute_figure)
    print_figure(
        "Fig. 8: wordcount throughput vs window size",
        ["window (ms)", "SDG", "Streaming Spark", "Naiad-Low",
         "Naiad-High"],
        rows,
    )
    by_window = {row[0]: row for row in rows}

    # Only SDG and Naiad-Low sustain every window size.
    for window_ms, _sdg, spark, low, high in rows:
        assert _sdg > 0
        assert low > 0
    # SDG throughput above Naiad-Low (scheduling overhead).
    for row in rows:
        assert row[1] > row[3]
    # Streaming Spark collapses below 250 ms...
    assert by_window[100][2] == 0
    assert by_window[50][2] == 0
    # ...but is comparable to SDG at large windows.
    assert by_window[10_000][2] > by_window[10_000][1] * 0.8
    # Naiad-High tops the chart at large windows yet dies below 100 ms.
    assert by_window[10_000][4] == max(by_window[10_000][1:])
    assert by_window[50][4] == 0


def test_fig8_counts_invariant_to_window(benchmark):
    """Functional check: windows partition time, never drop updates."""

    def run():
        totals = {}
        for window in (10, 1000):
            runtime = Runtime(
                build_wordcount_sdg(window_size=window),
                RuntimeConfig(se_instances={"counts": 4}),
            ).deploy()
            for item in TextWorkload(vocabulary=50, seed=5).lines(100):
                runtime.inject("split", item)
            runtime.run_until_idle()
            total = 0
            for inst in runtime.se_instances("counts"):
                total += sum(v for _k, v in inst.element.items())
            totals[window] = total
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 8 mechanism: total counted words per window size",
        ["window", "total counts"],
        list(totals.items()),
    )
    assert totals[10] == totals[1000]

"""Tests for the execution-substrate layer.

The substrate contract is behavioural equivalence: for the same
injected inputs, every substrate must produce the same final SE state
(the cross-substrate differential tests assert it via the durability
layer's partition-independent ``state_fingerprint``) and the same
terminal results. On top of that, this file covers the multiprocess
specifics: wire backpressure under a bounded in-flight window, crash
propagation, barrier metrics merging, the payload-isolation capability
flag, and the deploy-time configuration gates.
"""

import time

import pytest

from repro.apps.wordcount import build_wordcount_sdg
from repro.core import SDG
from repro.core.elements import AccessMode, StateKind
from repro.durability.manifest import state_fingerprint
from repro.errors import RuntimeExecutionError
from repro.runtime import (
    InProcessSubstrate,
    Runtime,
    RuntimeConfig,
    SUBSTRATES,
    resolve_substrate,
)
from repro.runtime.envelope import WIRE_EDGE
from repro.runtime.multiprocess import MultiprocessSubstrate
from repro.state import KeyValueMap
from repro.testing import build_iterative_sdg, build_kv_sdg


def run_kv(substrate, workers=None, puts=120, gets=13, partitions=4,
           **knobs):
    """A fixed KV workload; returns (processed, fingerprint, results)."""
    config = RuntimeConfig(se_instances={"table": partitions},
                           substrate=substrate, workers=workers, **knobs)
    runtime = Runtime(build_kv_sdg(), config).deploy()
    try:
        for i in range(puts):
            runtime.inject("serve", ("put", f"k{i % 17}", i))
        for i in range(gets):
            runtime.inject("serve", ("get", f"k{i}", None))
        processed = runtime.run_until_idle()
        fingerprint = state_fingerprint(runtime)
        results = {te: sorted(map(repr, items))
                   for te, items in runtime.results.items()}
    finally:
        runtime.close()
    return processed, fingerprint, results


def run_wordcount(substrate, workers=None, lines=80, partitions=4):
    config = RuntimeConfig(se_instances={"counts": partitions},
                           substrate=substrate, workers=workers)
    runtime = Runtime(build_wordcount_sdg(), config).deploy()
    try:
        text = ["the quick brown fox", "jumps over the lazy dog",
                "the fox", "dog days of state"]
        for i in range(lines):
            runtime.inject("split", (i, text[i % len(text)]))
        processed = runtime.run_until_idle()
        fingerprint = state_fingerprint(runtime)
        results = {te: sorted(map(repr, items))
                   for te, items in runtime.results.items()}
    finally:
        runtime.close()
    return processed, fingerprint, results


class TestCrossSubstrateDifferential:
    """Same inputs => same merged final state, on either substrate."""

    def test_kvstore_state_and_results_identical(self):
        inproc = run_kv("inprocess")
        multi = run_kv("multiprocess", workers=3)
        assert multi == inproc

    def test_wordcount_state_and_results_identical(self):
        inproc = run_wordcount("inprocess")
        multi = run_wordcount("multiprocess", workers=4)
        assert multi == inproc

    def test_iterative_loop_crosses_workers(self):
        # stepA -> stepB -> stepA keyed ping-pong: with one partition
        # per worker every hop crosses the wire through the coordinator.
        def run(substrate, workers=None):
            config = RuntimeConfig(
                se_instances={"modelA": 2, "modelB": 2},
                substrate=substrate, workers=workers,
            )
            runtime = Runtime(build_iterative_sdg(), config).deploy()
            try:
                for n in (5, 8, 3):
                    runtime.inject("stepA", n)
                processed = runtime.run_until_idle()
                fingerprint = state_fingerprint(runtime)
            finally:
                runtime.close()
            return processed, fingerprint

        assert run("multiprocess", workers=2) == run("inprocess")

    def test_more_workers_than_nodes(self):
        # Extra workers simply own nothing; correctness is unchanged.
        inproc = run_kv("inprocess", partitions=2)
        multi = run_kv("multiprocess", workers=6, partitions=2)
        assert multi == inproc

    def test_repeated_runs_accumulate_consistently(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            runtime.inject("serve", ("put", "a", 1))
            first = runtime.run_until_idle()
            runtime.inject("serve", ("put", "b", 2))
            runtime.inject("serve", ("get", "a", None))
            second = runtime.run_until_idle()
            merged = {}
            for inst in runtime.se_instances("table"):
                merged.update(dict(inst.element.items()))
        finally:
            runtime.close()
        assert (first, second) == (1, 2)
        assert merged == {"a": 1, "b": 2}
        assert ("a", 1) in runtime.results["serve"]


class TestWireBackpressure:
    """Satellite: blocked_channels() under a bounded in-flight window."""

    def test_burst_blocks_then_drains_without_loss(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2,
                               channel_capacity=8)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            # The coordinator never pumps during injection, so its
            # consumed counters stay at the hello handshake: a burst
            # beyond capacity deterministically reports wire
            # backpressure towards every loaded worker.
            n = 100
            for i in range(n):
                runtime.inject("serve", ("put", f"k{i}", i))
            blocked = runtime.blocked_channels()
            assert blocked, "burst past capacity must report blocking"
            assert {c.edge_index for c in blocked} == {WIRE_EDGE}
            assert all(c.dst_te == "__worker__" for c in blocked)
            # The producer observes blocking, yet delivery never drops:
            # the drain completes (no deadlock) and every envelope
            # reaches its partition (no loss).
            processed = runtime.run_until_idle()
            assert processed == n
            assert runtime.blocked_channels() == []
            merged = {}
            for inst in runtime.se_instances("table"):
                merged.update(dict(inst.element.items()))
            assert merged == {f"k{i}": i for i in range(n)}
        finally:
            runtime.close()

    def test_unbounded_wire_never_reports(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            for i in range(50):
                runtime.inject("serve", ("put", f"k{i}", i))
            assert runtime.blocked_channels() == []
            runtime.run_until_idle()
        finally:
            runtime.close()


class TestMultiprocessLifecycle:
    def test_worker_crash_propagates_with_traceback(self):
        sdg = SDG("crashy")
        sdg.add_state("table", KeyValueMap, kind=StateKind.PARTITIONED,
                      partition_by="key")

        def serve(ctx, request):
            op, key, value = request
            if key == "boom":
                raise ValueError("injected task failure")
            ctx.state.put(key, value)

        sdg.add_task("serve", serve, state="table",
                     access=AccessMode.PARTITIONED, is_entry=True,
                     entry_key_fn=lambda r: r[1], entry_key_name="key")
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(sdg, config).deploy()
        try:
            runtime.inject("serve", ("put", "ok", 1))
            runtime.inject("serve", ("put", "boom", 2))
            with pytest.raises(RuntimeExecutionError, match="crashed"):
                runtime.run_until_idle()
        finally:
            runtime.close()

    def test_close_is_idempotent_and_reaps_workers(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        substrate = runtime.substrate
        links = list(substrate._links)
        runtime.inject("serve", ("put", "a", 1))
        runtime.run_until_idle()
        runtime.close()
        runtime.close()
        assert substrate._links == []
        for link in links:
            assert not link.process.is_alive()

    def test_merged_metrics_match_inprocess_totals(self):
        def processed_series(substrate, workers=None):
            config = RuntimeConfig(se_instances={"table": 2},
                                   substrate=substrate, workers=workers)
            runtime = Runtime(build_kv_sdg(), config).deploy()
            try:
                for i in range(40):
                    runtime.inject("serve", ("put", f"k{i}", i))
                runtime.run_until_idle()
                snap = runtime.merged_metrics().snapshot()
            finally:
                runtime.close()
            return snap["engine_items_processed_total"]["children"]

        assert processed_series("multiprocess", workers=2) \
            == processed_series("inprocess")

    def test_run_returns_processed_delta_per_barrier(self):
        _, _, _ = run_kv("multiprocess", workers=2, puts=30, gets=0)
        processed, _, _ = run_kv("inprocess", puts=30, gets=0)
        assert processed == 30


class TestPayloadIsolation:
    """Satellite: the serialisation boundary replaces the deepcopy."""

    def test_inprocess_copy_payloads_still_deepcopies(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               copy_payloads=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        assert runtime.transport.payload_isolated is False
        payload = {"mutable": []}
        assert runtime.transport.prepare_payload(payload) is not payload

    def test_multiprocess_coordinator_skips_the_deepcopy(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               copy_payloads=True,
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            assert runtime.substrate.isolates_payloads is True
            assert runtime.transport.payload_isolated is True
            payload = {"mutable": []}
            # The wire codec is the isolation: no defensive copy.
            assert runtime.transport.prepare_payload(payload) is payload
            copies = runtime.metrics.snapshot()[
                "transport_payload_copies_total"]["children"]
            assert all(v == 0 for v in copies.values())
        finally:
            runtime.close()

    def test_mutating_consumer_cannot_corrupt_producer_payload(self):
        # End to end: a consumer that mutates its input must never be
        # observable by the injector, on either isolation mechanism.
        sdg = SDG("mutate")
        sdg.add_state("seen", KeyValueMap, kind=StateKind.PARTITIONED,
                      partition_by="key")

        def absorb(ctx, item):
            key, values = item
            values.append("consumer-was-here")
            ctx.state.put(key, list(values))

        sdg.add_task("absorb", absorb, state="seen",
                     access=AccessMode.PARTITIONED, is_entry=True,
                     entry_key_fn=lambda item: item[0],
                     entry_key_name="key")
        for substrate, workers in (("inprocess", None),
                                   ("multiprocess", 2)):
            config = RuntimeConfig(se_instances={"seen": 2},
                                   copy_payloads=True,
                                   substrate=substrate, workers=workers)
            runtime = Runtime(sdg, config).deploy()
            try:
                original = ["pristine"]
                runtime.inject("absorb", ("k", original))
                runtime.run_until_idle()
                assert original == ["pristine"], substrate
            finally:
                runtime.close()


class TestResolutionAndGates:
    def test_default_substrate_is_inprocess(self):
        runtime = Runtime(build_kv_sdg()).deploy()
        assert isinstance(runtime.substrate, InProcessSubstrate)
        assert runtime.substrate.name == "inprocess"

    def test_registry_names(self):
        assert SUBSTRATES == ("inprocess", "multiprocess")
        config = RuntimeConfig(workers=3, substrate="multiprocess")
        resolved = resolve_substrate("multiprocess", config)
        assert isinstance(resolved, MultiprocessSubstrate)
        assert resolved.workers == 3

    def test_workers_default_to_two(self):
        config = RuntimeConfig(substrate="multiprocess")
        assert resolve_substrate("multiprocess", config).workers == 2

    def test_unknown_substrate_fails_at_deploy(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(substrate="threads"))
        with pytest.raises(RuntimeExecutionError,
                           match="unknown substrate"):
            runtime.deploy()

    def test_custom_substrate_object_passthrough(self):
        substrate = InProcessSubstrate()
        config = RuntimeConfig(substrate=substrate)
        assert resolve_substrate(substrate, config) is substrate

    def test_non_substrate_object_rejected(self):
        with pytest.raises(RuntimeExecutionError, match="protocol"):
            resolve_substrate(42, RuntimeConfig())

    def test_workers_require_multiprocess(self):
        runtime = Runtime(build_kv_sdg(), RuntimeConfig(workers=2))
        with pytest.raises(RuntimeExecutionError,
                           match="substrate='multiprocess'"):
            runtime.deploy()

    def test_bad_worker_count_rejected(self):
        config = RuntimeConfig(substrate="multiprocess", workers=0)
        with pytest.raises(RuntimeExecutionError, match="workers"):
            config.validate(build_kv_sdg())

    def test_auto_scale_requires_inprocess(self):
        config = RuntimeConfig(substrate="multiprocess",
                               auto_scale=True)
        with pytest.raises(RuntimeExecutionError, match="auto_scale"):
            config.validate(build_kv_sdg())

    def test_trace_deploys_on_multiprocess(self):
        # The trace gate is gone: workers record hops locally and the
        # coordinator merges their shards (see test_multiprocess_obs).
        config = RuntimeConfig(substrate="multiprocess", workers=2,
                               trace=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            runtime.inject("serve", ("put", "k", 1))
            runtime.run_until_idle()
            assert runtime.tracer is not None
        finally:
            runtime.close()

    def test_worker_restarts_require_multiprocess(self):
        config = RuntimeConfig(worker_restarts=1)
        with pytest.raises(RuntimeExecutionError,
                           match="worker_restarts"):
            config.validate(build_kv_sdg())

    def test_bad_flight_recorder_capacity_rejected(self):
        config = RuntimeConfig(flight_recorder=-1)
        with pytest.raises(RuntimeExecutionError,
                           match="flight_recorder"):
            config.validate(build_kv_sdg())


class TestParallelSpeedupSmoke:
    """A scaled-down twin of the fig7 parallel benchmark: overlapping
    per-item service latency across workers must beat one worker."""

    @staticmethod
    def build_slow_kv(delay):
        sdg = SDG("slowkv")
        sdg.add_state("table", KeyValueMap,
                      kind=StateKind.PARTITIONED, partition_by="key")

        def serve(ctx, request):
            op, key, value = request
            time.sleep(delay)
            ctx.state.put(key, value)

        sdg.add_task("serve", serve, state="table",
                     access=AccessMode.PARTITIONED, is_entry=True,
                     entry_key_fn=lambda r: r[1], entry_key_name="key")
        return sdg

    def run(self, workers, items=120, delay=0.002):
        config = RuntimeConfig(se_instances={"table": 4},
                               substrate="multiprocess",
                               workers=workers)
        runtime = Runtime(self.build_slow_kv(delay), config).deploy()
        try:
            start = time.perf_counter()
            for i in range(items):
                runtime.inject("serve", ("put", f"k{i}", i))
            runtime.run_until_idle()
            wall = time.perf_counter() - start
            fingerprint = state_fingerprint(runtime)
        finally:
            runtime.close()
        return wall, fingerprint

    def test_four_workers_overlap_service_latency(self):
        wall_1, fp_1 = self.run(1)
        wall_4, fp_4 = self.run(4)
        assert fp_1 == fp_4
        # Loose bound for CI noise; the benchmark asserts the real 1.5x.
        assert wall_4 < wall_1

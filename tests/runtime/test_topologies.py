"""Runtime tests for non-trivial dataflow topologies."""

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap


class TestDiamond:
    """a fans out to b and c; both feed d."""

    def build(self):
        sdg = SDG("diamond")
        sdg.add_task("a", lambda ctx, x: x, is_entry=True)
        sdg.add_task("b", lambda ctx, x: ("b", x))
        sdg.add_task("c", lambda ctx, x: ("c", x))
        sdg.add_task("d", lambda ctx, pair: pair)
        sdg.connect("a", "b")
        sdg.connect("a", "c")
        sdg.connect("b", "d")
        sdg.connect("c", "d")
        return sdg

    def test_each_item_travels_both_paths(self):
        runtime = Runtime(self.build()).deploy()
        runtime.inject("a", 1)
        runtime.inject("a", 2)
        runtime.run_until_idle()
        assert sorted(runtime.results["d"]) == [
            ("b", 1), ("b", 2), ("c", 1), ("c", 2),
        ]


class TestParallelEdges:
    """Two distinct dataflow edges between the same TE pair."""

    def test_item_delivered_once_per_edge(self):
        sdg = SDG("parallel")
        sdg.add_task("src", lambda ctx, x: x, is_entry=True)
        sdg.add_task("sink", lambda ctx, x: x)
        sdg.connect("src", "sink")
        sdg.connect("src", "sink")
        runtime = Runtime(sdg).deploy()
        runtime.inject("src", "item")
        runtime.run_until_idle()
        assert runtime.results["sink"] == ["item", "item"]


class TestFanIn:
    """Two entry TEs feed one downstream stateful TE."""

    def build(self):
        sdg = SDG("fanin")
        sdg.add_state("store", KeyValueMap, kind=StateKind.PARTITIONED)
        sdg.add_task("writes", lambda ctx, kv: kv, is_entry=True)
        sdg.add_task("deletes", lambda ctx, k: (k, None), is_entry=True)

        def apply(ctx, item):
            key, value = item
            if value is None:
                if ctx.state.contains(key):
                    ctx.state.delete(key)
            else:
                ctx.state.put(key, value)

        sdg.add_task("apply", apply, state="store",
                     access=AccessMode.PARTITIONED)
        sdg.connect("writes", "apply", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda kv: kv[0], key_name="key")
        sdg.connect("deletes", "apply", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda kv: kv[0], key_name="key")
        return sdg

    def test_streams_merge_at_consumer(self):
        runtime = Runtime(self.build(),
                          RuntimeConfig(se_instances={"store": 3}))
        runtime.deploy()
        for i in range(20):
            runtime.inject("writes", (i, i * 10))
        runtime.run_until_idle()
        for i in range(0, 20, 2):
            runtime.inject("deletes", i)
        runtime.run_until_idle()
        remaining = {}
        for inst in runtime.se_instances("store"):
            remaining.update(dict(inst.element.items()))
        assert remaining == {i: i * 10 for i in range(1, 20, 2)}


class TestStatelessParallelism:
    def test_configured_instances_round_robin(self):
        sdg = SDG("stateless")
        sdg.add_task("src", lambda ctx, x: x, is_entry=True)

        def tag(ctx, x):
            return (ctx.instance_id, x)

        sdg.add_task("worker", tag)
        sdg.connect("src", "worker", Dispatch.ONE_TO_ANY)
        runtime = Runtime(sdg, RuntimeConfig(te_instances={"worker": 3}))
        runtime.deploy()
        for i in range(9):
            runtime.inject("src", i)
        runtime.run_until_idle()
        per_instance = {}
        for instance_id, _x in runtime.results["worker"]:
            per_instance[instance_id] = per_instance.get(instance_id,
                                                         0) + 1
        assert per_instance == {0: 3, 1: 3, 2: 3}

    def test_ctx_reports_instance_count(self):
        sdg = SDG("counts")

        def report(ctx, x):
            return ctx.n_instances

        sdg.add_task("t", report, is_entry=True)
        runtime = Runtime(sdg, RuntimeConfig(te_instances={"t": 4}))
        runtime.deploy()
        runtime.inject("t", None)
        runtime.run_until_idle()
        assert runtime.results["t"] == [4]


class TestKeyedCycle:
    """A cycle whose loop edge is key-partitioned (iterative keyed work)."""

    def build(self):
        sdg = SDG("keyed_loop")
        sdg.add_state("progress", KeyValueMap, kind=StateKind.PARTITIONED)

        def step(ctx, item):
            key, remaining = item
            ctx.state.increment(key)
            if remaining > 1:
                return (key, remaining - 1)
            return None

        sdg.add_task("step", step, state="progress",
                     access=AccessMode.PARTITIONED, is_entry=True,
                     entry_key_fn=lambda item: item[0], entry_key_name="k")
        sdg.connect("step", "step", Dispatch.KEY_PARTITIONED,
                    key_fn=lambda item: item[0], key_name="k")
        return sdg

    def test_loop_counts_to_n_per_key(self):
        runtime = Runtime(self.build(),
                          RuntimeConfig(se_instances={"progress": 2}))
        runtime.deploy()
        runtime.inject("step", ("a", 5))
        runtime.inject("step", ("b", 3))
        runtime.run_until_idle()
        counts = {}
        for inst in runtime.se_instances("progress"):
            counts.update(dict(inst.element.items()))
        assert counts == {"a": 5, "b": 3}


class TestDeepPipeline:
    def test_twenty_stage_pipeline(self):
        sdg = SDG("deep")
        n = 20
        for i in range(n):
            sdg.add_task(f"s{i}", lambda ctx, x: x + 1,
                         is_entry=(i == 0))
        for i in range(n - 1):
            sdg.connect(f"s{i}", f"s{i+1}")
        runtime = Runtime(sdg).deploy()
        runtime.inject("s0", 0)
        runtime.run_until_idle()
        assert runtime.results[f"s{n-1}"] == [n]

    def test_pipelining_interleaves_items(self):
        """Items flow through stages without per-stage batching: the
        second item starts before the first one finishes."""
        order = []
        sdg = SDG("interleave")

        def make(stage):
            def fn(ctx, x):
                order.append((stage, x))
                return x

            return fn

        sdg.add_task("s0", make(0), is_entry=True)
        sdg.add_task("s1", make(1))
        sdg.connect("s0", "s1")
        runtime = Runtime(sdg).deploy()
        runtime.inject("s0", "a")
        runtime.inject("s0", "b")
        runtime.run_until_idle()
        # 'a' reaches stage 1 before 'b' has been processed by stage 0.
        assert order.index((1, "a")) < order.index((0, "b"))

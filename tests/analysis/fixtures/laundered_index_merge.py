"""SDG302 (regression): positional pick laundered through a call.

Sorting the gathered collection before indexing it looks principled,
but with a key that doesn't totally order the values the tie-break is
the input order — the arbitrary gather order — so the pick is still
order-sensitive. The pass originally only caught direct
``all_scores[0]`` indexing; this fixture pins indexing of a *call
over* the collection.
"""

from repro.annotations import Partial, Partitioned, collection, entry, global_
from repro.program import SDGProgram
from repro.state import Matrix


class LaunderedIndexMerge(SDGProgram):
    """Order-dependent merge hiding behind a sorted() transform."""

    ratings = Partitioned(Matrix, key="user")
    co_occ = Partial(Matrix)

    @entry
    def recommend(self, user):
        row = self.ratings.get_row(user)
        scores = global_(self.co_occ).multiply(row)
        best = self.top_pick(collection(scores))
        return best

    def top_pick(self, all_scores):
        return sorted(all_scores, key=lambda s: s.shape())[0]

"""Throughput models for batched vs pipelined execution (Figs. 8, 9).

Batched dataflows (Streaming Spark, Naiad with large batches) amortise
a per-batch scheduling/coordination overhead across the batch; pipelined
dataflows (SDGs) pay a small per-item cost and no scheduling delay. The
resulting trade-off is the paper's Fig. 8: micro-batch systems post the
highest peak throughput at large windows but *collapse* once the window
is smaller than their scheduling granularity, while the pipelined SDG
sustains every window size.

The scale-out model behind Fig. 9 applies the same idea per iteration:
Spark re-instantiates its tasks every iteration (a per-iteration
scheduling cost), whereas the materialised SDG keeps its pipeline warm.
"""

from __future__ import annotations

from repro.errors import SimulationError


def pipelined_throughput(
    service_rate: float,
    per_item_overhead_s: float = 0.0,
) -> float:
    """Sustainable items/s of a fully pipelined (materialised) system."""
    if service_rate <= 0:
        raise SimulationError("service rate must be positive")
    per_item = 1.0 / service_rate + per_item_overhead_s
    return 1.0 / per_item


def microbatch_throughput(
    service_rate: float,
    batch_size: float,
    scheduling_overhead_s: float,
) -> float:
    """Sustainable items/s of a micro-batched system.

    Each batch costs ``batch_size / service_rate`` of processing plus a
    fixed scheduling delay; throughput is the batch divided by its total
    cost. Larger batches amortise the overhead (higher peak), smaller
    batches expose it.
    """
    if batch_size <= 0:
        raise SimulationError("batch size must be positive")
    batch_time = batch_size / service_rate + scheduling_overhead_s
    return batch_size / batch_time


def sustainable(
    window_s: float,
    batch_size: float,
    service_rate: float,
    scheduling_overhead_s: float,
) -> bool:
    """Whether a batched system can honour a result window of ``window_s``.

    A window is sustainable when a full batch (processing + scheduling)
    completes within it; below that, results lag further behind every
    window and throughput collapses (the cliffs in Fig. 8).
    """
    if window_s <= 0:
        raise SimulationError("window must be positive")
    batch_time = batch_size / service_rate + scheduling_overhead_s
    return batch_time <= window_s


def scaling_throughput(
    n_nodes: int,
    per_node_rate: float,
    per_iteration_overhead_s: float = 0.0,
    iteration_data_per_node: float = 1.0,
    coordination_cost_s_per_node: float = 0.0,
) -> float:
    """Aggregate throughput of an iterative batch job on ``n_nodes``.

    Each iteration processes ``iteration_data_per_node`` units per node
    in ``iteration_data_per_node / per_node_rate`` seconds, plus a fixed
    per-iteration overhead (task re-instantiation — zero for a
    materialised SDG) plus any coordination that grows with the cluster.
    """
    if n_nodes < 1:
        raise SimulationError("need at least one node")
    work_time = iteration_data_per_node / per_node_rate
    iteration_time = (
        work_time
        + per_iteration_overhead_s
        + coordination_cost_s_per_node * n_nodes
    )
    data_per_iteration = iteration_data_per_node * n_nodes
    return data_per_iteration / iteration_time

"""Netflix-style ratings workload for collaborative filtering (§6.1).

Generates an online mix of ``add_rating`` and ``get_rec`` operations
with Zipf-skewed user and item popularity, parameterised by the
read/write ratio that Fig. 5 sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class RatingOp:
    """One CF operation: a rating write or a recommendation read."""

    kind: str  # "add_rating" | "get_rec"
    user: int
    item: int | None = None
    rating: int | None = None


class RatingsWorkload:
    """A deterministic stream of CF operations."""

    def __init__(self, n_users: int = 1000, n_items: int = 500,
                 read_fraction: float = 0.2, skew: float = 0.8,
                 seed: int = 42) -> None:
        if not 0 <= read_fraction <= 1:
            raise ValueError("read_fraction must be in [0, 1]")
        self.n_users = n_users
        self.n_items = n_items
        self.read_fraction = read_fraction
        self._users = ZipfSampler(n_users, s=skew, seed=seed)
        self._items = ZipfSampler(n_items, s=skew, seed=seed + 1)
        self._rng = random.Random(seed + 2)

    def ops(self, count: int) -> Iterator[RatingOp]:
        """Generate ``count`` operations at the configured mix."""
        for _ in range(count):
            user = self._users.sample()
            if self._rng.random() < self.read_fraction:
                yield RatingOp(kind="get_rec", user=user)
            else:
                yield RatingOp(
                    kind="add_rating", user=user,
                    item=self._items.sample(),
                    rating=self._rng.randint(1, 5),
                )

    def apply_to(self, app, count: int) -> tuple[int, int]:
        """Drive a :class:`~repro.program.BoundProgram` CF instance.

        Returns ``(writes, reads)`` issued.
        """
        writes = reads = 0
        for op in self.ops(count):
            if op.kind == "add_rating":
                app.add_rating(op.user, op.item, op.rating)
                writes += 1
            else:
                app.get_rec(op.user)
                reads += 1
        return writes, reads

"""Unit tests for metric collection."""

import pytest

from repro.simulation.metrics import (
    LatencyRecorder,
    candlestick,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_sample(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCandlestick:
    def test_five_points_ordered(self):
        stick = candlestick(list(range(100)))
        values = stick.as_tuple()
        assert values == tuple(sorted(values))
        assert stick.p50 == pytest.approx(49.5)

    def test_matches_paper_percentiles(self):
        data = list(range(1, 101))
        stick = candlestick(data)
        assert stick.p5 == pytest.approx(percentile(data, 5))
        assert stick.p95 == pytest.approx(percentile(data, 95))


class TestLatencyRecorder:
    def test_record_and_summarise(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert len(recorder) == 3
        assert recorder.mean() == pytest.approx(2.0)
        assert recorder.percentile(50) == 2.0

    def test_weighted_record(self):
        recorder = LatencyRecorder()
        recorder.record(1.0, weight=9)
        recorder.record(100.0, weight=1)
        assert recorder.percentile(50) == 1.0
        assert recorder.percentile(95) > 1.0

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()

"""The wire layer: length-prefixed pickle frames over OS pipes.

The :class:`~repro.runtime.multiprocess.MultiprocessSubstrate` connects
shared-nothing worker processes to the coordinating process with plain
``os.pipe()`` descriptors. Everything that crosses a process boundary —
envelopes, control-plane messages, state snapshots, metrics shards —
travels as a *frame*: a 4-byte big-endian length prefix followed by a
pickle of the message object.

The codec is deliberately explicit (rather than relying on
``multiprocessing``'s internal connection machinery) so that the
serialisation contract is testable on its own: ``tests/runtime/
test_wire.py`` round-trips every message class the substrate ships —
:class:`~repro.runtime.envelope.Envelope`, the ``NO_RESPONSE`` gather
sentinel, :class:`~repro.state.base.DeltaChunk`, chaos fault dicts —
so a future ``__slots__`` or dataclass refactor cannot silently break
the multiprocess path.

Framing supports two consumption styles:

* **blocking** (worker side): :func:`read_frame` / :func:`write_frame`
  over a raw file descriptor, reading exactly one frame;
* **non-blocking** (coordinator side): a :class:`FrameBuffer` is fed
  whatever bytes ``os.read`` returned and yields each completed frame,
  so a ``selectors``-driven event loop never blocks on a half-read
  message.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import Any, Iterator

from repro.errors import RuntimeExecutionError

#: Frame header: payload length as a 4-byte big-endian unsigned int.
FRAME_HEADER = struct.Struct(">I")

#: Refuse frames above this size — a corrupt header otherwise turns
#: into a multi-gigabyte allocation before anything notices.
MAX_FRAME_BYTES = 1 << 30


class WireError(RuntimeExecutionError):
    """Raised on a malformed frame or an unexpectedly closed pipe."""


def encode_frame(message: Any) -> bytes:
    """Serialise ``message`` into one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Any:
    """Deserialise the payload bytes of one frame (prefix stripped)."""
    return pickle.loads(payload)


class FrameBuffer:
    """Incremental frame parser for non-blocking reads.

    Feed it whatever ``os.read`` produced; it accumulates bytes and
    yields each message whose frame has completely arrived. Partial
    frames stay buffered until the next feed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[Any]:
        """Absorb ``data``; yield every now-complete message."""
        self._buffer.extend(data)
        while True:
            if len(self._buffer) < FRAME_HEADER.size:
                return
            (length,) = FRAME_HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(
                    f"frame header announces {length} bytes, over the "
                    f"{MAX_FRAME_BYTES}-byte bound (corrupt stream?)"
                )
            end = FRAME_HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[FRAME_HEADER.size:end])
            del self._buffer[:end]
            yield decode_frame(payload)

    def pending_bytes(self) -> int:
        """Bytes buffered towards a not-yet-complete frame."""
        return len(self._buffer)


def _read_exact(fd: int, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking fd; raise on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            raise EOFError(
                f"pipe closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(fd: int) -> Any:
    """Blockingly read one complete frame from ``fd``.

    Raises :class:`EOFError` when the peer closed the pipe at a frame
    boundary (clean shutdown) or mid-frame (crash).
    """
    header = b""
    while len(header) < FRAME_HEADER.size:
        chunk = os.read(fd, FRAME_HEADER.size - len(header))
        if not chunk:
            if header:
                raise EOFError("pipe closed mid-header")
            raise EOFError("pipe closed")
        header += chunk
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(
            f"frame header announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte bound (corrupt stream?)"
        )
    return decode_frame(_read_exact(fd, length))


def write_bytes(fd: int, data: bytes) -> None:
    """Blockingly write pre-encoded frame bytes (handles short writes).

    Split out from :func:`write_frame` so callers that meter the wire
    (frame/byte counters, serialize timers) can encode first, measure,
    then ship.
    """
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def write_frame(fd: int, message: Any) -> None:
    """Blockingly write one frame to ``fd`` (handles short writes)."""
    write_bytes(fd, encode_frame(message))


# ----------------------------------------------------------------------
# Control-plane message kinds
# ----------------------------------------------------------------------
#
# Every frame is a tuple whose first element is one of these tags. The
# coordinator speaks MSG_HELLO/MSG_DELIVER/MSG_SNAPSHOT/MSG_SHUTDOWN;
# workers answer with MSG_OUT/MSG_IDLE/MSG_TRACE/MSG_STATE/MSG_CRASH.
# Structural actions (scale-out, repartition, checkpoint) are
# control-plane messages by design: MSG_SNAPSHOT is the first of them,
# and the tags reserve the vocabulary for the follow-ups.
#
# Telemetry rides the same pipes: idle reports piggyback metric and
# profile shards, MSG_TRACE ships causal-trace hops, and crash frames
# carry the worker's flight-recorder dump — no side channels.

#: coordinator -> worker: bootstrap (worker id, placement, successor
#: index digest, capability flags); the worker verifies it against its
#: own forked view before serving traffic.
MSG_HELLO = "hello"
#: coordinator -> worker: one envelope to enqueue locally.
MSG_DELIVER = "deliver"
#: coordinator -> worker: ship back SE state, results, metrics shard.
MSG_SNAPSHOT = "snapshot"
#: coordinator -> worker: exit the worker loop.
MSG_SHUTDOWN = "shutdown"

#: worker -> coordinator: an envelope whose destination lives elsewhere.
MSG_OUT = "out"
#: worker -> coordinator: progress report — ``(tag, consumed, emitted,
#: processed, obs)`` where the cumulative counters double as the
#: quiescence signal and ``obs`` is either ``None`` or a dict of
#: telemetry shards (``{"metrics": snapshot, "profile": snapshot}``)
#: piggybacked so the coordinator's merged view stays fresh between
#: barriers. Workers only attach ``obs`` when it changed since the
#: last report.
MSG_IDLE = "idle"
#: worker -> coordinator: ``(tag, [(trace_id, Hop), ...])`` — causal
#: trace hops recorded since the last drain. Pure telemetry: never
#: counted in the consumed/emitted quiescence arithmetic.
MSG_TRACE = "trace"
#: worker -> coordinator: snapshot reply (SE elements, results, metrics
#: shard; plus drained trace hops and the profile shard when enabled).
MSG_STATE = "state"
#: worker -> coordinator: the worker loop died — ``(tag, traceback,
#: extra)`` where ``extra`` carries the worker id, step count and the
#: flight-recorder dump. Older two-element frames (no ``extra``) are
#: still accepted.
MSG_CRASH = "crash"

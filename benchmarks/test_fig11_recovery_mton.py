"""Fig. 11 — recovery time under m-to-n strategies and state sizes.

The paper kills the KV-store node and restores 1/2/4 GB of state with
1-to-1, 2-to-1, 1-to-2 and 2-to-2 strategies. Expected shape:

* 2-to-2 fastest, 1-to-1 slowest at every size;
* recovery completes in seconds even at 4 GB;
* at large state, reconstruction dominates disk reads: adding a second
  backup disk (m) helps little, adding a second recovering node (n)
  still helps a lot.

The second part runs the *real* m-to-n machinery: checkpoint to a
chunked store, kill the node, restore to n fresh nodes, and verify
the amount of state each recovering node had to reconstruct halves
when n doubles.
"""

from conftest import print_figure

from repro.recovery import BackupStore, CheckpointManager, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig
from repro.simulation import recovery_time

from repro.testing import build_kv_sdg

STATE_GB = [1, 2, 4]
STRATEGIES = [(1, 1), (2, 1), (1, 2), (2, 2)]


def compute_figure():
    rows = []
    for gb in STATE_GB:
        times = [recovery_time(gb * 1e9, m, n) for m, n in STRATEGIES]
        rows.append((gb, *times))
    return rows


def test_fig11_recovery_times(benchmark):
    rows = benchmark(compute_figure)
    print_figure(
        "Fig. 11: recovery time (s) by m-to-n strategy",
        ["state (GB)", "1-to-1", "2-to-1", "1-to-2", "2-to-2"],
        rows,
    )
    for gb, t11, t21, t12, t22 in rows:
        # 2-to-2 fastest; 1-to-1 slowest.
        assert t22 <= min(t21, t12)
        assert t11 >= max(t21, t12)
        # "Recovering in seconds."
        assert t11 < 60
    # Recovery grows with state size for every strategy.
    for column in range(1, 5):
        series = [row[column] for row in rows]
        assert series == sorted(series)
    # At 4 GB reconstruction dominates: n helps more than m.
    _gb, t11, t21, t12, _t22 = rows[-1]
    assert (t11 - t12) > (t11 - t21)


def test_fig11_real_mton_restore(benchmark):
    """Drive the real chunked-backup restore path at n in {1, 2}."""

    def run():
        outcomes = {}
        for n_new in (1, 2):
            runtime = Runtime(
                build_kv_sdg(), RuntimeConfig(se_instances={"table": 1})
            ).deploy()
            store = BackupStore(m_targets=2)
            ckpt = CheckpointManager(runtime, store)
            rec = RecoveryManager(runtime, store)
            for i in range(400):
                runtime.inject("serve", ("put", i, i))
            runtime.run_until_idle()
            node = runtime.se_instance("table", 0).node_id
            ckpt.checkpoint(node)
            runtime.fail_node(node)
            nodes = rec.recover_node(node, n_new=n_new)
            runtime.run_until_idle()
            per_node_entries = [
                sum(len(se.element) for se in fresh.se_instances.values())
                for fresh in nodes
            ]
            merged = {}
            for inst in runtime.se_instances("table"):
                merged.update(dict(inst.element.items()))
            outcomes[n_new] = (max(per_node_entries),
                               len(merged) == 400)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Fig. 11 mechanism: per-node reconstruction work vs n",
        ["n (recovering nodes)", "max entries per node", "state intact"],
        [(n, entries, str(ok)) for n, (entries, ok) in outcomes.items()],
    )
    assert all(ok for _entries, ok in outcomes.values())
    # Restoring to 2 nodes roughly halves per-node reconstruction.
    assert outcomes[2][0] < outcomes[1][0] * 0.65

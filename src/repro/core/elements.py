"""Vertex and edge definitions of the SDG model (§3.1).

These are *specifications*: a logical graph description produced either
by hand (the low-level API) or by the translator. The runtime
materialises every spec into one or more physical instances (§3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.state.base import StateElement


class StateKind(enum.Enum):
    """How a state element may be distributed across nodes (§3.2)."""

    #: Disjoint partitions on separate nodes, accessed via a key.
    PARTITIONED = "partitioned"
    #: Full replicas updated independently; reconciled by a merge TE.
    PARTIAL = "partial"


class AccessMode(enum.Enum):
    """Classification of a TE's access to its state element (Fig. 3 step 3)."""

    #: The TE accesses no SE (e.g. a merge TE or a pure transformation).
    NONE = "none"
    #: Access to the single local instance (partial SEs, un-distributed SEs).
    LOCAL = "local"
    #: Keyed access to one partition of a partitioned SE.
    PARTITIONED = "partitioned"
    #: ``@Global`` access to every instance of a partial SE.
    GLOBAL = "global"


@dataclass(frozen=True)
class StateElementSpec:
    """A state element vertex.

    ``factory`` builds a fresh, empty instance of the SE's data structure;
    the runtime calls it once per SE instance (partition or partial copy)
    and again when restoring after failure.
    """

    name: str
    kind: StateKind
    factory: Callable[[], StateElement]
    #: Human-readable partitioning key (e.g. ``"user"``); documentation
    #: and validation only — routing uses the dataflow edges' key_fn.
    partition_by: str | None = None

    def __post_init__(self) -> None:
        if self.kind is StateKind.PARTITIONED and self.partition_by is None:
            object.__setattr__(self, "partition_by", "key")


class TaskContext:
    """Execution context handed to a TE function on every invocation.

    Provides access to the co-located SE instance and an ``emit`` hook for
    producing zero or more output items; a non-``None`` return value of
    the TE function is emitted as well.
    """

    __slots__ = ("state", "instance_id", "n_instances", "_outputs")

    def __init__(self, state: StateElement | None = None,
                 instance_id: int = 0, n_instances: int = 1) -> None:
        self.state = state
        self.instance_id = instance_id
        self.n_instances = n_instances
        self._outputs: list[Any] = []

    def emit(self, item: Any) -> None:
        """Queue ``item`` on the TE's outgoing dataflow."""
        self._outputs.append(item)

    def drain(self) -> list[Any]:
        """Return and clear the emitted items (runtime-internal)."""
        outputs, self._outputs = self._outputs, []
        return outputs


#: A task-element function: ``fn(ctx, item) -> output-item | None``.
TaskFn = Callable[[TaskContext, Any], Any]


@dataclass(frozen=True)
class TaskElementSpec:
    """A task element vertex.

    The access edge of §3.1 is folded into the spec: ``state`` names the
    single SE this TE may access (``A`` is a partial function — one SE per
    TE) and ``access`` classifies that access.
    """

    name: str
    fn: TaskFn
    state: str | None = None
    access: AccessMode = AccessMode.NONE
    #: Entry points receive external input (one TE per program entry).
    is_entry: bool = False
    #: Merge TEs reconcile gathered partial values (``@Collection``).
    is_merge: bool = False
    #: For entry TEs feeding a partitioned SE: how external input items
    #: are routed to instances (the paper's "new rating" flow is
    #: partitioned by ``user``). ``None`` means round-robin.
    entry_key_fn: Callable[[Any], Hashable] | None = None
    entry_key_name: str | None = None

    def __post_init__(self) -> None:
        if self.state is None and self.access not in (AccessMode.NONE,):
            raise ValueError(
                f"TE {self.name!r} declares access {self.access.value!r} "
                f"but names no state element"
            )
        if self.state is not None and self.access is AccessMode.NONE:
            raise ValueError(
                f"TE {self.name!r} names SE {self.state!r} but declares "
                f"no access mode"
            )


@dataclass(frozen=True)
class DataflowEdge:
    """A dataflow edge between two TEs, with dispatch semantics (§4.2)."""

    src: str
    dst: str
    dispatch: "Dispatch"
    #: Extracts the partitioning key from an item (KEY_PARTITIONED only).
    key_fn: Callable[[Any], Hashable] | None = None
    #: Human-readable key name for diagnostics (e.g. ``"user"``).
    key_name: str | None = None

    def __post_init__(self) -> None:
        from repro.core.dispatch import Dispatch

        if self.dispatch is Dispatch.KEY_PARTITIONED and self.key_fn is None:
            raise ValueError(
                f"dataflow {self.src}->{self.dst} is key-partitioned but "
                f"has no key_fn"
            )


# Re-exported here to avoid an import cycle in the type annotation above.
from repro.core.dispatch import Dispatch  # noqa: E402  (intentional)

"""``python -m repro`` — the py2sdg command-line tool."""

import sys

from repro.cli import main

sys.exit(main())

"""Wikipedia-style text workload for streaming wordcount (§6.1).

Generates timestamped lines whose word frequencies follow a Zipf law,
matching the statistics that matter for the update-granularity
experiment: a small hot vocabulary receiving very frequent fine-grained
counter updates, and a long tail of rare words growing the state.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workloads.zipf import ZipfSampler


class TextWorkload:
    """A deterministic stream of ``(timestamp, line)`` pairs."""

    def __init__(self, vocabulary: int = 5000, words_per_line: int = 8,
                 skew: float = 1.0, inter_arrival: int = 1,
                 seed: int = 7) -> None:
        if vocabulary < 1 or words_per_line < 1 or inter_arrival < 1:
            raise ValueError("workload parameters must be >= 1")
        self.vocabulary = vocabulary
        self.words_per_line = words_per_line
        self.inter_arrival = inter_arrival
        self._sampler = ZipfSampler(vocabulary, s=skew, seed=seed)
        self._rng = random.Random(seed + 1)

    @staticmethod
    def word(rank: int) -> str:
        return f"w{rank}"

    def lines(self, count: int) -> Iterator[tuple[int, str]]:
        """``count`` timestamped lines with Zipf-distributed words."""
        timestamp = 0
        for _ in range(count):
            words = [
                self.word(self._sampler.sample())
                for _ in range(self.words_per_line)
            ]
            yield (timestamp, " ".join(words))
            timestamp += self.inter_arrival

"""Cross-substrate observability tests for the multiprocess substrate.

The telemetry plane must be substrate-agnostic: tracing, metrics,
profiling and the flight recorder have to report the *same facts* on
the multiprocess substrate as in-process, modulo process-local logical
clocks. These are differential tests — the in-process runtime is the
oracle:

* merged causal traces are hop-equivalent (same ``(te, instance)``
  multiset per trace; worker-local step stamps are incomparable);
* :meth:`Runtime.merged_metrics` streams live between barriers via
  :meth:`Runtime.poll_telemetry`;
* a worker crash + fleet restart neither loses nor double-counts
  metrics, results or state;
* a fatal crash carries the dead worker's flight-recorder tail.
"""

import os
import time

import pytest

from repro.apps.wordcount import build_wordcount_sdg
from repro.core import SDG
from repro.core.elements import AccessMode, StateKind
from repro.durability.manifest import state_fingerprint
from repro.errors import RuntimeExecutionError
from repro.obs.events import KIND
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap
from repro.testing import build_kv_sdg


def hop_view(runtime):
    """Per-trace multiset of ``(te, instance)`` hops.

    Worker step numbers are process-local clocks, so step arithmetic
    is not comparable across substrates — *which instance served which
    traced item* is.
    """
    return {
        trace.trace_id: sorted((hop.te, hop.instance)
                               for hop in trace.hops)
        for trace in runtime.tracer.traces()
    }


def traced_kv(substrate, workers=None):
    config = RuntimeConfig(se_instances={"table": 4}, trace=True,
                           substrate=substrate, workers=workers)
    runtime = Runtime(build_kv_sdg(), config).deploy()
    try:
        for i in range(60):
            runtime.inject("serve", ("put", f"k{i % 11}", i))
        for i in range(7):
            runtime.inject("serve", ("get", f"k{i}", None))
        runtime.run_until_idle()
        return hop_view(runtime)
    finally:
        runtime.close()


def traced_wordcount(substrate, workers=None):
    config = RuntimeConfig(se_instances={"counts": 4}, trace=True,
                           substrate=substrate, workers=workers)
    runtime = Runtime(build_wordcount_sdg(), config).deploy()
    try:
        text = ["the quick brown fox", "jumps over the lazy dog",
                "the fox", "dog days of state"]
        for i in range(40):
            runtime.inject("split", (i, text[i % len(text)]))
        runtime.run_until_idle()
        return hop_view(runtime)
    finally:
        runtime.close()


class TestDistributedTracing:
    """Tentpole: merged cross-process traces == in-process traces."""

    def test_kvstore_hop_graphs_identical(self):
        assert traced_kv("multiprocess", workers=3) \
            == traced_kv("inprocess")

    def test_wordcount_fanout_hop_graphs_identical(self):
        # split -> count fan-out: each traced line hops once on split
        # and once per word on count, across the wire.
        assert traced_wordcount("multiprocess", workers=4) \
            == traced_wordcount("inprocess")

    def test_hops_carry_worker_ids(self):
        config = RuntimeConfig(se_instances={"table": 2}, trace=True,
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            for i in range(20):
                runtime.inject("serve", ("put", f"k{i}", i))
            runtime.run_until_idle()
            workers = {hop.worker for trace in runtime.tracer.traces()
                       for hop in trace.hops}
        finally:
            runtime.close()
        # Every hop was served by a real worker, never the coordinator.
        assert workers and None not in workers
        assert workers <= {0, 1}


class TestLiveMetricStreaming:
    """Tentpole: merged_metrics() is fresh between barriers."""

    def test_poll_telemetry_streams_before_the_barrier(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            n = 50
            for i in range(n):
                runtime.inject("serve", ("put", f"k{i}", i))
            # No run_until_idle yet: workers drain autonomously and
            # piggyback registry snapshots on their idle reports. Pump
            # the coordinator wire until those shards land.
            deadline = time.perf_counter() + 10.0
            live = 0.0
            while time.perf_counter() < deadline:
                runtime.poll_telemetry(0.05)
                live = runtime.merged_metrics().total(
                    "engine_items_processed_total")
                if live >= n:
                    break
            assert live == n, "live metrics never caught up pre-barrier"
            # The barrier then agrees with the stream.
            runtime.run_until_idle()
            assert runtime.merged_metrics().total(
                "engine_items_processed_total") == n
        finally:
            runtime.close()

    def test_wire_metrics_account_both_directions(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            for i in range(30):
                runtime.inject("serve", ("put", f"k{i}", i))
            runtime.run_until_idle()
            metrics = runtime.merged_metrics()
            frames = metrics.total("wire_frames_total")
            sent = metrics.value("wire_frames_total",
                                 direction="send", role="coordinator")
            recv = metrics.value("wire_frames_total",
                                 direction="recv", role="coordinator")
            assert frames > 0 and sent > 0 and recv > 0
            assert metrics.total("wire_bytes_total") > 0
            assert metrics.total("wire_serialize_seconds_total") > 0
        finally:
            runtime.close()


def build_crash_once_kv(flag_path):
    """A KV app whose ``boom`` key crashes the owning worker exactly
    once: the flag file survives the re-fork, the second service
    succeeds. (Process memory resets on restart; disk does not.)"""
    sdg = SDG("crashonce")
    sdg.add_state("table", KeyValueMap, kind=StateKind.PARTITIONED,
                  partition_by="key")

    def serve(ctx, request):
        op, key, value = request
        if key == "boom" and not os.path.exists(flag_path):
            with open(flag_path, "w") as fh:
                fh.write("crashed")
            os._exit(13)  # hard death: no MSG_CRASH, no cleanup
        ctx.state.put(key, value)

    sdg.add_task("serve", serve, state="table",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda r: r[1], entry_key_name="key")
    return sdg


class TestCrashRestartAccounting:
    """Satellite: restart telemetry neither loses nor double-counts."""

    def run_workload(self, sdg, substrate, workers=None, restarts=0):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate=substrate, workers=workers,
                               worker_restarts=restarts)
        runtime = Runtime(sdg, config).deploy()
        try:
            for i in range(24):
                runtime.inject("serve", ("put", f"k{i}", i))
            runtime.inject("serve", ("put", "boom", 99))
            runtime.run_until_idle()
            metrics = runtime.merged_metrics().snapshot()
            series = metrics["engine_items_processed_total"]["children"]
            results = {te: sorted(map(repr, items))
                       for te, items in runtime.results.items()}
            events = runtime.events.events(kind=KIND.WORKER_RESTART)
            return (series, results, state_fingerprint(runtime), events)
        finally:
            runtime.close()

    def test_merged_metrics_survive_a_restart(self, tmp_path):
        flag = str(tmp_path / "crashed.flag")
        crashed = self.run_workload(build_crash_once_kv(flag),
                                    "multiprocess", workers=2,
                                    restarts=1)
        # Oracle: the same program in-process, with the flag pre-set so
        # it never crashes — the restart must be invisible in the
        # merged series, the results and the final state.
        oracle_flag = str(tmp_path / "preset.flag")
        open(oracle_flag, "w").close()
        clean = self.run_workload(build_crash_once_kv(oracle_flag),
                                  "inprocess")
        assert crashed[:3] == clean[:3]
        assert os.path.exists(flag), "the crash never happened"
        assert len(crashed[3]) == 1, "expected one worker-restart event"
        assert clean[3] == []

    def test_restart_budget_exhaustion_still_fails(self, tmp_path):
        # Two crash sites, one restart: the second death propagates.
        sdg = SDG("crashtwice")
        sdg.add_state("table", KeyValueMap,
                      kind=StateKind.PARTITIONED, partition_by="key")

        def serve(ctx, request):
            op, key, value = request
            if key == "boom":
                raise ValueError("always fatal")
            ctx.state.put(key, value)

        sdg.add_task("serve", serve, state="table",
                     access=AccessMode.PARTITIONED, is_entry=True,
                     entry_key_fn=lambda r: r[1], entry_key_name="key")
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2,
                               worker_restarts=1)
        runtime = Runtime(sdg, config).deploy()
        try:
            runtime.inject("serve", ("put", "boom", 1))
            with pytest.raises(RuntimeExecutionError, match="crashed"):
                runtime.run_until_idle()
        finally:
            runtime.close()


class TestCrashFlightRecorder:
    """Tentpole: a dying worker ships its last-N envelope digests."""

    def test_fatal_error_carries_the_flight_tail(self):
        sdg = SDG("blackbox")
        sdg.add_state("table", KeyValueMap,
                      kind=StateKind.PARTITIONED, partition_by="key")

        def serve(ctx, request):
            op, key, value = request
            if key == "boom":
                raise ValueError("injected task failure")
            ctx.state.put(key, value)

        sdg.add_task("serve", serve, state="table",
                     access=AccessMode.PARTITIONED, is_entry=True,
                     entry_key_fn=lambda r: r[1], entry_key_name="key")
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2,
                               flight_recorder=32)
        runtime = Runtime(sdg, config).deploy()
        try:
            for i in range(10):
                runtime.inject("serve", ("put", "steady", i))
            runtime.inject("serve", ("put", "boom", 1))
            with pytest.raises(RuntimeExecutionError) as err:
                runtime.run_until_idle()
        finally:
            runtime.close()
        text = str(err.value)
        assert "flight recorder" in text
        # The ring shows the fatal envelope itself as its last entry.
        assert "'boom'" in text
        assert "serve" in text


class TestMergedProfile:
    """Tentpole: worker phase shards fold into one profile view."""

    def test_profile_merges_worker_and_coordinator_phases(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2,
                               profile=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            for i in range(30):
                runtime.inject("serve", ("put", f"k{i}", i))
            runtime.run_until_idle()
            profile = runtime.merged_profile()
            assert profile is not None
            names = set(profile.names())
            # Worker-side phases...
            assert {"process", "dispatch"} <= names
            # ...and coordinator wire phases, in one registry.
            assert "serialize" in names
            assert profile.count("process") == 30
        finally:
            runtime.close()

    def test_profile_off_means_none(self):
        config = RuntimeConfig(se_instances={"table": 2},
                               substrate="multiprocess", workers=2)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        try:
            runtime.inject("serve", ("put", "a", 1))
            runtime.run_until_idle()
            assert runtime.merged_profile() is None
        finally:
            runtime.close()

"""Supervised automatic recovery.

The missing link between detection and repair: the
:class:`RecoverySupervisor` subscribes to a
:class:`~repro.runtime.detector.FailureDetector` and drives the
:class:`~repro.recovery.manager.RecoveryManager` without any manual
``recover_node`` calls, the way the paper's runtime restores failed
workers on its own (§5).

Policies, in the order they apply to each failed node:

1. **Strategy ladder.** Start with m-to-n recovery when configured
   (``n_new > 1``); if the n-way restore is *refused* (SE not
   partitioned, node hosted more than one SE, other instances alive),
   fall back to plain 1-to-1 recovery. If the stored checkpoint is
   unusable — corrupt or incomplete chunks
   (:class:`~repro.errors.BackupIntegrityError`) — and the node's
   chain carries incremental deltas, fall back to **base-only
   recovery** first: restore just the full base and re-replay the span
   the deltas covered from the upstream buffers (which are only trimmed
   on full checkpoints, so the span is still there). If the base itself
   is also unusable, or the chain had no deltas to discard, or the
   checkpoint was captured under a stale partitioning epoch
   (:class:`~repro.errors.StaleCheckpointError`), fall back to **pure
   log-replay recovery** (restore empty, replay the retained input
   history). Deploy the
   :class:`~repro.recovery.checkpoint.CheckpointManager` with
   ``trim_input_log=False`` to keep that last-resort path sound.
2. **Bounded retry with backoff.** Any other recovery failure is
   retried after ``backoff_steps`` logical steps, doubling per attempt,
   at most ``max_retries`` times.
3. **Quarantine.** A node whose recovery keeps failing is quarantined:
   its instances stay down, a ``quarantined`` event is logged, and the
   supervisor stops touching it — loud, bounded degradation instead of
   a retry storm.

Every decision is published to the runtime's structured event bus
(``runtime.events``, source ``"supervisor"``) that tests, benchmarks
and the ``repro obs`` CLI assert against: each failure produces a
``detected`` event followed by a ``recovered`` (or ``quarantined``)
event, with any fallbacks and failed attempts in between.
:attr:`RecoverySupervisor.events` remains as a backward-compatible
view reconstructing :class:`RecoveryEvent` records from the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    BackupIntegrityError,
    RecoveryError,
    StaleCheckpointError,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.manager import RecoveryManager
    from repro.runtime.detector import DetectionEvent, FailureDetector
    from repro.runtime.engine import Runtime


@dataclass(frozen=True)
class RecoveryEvent:
    """One entry of the supervisor's structured event log."""

    step: int
    kind: str  # detected | recovery-started | fallback | recovered |
    #            recovery-failed | quarantined
    node_id: int
    attempt: int = 0
    detail: str = ""
    new_nodes: tuple[int, ...] = ()


@dataclass
class _PendingRecovery:
    """One failed node the supervisor is responsible for."""

    node_id: int
    strategy: str  # "m-to-n" | "one-to-one" | "base-only" | "log-replay"
    attempts: int = 0
    due_step: int = 0
    last_error: str = ""


class RecoverySupervisor:
    """Wires detector verdicts to automatic recovery actions."""

    def __init__(self, detector: "FailureDetector",
                 manager: "RecoveryManager", *,
                 n_new: int = 1,
                 max_retries: int = 3,
                 backoff_steps: int = 25,
                 restart_stalled: bool = True) -> None:
        if n_new < 1:
            raise RecoveryError(f"n_new must be >= 1, got {n_new}")
        if max_retries < 1 or backoff_steps < 0:
            raise RecoveryError(
                "max_retries must be >= 1 and backoff_steps >= 0"
            )
        self.detector = detector
        self.manager = manager
        self.runtime: "Runtime" = manager.runtime
        self.n_new = n_new
        self.max_retries = max_retries
        self.backoff_steps = backoff_steps
        self.restart_stalled = restart_stalled
        #: Nodes given up on after exhausting retries.
        self.quarantined: set[int] = set()
        self._pending: dict[int, _PendingRecovery] = {}
        self._installed = False
        metrics = self.runtime.metrics
        self._c_attempts = metrics.counter(
            "recovery_attempts_total",
            "recovery attempts started by the supervisor").labels()
        self._c_quarantined = metrics.counter(
            "recovery_quarantined_total",
            "nodes quarantined after exhausting retries").labels()

    @property
    def events(self) -> list[RecoveryEvent]:
        """The supervisor's decisions, reconstructed from the event bus.

        Deprecated as a *private* log: decisions are now published to
        ``runtime.events`` with source ``"supervisor"`` (one supervisor
        per runtime is the supported pattern); this property remains as
        a compatible read view.
        """
        return [
            RecoveryEvent(
                step=e.step, kind=e.kind,
                node_id=e.attrs.get("node_id", -1),
                attempt=e.attrs.get("attempt", 0),
                detail=e.attrs.get("detail", ""),
                new_nodes=tuple(e.attrs.get("new_nodes", ())),
            )
            for e in self.runtime.events.events(source="supervisor")
        ]

    # ------------------------------------------------------------------

    def install(self) -> "RecoverySupervisor":
        """Subscribe to the detector and attach to the runtime."""
        if self._installed:
            return self
        self.detector.subscribe(self._on_detection)
        self.runtime.add_step_hook(self._on_step)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.runtime.remove_step_hook(self._on_step)
            self._installed = False

    @property
    def settled(self) -> bool:
        """No recovery in flight (quarantined nodes stay down)."""
        return not self._pending

    def cycles(self) -> list[tuple[RecoveryEvent, RecoveryEvent | None]]:
        """(detection, resolution) pairs, one per supervised failure.

        The resolution is the node's ``recovered`` or ``quarantined``
        event, or ``None`` while recovery is still in flight.
        """
        outcomes: dict[int, RecoveryEvent] = {}
        for event in self.events:
            if event.kind in ("recovered", "quarantined"):
                outcomes.setdefault(event.node_id, event)
        return [
            (event, outcomes.get(event.node_id))
            for event in self.events if event.kind == "detected"
        ]

    # ------------------------------------------------------------------

    def _log(self, kind: str, node_id: int, *, attempt: int = 0,
             detail: str = "", new_nodes: tuple[int, ...] = ()) -> None:
        self.runtime.events.publish(
            "supervisor", kind, self.runtime.total_steps,
            node_id=node_id, attempt=attempt, detail=detail,
            new_nodes=tuple(new_nodes),
        )

    def _on_detection(self, event: "DetectionEvent") -> None:
        node_id = event.node_id
        if node_id in self._pending or node_id in self.quarantined:
            return
        self._log("detected", node_id, detail=event.kind)
        if event.kind == "stalled":
            if not self.restart_stalled:
                return
            # Supervised restart: retire the wedged node, then recover
            # it through the normal path (its state comes back from the
            # last checkpoint plus replay).
            if self.runtime.nodes[node_id].alive:
                self.runtime.fail_node(node_id)
        strategy = "m-to-n" if self.n_new > 1 else "one-to-one"
        self._pending[node_id] = _PendingRecovery(
            node_id=node_id, strategy=strategy,
            due_step=self.runtime.total_steps,
        )

    def _on_step(self, runtime: "Runtime") -> None:
        if not self._pending:
            return
        now = runtime.total_steps
        for node_id in list(self._pending):
            task = self._pending.get(node_id)
            if task is not None and task.due_step <= now:
                self._attempt(task)

    # ------------------------------------------------------------------

    def _attempt(self, task: _PendingRecovery) -> None:
        task.attempts += 1
        self._c_attempts.inc()
        self._log("recovery-started", task.node_id,
                  attempt=task.attempts, detail=task.strategy)
        while True:
            try:
                nodes = self._execute(task)
            except (BackupIntegrityError, StaleCheckpointError) as exc:
                if task.strategy == "log-replay":
                    self._fail(task, exc)
                    return
                fallback = self._integrity_fallback(task, exc)
                self._log("fallback", task.node_id,
                          attempt=task.attempts,
                          detail=f"{task.strategy} -> {fallback}: {exc}")
                task.strategy = fallback
            except RecoveryError as exc:
                if task.strategy == "m-to-n":
                    self._log(
                        "fallback", task.node_id, attempt=task.attempts,
                        detail=f"m-to-n -> one-to-one: {exc}",
                    )
                    task.strategy = "one-to-one"
                    continue
                self._fail(task, exc)
                return
            else:
                del self._pending[task.node_id]
                self._log(
                    "recovered", task.node_id, attempt=task.attempts,
                    detail=task.strategy,
                    new_nodes=tuple(n.node_id for n in nodes),
                )
                return

    def _integrity_fallback(self, task: _PendingRecovery,
                            exc: Exception) -> str:
        """Pick the next rung after an unusable-checkpoint error.

        A corrupt or missing chunk (``BackupIntegrityError``) on a
        chain that actually has deltas is first retried **base-only**:
        the full base plus upstream replay reconstructs the exact same
        state without touching the suspect deltas. A stale partitioning
        epoch taints base and head alike, and a delta-free chain has
        nothing left to discard — both go straight to log-replay, as
        does a base-only attempt that fails again.
        """
        if (
            isinstance(exc, BackupIntegrityError)
            and task.strategy not in ("base-only",)
            and len(self.manager.store.chain(task.node_id)) > 1
        ):
            return "base-only"
        return "log-replay"

    def _execute(self, task: _PendingRecovery):
        if task.strategy == "m-to-n":
            return self.manager.recover_node(task.node_id,
                                             n_new=self.n_new)
        if task.strategy == "one-to-one":
            return self.manager.recover_node(task.node_id)
        if task.strategy == "base-only":
            return self.manager.recover_node(task.node_id,
                                             use_deltas=False)
        return self.manager.recover_node(task.node_id,
                                         use_checkpoint=False)

    def _fail(self, task: _PendingRecovery, exc: Exception) -> None:
        task.last_error = str(exc)
        if task.attempts >= self.max_retries:
            del self._pending[task.node_id]
            self.quarantined.add(task.node_id)
            self._c_quarantined.inc()
            self._log("quarantined", task.node_id,
                      attempt=task.attempts,
                      detail=f"giving up after {task.attempts} "
                             f"attempts: {exc}")
            return
        backoff = self.backoff_steps * (2 ** (task.attempts - 1))
        task.due_step = self.runtime.total_steps + backoff
        self._log("recovery-failed", task.node_id, attempt=task.attempts,
                  detail=f"{exc} (retrying in {backoff} steps)")

"""Tests for the BoundProgram / SDGProgram public API surface."""

import pytest

from repro import RuntimeConfig, TranslationError
from repro.apps import KeyValueStore


class TestLaunch:
    def test_launch_with_kwargs_sets_instances(self):
        app = KeyValueStore.launch(table=5)
        assert len(app.runtime.se_instances("table")) == 5

    def test_launch_with_config_object(self):
        config = RuntimeConfig(se_instances={"table": 2})
        app = KeyValueStore.launch(config=config)
        assert len(app.runtime.se_instances("table")) == 2

    def test_kwargs_override_config(self):
        config = RuntimeConfig(se_instances={"table": 2})
        app = KeyValueStore.launch(config=config, table=4)
        assert len(app.runtime.se_instances("table")) == 4

    def test_to_sdg_returns_validated_graph(self):
        sdg = KeyValueStore.to_sdg()
        sdg.validate()
        assert "table" in sdg.states


class TestEntryProxies:
    def test_unknown_entry_attribute_raises(self):
        app = KeyValueStore.launch()
        with pytest.raises(AttributeError, match="no entry method"):
            app.not_a_method("x")

    def test_wrong_arity_raises(self):
        app = KeyValueStore.launch()
        with pytest.raises(TypeError, match="takes 2 arguments"):
            app.put("only-key")

    def test_call_by_name(self):
        app = KeyValueStore.launch()
        app.call("put", "k", 1)
        app.run()
        app.call("get", "k")
        app.run()
        assert app.results("get") == [("k", 1)]

    def test_results_of_unknown_method_raises(self):
        app = KeyValueStore.launch()
        with pytest.raises(TranslationError, match="not an entry"):
            app.results("nope")

    def test_results_are_a_copy(self):
        app = KeyValueStore.launch()
        app.put("k", 1)
        app.get("k")
        app.run()
        first = app.results("get")
        first.append("tampered")
        assert app.results("get") == [("k", 1)]

    def test_state_of_returns_live_elements(self):
        app = KeyValueStore.launch(table=2)
        app.put("k", 7)
        app.run()
        elements = app.state_of("table")
        assert len(elements) == 2
        assert any(e.get("k") == 7 for e in elements)

    def test_run_returns_items_processed(self):
        app = KeyValueStore.launch()
        app.put("a", 1)
        app.put("b", 2)
        assert app.run() == 2

"""Microbenchmarks of the real runtime's hot paths.

These measure wall-clock time of the in-process implementation itself
(not the paper's cluster): per-operation cost of the KV store and CF
pipelines, checkpoint capture + consolidation, chunked serialisation,
and the translator. They guard against performance regressions in the
library rather than reproducing a figure.
"""

from repro.apps import CollaborativeFiltering, KeyValueStore
from repro.core import SDG, Dispatch
from repro.recovery import BackupStore, CheckpointManager
from repro.runtime import Runtime, RuntimeConfig
from repro.state import KeyValueMap
from repro.translate import translate

from repro.testing import build_kv_sdg, noop


def test_micro_kv_put_throughput(benchmark):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": 4})).deploy()
    counter = iter(range(100_000_000))

    def one_put():
        i = next(counter)
        runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()

    benchmark(one_put)


def test_micro_cf_add_rating(benchmark):
    app = CollaborativeFiltering.launch(user_item=2, co_occ=2)
    counter = iter(range(100_000_000))

    def one_rating():
        i = next(counter)
        app.add_rating(i % 50, i % 20, 1 + i % 5)
        app.run()

    benchmark(one_rating)


def test_micro_cf_get_rec(benchmark):
    app = CollaborativeFiltering.launch(user_item=2, co_occ=2)
    for i in range(100):
        app.add_rating(i % 20, i % 10, 3)
    app.run()
    counter = iter(range(100_000_000))

    def one_read():
        app.get_rec(next(counter) % 20)
        app.run()

    benchmark(one_read)


def test_micro_wide_graph_dispatch(benchmark):
    """Per-item dispatch on a many-edge graph.

    Every item traverses a 60-hop chain, so each injection triggers 60
    dispatch decisions. The seed engine rescanned (and copied) the full
    edge list on every decision — O(edges) per hop, quadratic in chain
    length per item; the dispatcher's deploy-time successor index makes
    each hop O(out-degree).
    """
    hops = 60
    sdg = SDG("wide")
    sdg.add_task("hop0", noop, is_entry=True)
    for i in range(1, hops):
        sdg.add_task(f"hop{i}", noop)
        sdg.connect(f"hop{i - 1}", f"hop{i}", Dispatch.ONE_TO_ANY)
    runtime = Runtime(sdg).deploy()
    counter = iter(range(100_000_000))

    def one_traversal():
        runtime.inject("hop0", next(counter))
        runtime.run_until_idle()

    benchmark(one_traversal)


def test_micro_checkpoint_cycle(benchmark):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": 1})).deploy()
    for i in range(5_000):
        runtime.inject("serve", ("put", i, i))
    runtime.run_until_idle()
    manager = CheckpointManager(runtime, BackupStore(m_targets=2))
    node = runtime.se_instance("table", 0).node_id

    benchmark(manager.checkpoint, node)


def test_micro_chunking(benchmark):
    kv = KeyValueMap()
    for i in range(20_000):
        kv.put(i, i)

    benchmark(kv.to_chunks, 4)


def test_micro_fail_and_recover_cycle(benchmark):
    from repro.recovery import RecoveryManager

    def cycle():
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(se_instances={"table": 1}))
        runtime.deploy()
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(runtime, store)
        recovery = RecoveryManager(runtime, store)
        for i in range(1_000):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        manager.checkpoint(node)
        runtime.fail_node(node)
        recovery.recover_node(node)
        runtime.run_until_idle()
        return len(runtime.se_instance("table", 0).element)

    entries = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert entries == 1_000


def test_micro_translation(benchmark):
    benchmark(translate, KeyValueStore)


def test_micro_full_cf_translation(benchmark):
    benchmark(translate, CollaborativeFiltering)

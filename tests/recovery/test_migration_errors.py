"""Error paths of ``RecoveryManager``: migration and epoch refusals."""

import pytest

from repro.apps import KeyValueStore
from repro.errors import RecoveryError, StaleCheckpointError
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    NodeCheckpoint,
    RecoveryManager,
)


def deployed_kv(table=2, n_ops=60):
    app = KeyValueStore.launch(table=table)
    store = BackupStore(m_targets=2)
    for i in range(n_ops):
        app.put(i, i)
    app.run()
    return app, store, RecoveryManager(app.runtime, store)


class TestRecoverNodeErrors:
    def test_alive_node_refused(self):
        app, _store, recovery = deployed_kv()
        node_id = app.runtime.se_instance("table", 0).node_id
        with pytest.raises(RecoveryError, match="has not failed"):
            recovery.recover_node(node_id)

    def test_n_new_below_one_refused(self):
        app, _store, recovery = deployed_kv()
        node_id = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(node_id)
        with pytest.raises(RecoveryError, match="n_new"):
            recovery.recover_node(node_id, n_new=0)

    def test_m_to_n_refused_while_siblings_alive(self):
        app, store, recovery = deployed_kv()
        manager = CheckpointManager(app.runtime, store)
        manager.checkpoint_all()
        node_id = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(node_id)
        with pytest.raises(RecoveryError, match="only instance"):
            recovery.recover_node(node_id, n_new=2)


class TestMigrationErrors:
    def test_migrating_a_dead_node_is_refused(self):
        app, _store, recovery = deployed_kv()
        node_id = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(node_id)
        with pytest.raises(RecoveryError, match="dead node"):
            recovery.migrate_node(node_id)

    def test_node_dying_during_migration_checkpoint_is_loud(self):
        """If the migration checkpoint cannot complete (node died while
        it was being taken), the migration must abort with an error —
        not retire a node whose state was never captured."""
        app, _store, recovery = deployed_kv()
        node_id = app.runtime.se_instance("table", 0).node_id

        class DiesMidCheckpoint:
            def checkpoint(self, _node_id):
                return None  # what CheckpointManager.complete returns

        with pytest.raises(RecoveryError,
                           match="migration checkpoint"):
            recovery.migrate_node(node_id,
                                  checkpoint_manager=DiesMidCheckpoint())
        # The node was not retired by the failed migration.
        assert app.runtime.nodes[node_id].alive

    def test_migration_error_message_names_the_node(self):
        app, _store, recovery = deployed_kv()
        node_id = app.runtime.se_instance("table", 1).node_id

        class DiesMidCheckpoint:
            def checkpoint(self, _node_id):
                return None

        with pytest.raises(RecoveryError, match=str(node_id)):
            recovery.migrate_node(node_id,
                                  checkpoint_manager=DiesMidCheckpoint())


class TestEpochRefusal:
    def test_check_epochs_raises_typed_stale_error(self):
        app, store, recovery = deployed_kv()
        manager = CheckpointManager(app.runtime, store)
        manager.checkpoint_all()
        put_te = app.translation.entry_info("put").entry_te
        assert app.runtime.scale_up(put_te)  # bumps the table epoch

        node_id = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(node_id)
        with pytest.raises(StaleCheckpointError, match="repartitioned"):
            recovery.recover_node(node_id)
        # The typed error is still a RecoveryError for callers that
        # catch broadly.
        assert issubclass(StaleCheckpointError, RecoveryError)

    def test_check_epochs_direct(self):
        app, _store, recovery = deployed_kv()
        stale = NodeCheckpoint(node_id=0, version=1,
                               se_epochs={"table": 7})
        with pytest.raises(StaleCheckpointError, match="epoch 7"):
            recovery._check_epochs(stale)

    def test_check_epochs_accepts_current_epoch(self):
        app, _store, recovery = deployed_kv()
        current = NodeCheckpoint(
            node_id=0, version=1,
            se_epochs={"table": app.runtime.se_epoch("table")},
        )
        recovery._check_epochs(current)  # must not raise

    def test_log_replay_escape_hatch_ignores_stale_checkpoint(self):
        """``use_checkpoint=False`` recovers through the full input log
        even when the stored checkpoint is unusably stale."""
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store,
                                    trim_input_log=False)
        recovery = RecoveryManager(app.runtime, store)
        oracle = {}
        for i in range(80):
            app.put(i, i)
            oracle[i] = i
        app.run()
        manager.checkpoint_all()
        put_te = app.translation.entry_info("put").entry_te
        assert app.runtime.scale_up(put_te)

        node_id = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(node_id)
        with pytest.raises(StaleCheckpointError):
            recovery.recover_node(node_id)
        recovery.recover_node(node_id, use_checkpoint=False)
        app.run()

        merged = {}
        for element in app.state_of("table"):
            merged.update(dict(element.items()))
        assert merged == oracle

"""SDG302: a merge function sensitive to the gather order.

The gather barrier delivers one partial value per replica in an
undefined order. ``newest_wins`` both indexes the collection by
position (picks an arbitrary replica) and accumulates with ``-``
(non-commutative), so its result varies across runs and replays.
"""

from repro.annotations import Partial, Partitioned, collection, entry, global_
from repro.program import SDGProgram
from repro.state import Matrix


class OrderSensitiveMerge(SDGProgram):
    """Collaborative-filtering shape with an order-dependent merge."""

    ratings = Partitioned(Matrix, key="user")
    co_occ = Partial(Matrix)

    @entry
    def recommend(self, user):
        row = self.ratings.get_row(user)
        scores = global_(self.co_occ).multiply(row)
        best = self.newest_wins(collection(scores))
        return best

    def newest_wins(self, all_scores):
        baseline = all_scores[0]
        for cur in all_scores:
            baseline = baseline - cur
        return baseline

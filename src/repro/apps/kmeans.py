"""Online k-means clustering.

K-means is one of the paper's motivating algorithms (§1). The streaming
formulation uses partial state the same way CF's co-occurrence matrix
does: every replica maintains its own per-centroid accumulator
(``[count, sum_0, ..., sum_{d-1}]`` rows of a matrix) and assigns
incoming points against its *local* estimate — the paper's observation
that such algorithms "can converge from different intermediate states"
(§3.1) is what makes uncoordinated partial updates acceptable. Reading
the clustering performs a global access and merges the accumulators
(weighted by counts) into consensus centroids.

The program also exercises a broadcast *write*: ``init_centroid`` seeds
a centroid on **all** replicas through a ``global_`` access.
"""

from __future__ import annotations

from repro.annotations import Partial, collection, entry, global_
from repro.program import SDGProgram
from repro.state import Matrix


class KMeans(SDGProgram):
    """Streaming k-means over partial per-replica accumulators.

    Row ``c`` of the accumulator matrix holds ``[count, sums...]`` for
    centroid ``c``; the centroid estimate is ``sums / count``.
    """

    accumulators = Partial(Matrix)

    @entry
    def init_centroid(self, cid, position):
        """Seed centroid ``cid`` at ``position`` on every replica.

        The global access broadcasts the write so that all partial
        instances start from the same initial clustering.
        """
        acc = global_(self.accumulators)
        acc.set_element(cid, 0, 1.0)
        for i in range(len(position)):
            acc.set_element(cid, i + 1, position[i])

    @entry
    def observe(self, point):
        """Assign ``point`` to the locally-nearest centroid and fold it
        into that centroid's accumulator."""
        acc = self.accumulators
        k = acc.num_rows()
        best = 0
        best_distance = None
        for c in range(k):
            count = acc.get_element(c, 0)
            if count <= 0:
                continue
            distance = 0.0
            for i in range(len(point)):
                delta = acc.get_element(c, i + 1) / count - point[i]
                distance = distance + delta * delta
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best = c
        acc.add_element(best, 0, 1.0)
        for i in range(len(point)):
            acc.add_element(best, i + 1, point[i])

    @entry
    def get_centroids(self):
        """Consensus centroids: count-weighted merge of all replicas."""
        partial_rows = global_(self.accumulators).to_rows()
        centroids = self.merge_centroids(collection(partial_rows))
        return centroids

    def merge_centroids(self, all_rows):
        """Sum counts and coordinate sums per centroid, then divide."""
        k = max((len(rows) for rows in all_rows), default=0)
        merged = []
        for c in range(k):
            count = 0.0
            sums = []
            for rows in all_rows:
                if c >= len(rows) or not rows[c]:
                    continue
                count = count + rows[c][0]
                for i in range(1, len(rows[c])):
                    while len(sums) < i:
                        sums.append(0.0)
                    sums[i - 1] = sums[i - 1] + rows[c][i]
            if count > 0:
                merged.append([value / count for value in sums])
            else:
                merged.append([])
        return merged

"""Pass 4 — key-consistency dataflow (``SDG304``).

The structural validator (``SDG213``) checks that every route into a
partitioned SE agrees on the partition key *name*. This pass is the
value-level extension: using the translator's live-variable results it
tracks which variable actually **carries** the key along each dataflow
edge into a partitioned-access TE, and whether that variable still
holds the original partition key value.

Two findings:

* the key variable is not live on the edge at all — the routing
  ``key_fn`` has nothing to extract (the translator refuses this in
  strict mode; the pass reports it precisely in lint mode);
* the key variable was **redefined** in an upstream block. Routing and
  state access then use the recomputed value: the same logical SE is
  addressed through key values of two different provenances (the entry
  argument in earlier blocks, the recomputed value later), which
  breaks the unique-partitioning discipline of §3.2 — two partitions
  can end up holding entries for what the program thinks is one key.
"""

from __future__ import annotations

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import ProgramModel
from repro.core.elements import AccessMode
from repro.translate.liveness import block_uses_defs


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    for ir in model.entries.values():
        block_defs = [block_uses_defs(b.statements)[1]
                      for b in ir.blocks]
        for index, block in enumerate(ir.blocks):
            if block.access is None or block.is_merge:
                continue
            if block.access.mode is not AccessMode.PARTITIONED:
                continue
            key = block.access.key
            if key is None:
                continue
            se = block.access.field
            stmt = block.statements[0]
            if index == 0:
                if key not in ir.params:
                    sink.emit(
                        "SDG304",
                        f"method {ir.method!r}: entry block accesses "
                        f"partitioned SE {se!r} by key {key!r}, but "
                        f"{key!r} is not an entry parameter — external "
                        f"input cannot be dispatched by it",
                        lineno=stmt.lineno, origin=ir.method,
                        hint=f"add {key!r} to the entry signature or "
                             f"re-key the state field",
                    )
                continue
            if key not in ir.lives[index]:
                sink.emit(
                    "SDG304",
                    f"method {ir.method!r}: the dataflow edge into "
                    f"{ir.te_names[index]!r} (partitioned SE {se!r}) "
                    f"does not carry the key variable {key!r} — live "
                    f"variables on the edge: {ir.lives[index]}",
                    lineno=stmt.lineno, origin=ir.method,
                    hint=f"make {key!r} reach this statement (define or "
                         f"thread it through the preceding blocks)",
                )
                continue
            redefining = [
                upstream for upstream in range(index)
                if key in block_defs[upstream]
            ]
            if redefining and key in ir.params:
                first = redefining[0]
                sink.emit(
                    "SDG304",
                    f"method {ir.method!r}: key variable {key!r} is "
                    f"redefined in task element "
                    f"{ir.te_names[first]!r} before reaching the "
                    f"partitioned access on {se!r} in "
                    f"{ir.te_names[index]!r}; the edge now routes by "
                    f"the recomputed value, so one logical key can be "
                    f"spread across partitions addressed by different "
                    f"provenances (§3.2 unique partitioning)",
                    lineno=stmt.lineno, origin=ir.method,
                    hint=f"assign the recomputed value to a fresh "
                         f"variable and keep {key!r} bound to the "
                         f"original partition key",
                )

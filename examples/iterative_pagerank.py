"""Iterative computation through dataflow cycles: async PageRank (§3.1).

"Cycles specify iterative computation" — and by default SDGs provide no
coordination during iteration, which suffices for algorithms that
converge from arbitrary intermediate states. Residual-push PageRank
circulates probability mass around a keyed loop edge until every
vertex's residual falls below a threshold; no barriers, no supersteps.

Run with:

    python examples/iterative_pagerank.py
"""

from repro.apps import build_pagerank_sdg, pagerank_scores
from repro.core import allocate
from repro.runtime import Runtime, RuntimeConfig

# A small web-like graph: page 0 is the hub everyone links to.
EDGES = [
    (1, 0), (2, 0), (3, 0), (4, 0), (5, 0),
    (0, 1), (0, 2),
    (2, 3), (3, 4), (4, 5), (5, 1),
]


def main():
    sdg = build_pagerank_sdg(damping=0.85, epsilon=1e-9)
    print(f"cycles in the SDG: {sdg.cycles()} "
          f"(the keyed 'push' loop)")
    allocation = allocate(sdg)
    print(f"allocation step 1 colocates the loop's state with its TE: "
          f"push@node{allocation.node_of['push']}, "
          f"vertices@node{allocation.node_of['vertices']}\n")

    runtime = Runtime(sdg, RuntimeConfig(
        se_instances={"vertices": 3},
    )).deploy()

    vertices = sorted({v for edge in EDGES for v in edge})
    out = {v: [dst for src, dst in EDGES if src == v] for v in vertices}
    for vertex in vertices:
        runtime.inject("load", (vertex, out[vertex]))
    steps = runtime.run_until_idle(max_steps=10_000_000)
    print(f"converged after {steps} uncoordinated loop steps")

    scores = pagerank_scores(runtime, vertices)
    print("\nPageRank (normalised):")
    for vertex, score in sorted(scores.items(),
                                key=lambda kv: -kv[1]):
        bar = "#" * int(score * 120)
        print(f"  page {vertex}: {score:.4f}  {bar}")
    top = max(scores, key=scores.get)
    assert top == 0, "the hub page should rank first"
    print("\nhub page ranks first  [ok]")


if __name__ == "__main__":
    main()

"""SDG4xx — substrate-safety passes: is this program safe to fork?

The in-process substrate is forgiving: every TE shares one address
space, so closures, open handles, object identity and module globals
all behave. The multiprocess substrate
(:class:`~repro.runtime.multiprocess.MultiprocessSubstrate`) is not —
payloads cross process boundaries and worker state diverges silently.
These passes prove (or refute) the three fork hazards statically:

``SDG401`` *unpicklable-payload*
    A value that cannot cross a process boundary — a lambda, generator
    expression, open file handle or thread/lock primitive — is stored
    into a state element or shipped on a dataflow edge.

``SDG402`` *cross-process-nondeterminism*
    A process-dependent value escapes onto an edge or into a partition
    key: ``hash()`` differs per process under hash randomization,
    ``id()`` is an address, and iteration order over a freshly built
    ``set`` is hash-dependent. Routing or payloads built from these
    differ between workers and across recovery replays.

``SDG403`` *shared-mutable-global*
    A module global or shared class attribute is mutated from a task
    method. After fork each worker owns a private copy, so the write
    is invisible to every other process — state the paper requires to
    be explicit (§4.1) hiding in the interpreter.

The passes are **not** part of the default ``analyze()`` pipeline:
substrate-unsafe code is perfectly valid in-process. They run through
``analyze(..., substrate_safety=True)``, ``repro lint
--substrate-safety``, the capability certifier (``SUBSTRATE_SAFE``)
and the multiprocess deploy gate
(:attr:`~repro.runtime.engine.RuntimeConfig.substrate_check`).
Helper- and free-function-laundered hazards surface through the
interprocedural summaries with their call chain.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Diagnostic, DiagnosticSink
from repro.analysis.interproc import diagnostic_chain
from repro.analysis.model import (
    WRITE_METHODS,
    ProgramModel,
    field_method_calls,
    source_location,
)
from repro.translate.liveness import uses_defs

#: Module roots whose objects hold process-local resources.
_PROCESS_LOCAL_MODULES = frozenset({
    "threading", "multiprocessing", "_thread",
})

#: Builtins whose result is process-dependent.
_PROCESS_DEPENDENT = frozenset({"hash", "id"})


# ----------------------------------------------------------------------
# Shared expression classification
# ----------------------------------------------------------------------


def _unpicklable_reason(node: ast.expr,
                        aliases: dict[str, str]) -> str | None:
    """Why the value of ``node`` cannot cross a process boundary, or
    ``None``. Deliberately shallow: a lambda passed as a ``key=``
    argument is consumed in-process and never ships, so only the value
    itself (and the top level of container displays) is inspected."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            reason = _unpicklable_reason(element, aliases)
            if reason:
                return reason
        return None
    if isinstance(node, ast.Dict):
        for value in node.values:
            if value is None:
                continue
            reason = _unpicklable_reason(value, aliases)
            if reason:
                return reason
        return None
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "an open file handle"
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            resolved = aliases.get(root.id, root.id)
            if resolved in _PROCESS_LOCAL_MODULES:
                return f"a {resolved!r} primitive"
    return None


def _process_dependent_call(node: ast.expr,
                            shadowed: set[str]) -> str | None:
    """The name of a ``hash()``/``id()`` call anywhere in ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id in _PROCESS_DEPENDENT
            and sub.func.id not in shadowed
        ):
            return sub.func.id
    return None


def _is_set_expr(node: ast.expr, set_vars: set[str]) -> bool:
    """Expression whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    return False


# ----------------------------------------------------------------------
# Program path
# ----------------------------------------------------------------------


def run_program(model: ProgramModel, sink: DiagnosticSink) -> None:
    """All three SDG4xx passes over one translated program."""
    interproc = model.interproc
    aliases = interproc.graph.aliases
    fields = set(model.result.fields)
    for method, ir in model.entries.items():
        _check_entry_blocks(model, method, ir, fields, aliases, sink)
        _report_global_writes(method, interproc.get(method), sink)


def _check_entry_blocks(model, method, ir, fields, aliases, sink):
    from repro.analysis.callgraph import local_bindings

    interproc = model.interproc
    shadowed = local_bindings(ir.fn_ast)
    shadowed &= _PROCESS_DEPENDENT  # only relevant shadows
    for index, block in enumerate(ir.blocks):
        live_out = (set(ir.lives[index + 1])
                    if index + 1 < len(ir.blocks) else set())
        unpicklable: dict[str, tuple[ast.stmt, str]] = {}
        nondet: dict[str, tuple[ast.stmt, str]] = {}
        set_vars: set[str] = set()
        stored: set[str] = set()
        for stmt in block.statements:
            _scan_se_stores(stmt, fields, aliases, method, sink)
            stored |= _stored_names(stmt, fields)
            _scan_statement(
                stmt, method, interproc, aliases, shadowed,
                unpicklable, nondet, set_vars,
            )
        # A value escapes the task either on the outgoing dataflow
        # edge (live into the next block) or into a state element.
        escaping = live_out | stored
        for name in sorted(set(unpicklable) & escaping):
            site, reason = unpicklable[name]
            sink.emit(
                "SDG401",
                f"method {method!r}: {name!r} holds {reason} and "
                f"leaves the task (dataflow edge or state write); it "
                f"cannot cross a process boundary under the "
                f"multiprocess substrate",
                lineno=site.lineno, col=site.col_offset, origin=method,
                hint="ship plain data (tuples, dicts, numbers) on "
                     "edges; construct callables and handles where "
                     "they are used",
            )
        for name in sorted(set(nondet) & escaping):
            site, why = nondet[name]
            sink.emit(
                "SDG402",
                f"method {method!r}: {name!r} is derived from {why} "
                f"and escapes onto the dataflow edge or into state; "
                f"its value differs between worker processes, so "
                f"routing and downstream state diverge across runs",
                lineno=site.lineno, col=site.col_offset, origin=method,
                hint="derive keys and payloads from stable data "
                     "(fields, explicit counters), and sort sets "
                     "before iterating",
            )
        key = block.access.key if block.access is not None else None
        if key is not None and key in nondet:
            site, why = nondet[key]
            sink.emit(
                "SDG402",
                f"method {method!r}: partition key {key!r} is derived "
                f"from {why}; keys must agree across processes or the "
                f"same record lands in different partitions",
                lineno=site.lineno, col=site.col_offset, origin=method,
                hint="partition by a stable field of the data itself",
            )


def _scan_se_stores(stmt, fields, aliases, method, sink):
    """SDG401 for unpicklable values stored directly into an SE."""
    for field_name, call_method, call in field_method_calls(
        stmt, fields
    ):
        if call_method not in WRITE_METHODS:
            continue
        for arg in call.args:
            reason = _unpicklable_reason(arg, aliases)
            if reason:
                sink.emit(
                    "SDG401",
                    f"method {method!r} stores {reason} in state "
                    f"element {field_name!r}; checkpoints and "
                    f"cross-process state movement cannot serialise "
                    f"it",
                    lineno=call.lineno, col=call.col_offset,
                    origin=method,
                    hint="store plain data in SEs; keep callables and "
                         "handles outside program state",
                )


def _stored_names(stmt, fields) -> set[str]:
    """Variable names written into an SE by this statement."""
    names: set[str] = set()
    for _field, call_method, call in field_method_calls(stmt, fields):
        if call_method not in WRITE_METHODS:
            continue
        for arg in call.args:
            for node in ast.walk(arg):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    return names


def _scan_statement(stmt, method, interproc, aliases, shadowed,
                    unpicklable, nondet, set_vars):
    """Track unpicklable / process-dependent / set-valued variables
    through one statement (flow-insensitive within the block)."""
    graph = interproc.graph
    stmt_uses, stmt_defs = uses_defs(stmt)

    # for x in {…} / set(…) / known-set var: iteration order taint.
    # Everything the loop statement defines — the target *and* any
    # name assigned in the body — is derived from the visit order.
    for node in ast.walk(stmt):
        if isinstance(node, ast.For) and _is_set_expr(node.iter,
                                                      set_vars):
            for name in stmt_defs:
                nondet.setdefault(
                    name, (stmt, "unordered set iteration"),
                )

    value = None
    if isinstance(stmt, ast.Assign):
        value = stmt.value
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        value = stmt.value

    if value is not None:
        if _is_set_expr(value, set_vars):
            set_vars.update(stmt_defs)
        reason = _unpicklable_reason(value, aliases)
        if reason:
            for name in stmt_defs:
                unpicklable.setdefault(name, (stmt, reason))
        elif isinstance(value, ast.Name) and value.id in unpicklable:
            for name in stmt_defs:
                unpicklable.setdefault(name, unpicklable[value.id])

    builtin = _process_dependent_call(stmt, shadowed)
    why = f"the process-dependent builtin {builtin}()" if builtin else None
    if why is None and stmt_uses & set(nondet):
        first = sorted(stmt_uses & set(nondet))[0]
        why = nondet[first][1]
    if why is None:
        # A resolved callee that transitively calls hash()/id() taints
        # the values it returns into this statement.
        for call in ast.walk(stmt):
            if not isinstance(call, ast.Call):
                continue
            target = graph.resolve_call(method, call)
            if target is None:
                continue
            for effect in interproc.get(target).effects:
                if (effect.kind == "nondet"
                        and effect.detail in _PROCESS_DEPENDENT):
                    why = (f"the process-dependent builtin "
                           f"{effect.detail}() (via {target})")
                    break
            if why:
                break
    if why:
        for name in stmt_defs:
            nondet.setdefault(name, (stmt, why))


def _report_global_writes(method, summary, sink):
    """SDG403 for module-global / class-attribute writes reachable
    from one entry, with the call chain when laundered."""
    for effect in summary.global_writes:
        path = " → ".join(hop.fn for hop in effect.chain)
        where = f" (through {path})" if path else ""
        lineno = (effect.chain[0].lineno if effect.chain
                  else effect.lineno)
        sink.emit(
            "SDG403",
            f"method {method!r} mutates {effect.detail!r}{where}: "
            f"after fork each worker owns a private copy, so the "
            f"write is invisible to every other process — make the "
            f"state explicit (Partitioned/Partial) instead",
            lineno=lineno, origin=method,
            hint="move mutable program state into annotated state "
                 "elements; module globals and class attributes do "
                 "not replicate across workers",
            chain=(diagnostic_chain(method, effect)
                   if effect.chain else ()),
        )


# ----------------------------------------------------------------------
# Graph path (hand-built SDGs: scan the task functions' sources)
# ----------------------------------------------------------------------


def run_graph(sdg, sink: DiagnosticSink) -> None:
    """The SDG4xx scans over a hand-built graph's task functions."""
    from repro.analysis.capabilities import _task_source

    for te_name, spec in sorted(sdg.tasks.items()):
        fn_ast = _task_source(spec.fn)
        if fn_ast is None:
            continue
        _scan_task_fn(te_name, fn_ast, sink)


def _scan_task_fn(te_name: str, fn_ast: ast.FunctionDef,
                  sink: DiagnosticSink) -> None:
    declared_global: set[str] = set()
    for node in ast.walk(fn_ast):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(fn_ast):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _PROCESS_DEPENDENT
            ):
                sink.emit(
                    "SDG402",
                    f"task {te_name!r} calls the process-dependent "
                    f"builtin {node.func.id!r}; its result differs "
                    f"between worker processes",
                    lineno=node.lineno, col=node.col_offset,
                    origin=te_name,
                    hint="derive keys and identities from the data "
                         "itself",
                )
            # ctx.state.<write>(… lambda …): unpicklable into state.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in WRITE_METHODS
            ):
                for arg in node.args:
                    reason = _unpicklable_reason(arg, {})
                    if reason:
                        sink.emit(
                            "SDG401",
                            f"task {te_name!r} stores {reason} in "
                            f"state; it cannot be serialised for "
                            f"checkpoints or cross-process movement",
                            lineno=node.lineno, col=node.col_offset,
                            origin=te_name,
                            hint="store plain data in state elements",
                        )
        elif isinstance(node, (ast.Assign, ast.AugAssign,
                               ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global):
                    sink.emit(
                        "SDG403",
                        f"task {te_name!r} mutates module global "
                        f"{target.id!r}; after fork the write is "
                        f"invisible to every other worker process",
                        lineno=node.lineno, col=node.col_offset,
                        origin=te_name,
                        hint="move mutable state into the task's "
                             "state element",
                    )


# ----------------------------------------------------------------------
# Deploy-gate entry point
# ----------------------------------------------------------------------


def deploy_findings(sdg) -> list[Diagnostic]:
    """The SDG4xx findings the multiprocess deploy gate checks.

    Prefers the program path (full interprocedural analysis over the
    original class, attached by ``translate()`` as
    ``sdg.source_program``); falls back to the task-source scan for
    hand-built graphs.
    """
    program = getattr(sdg, "source_program", None)
    if program is not None:
        from repro.translate.builder import translate

        file, line_base = source_location(program)
        sink = DiagnosticSink(file=file, line_base=line_base)
        try:
            result = translate(program, sink=sink)
        except Exception:
            return []
        model = ProgramModel.build(program, result)
        gate_sink = DiagnosticSink(file=file, line_base=line_base)
        run_program(model, gate_sink)
        return gate_sink.diagnostics
    sink = DiagnosticSink()
    run_graph(sdg, sink)
    return sink.diagnostics

"""Resume cost of durable runs: epochs committed vs delta-chain shape.

Two questions the durability layer's design hinges on:

* How does *fast* (checkpoint) resume scale with the number of
  committed epochs? It should be flat-ish — resume installs the fenced
  chains once, it does not replay history — while *replay* resume grows
  linearly with the epochs it must re-execute.
* How does the checkpoint cadence (``full_every``) change the fast
  path? ``full_every=1`` restores one full snapshot per node;
  ``full_every=0`` folds an ever-growing delta chain, trading save-time
  work for restore-time work.

The measured series is written to ``BENCH_durability.json`` so CI can
archive the trend next to the manifest artifacts.
"""

import json
import os
import shutil
import time

from conftest import print_figure

from repro.durability import BACKUPS_DIR, DurableRunner, RunSpec

ITEMS_PER_EPOCH = 60
EPOCH_COUNTS = (2, 6, 12)
RESULT_FILE = os.path.join(os.path.dirname(__file__),
                           "BENCH_durability.json")


def build_run(tmp_path, tag, epochs, full_every):
    run_dir = str(tmp_path / f"run-{tag}")
    spec = RunSpec(app="kvstore", seed=7, epochs=epochs,
                   items_per_epoch=ITEMS_PER_EPOCH,
                   full_every=full_every)
    DurableRunner.start(run_dir, spec).run()
    return run_dir


def timed_resume(run_dir, expect_mode):
    start = time.perf_counter()
    runner = DurableRunner.resume(run_dir)
    elapsed = time.perf_counter() - start
    assert runner.resume_mode == expect_mode, (
        f"expected {expect_mode} resume, got {runner.resume_mode}"
    )
    return elapsed


def force_replay(run_dir):
    """Drop the checkpoint files so resume must take the replay rung."""
    shutil.rmtree(os.path.join(run_dir, BACKUPS_DIR))


def chain_length(run_dir):
    """Longest base+delta chain on disk (before any resume re-anchors)."""
    from repro.durability import load_manifest
    from repro.recovery import DiskBackupStore

    store = DiskBackupStore(os.path.join(run_dir, BACKUPS_DIR),
                            m_targets=2)
    store.reload_from_disk()
    return max(len(store.chain(node))
               for node in load_manifest(run_dir).latest.checkpoints)


def test_resume_time_vs_epochs_and_chain(tmp_path):
    rows = []
    series = []
    for epochs in EPOCH_COUNTS:
        for full_every, label in ((1, "full-every-cycle"),
                                  (0, "deltas-forever")):
            tag = f"{epochs}x{full_every}"
            run_dir = build_run(tmp_path, tag, epochs, full_every)
            chain = chain_length(run_dir)
            fast = timed_resume(run_dir, "checkpoint")
            force_replay(run_dir)
            replay = timed_resume(run_dir, "replay")
            rows.append((epochs, label, chain,
                         f"{fast * 1e3:.1f}", f"{replay * 1e3:.1f}",
                         f"{replay / fast:.1f}x"))
            series.append({
                "epochs": epochs,
                "full_every": full_every,
                "chain_length": chain,
                "fast_resume_ms": round(fast * 1e3, 2),
                "replay_resume_ms": round(replay * 1e3, 2),
            })

    print_figure(
        "Durable resume: checkpoint restore vs deterministic replay",
        ["epochs", "cadence", "chain", "fast (ms)", "replay (ms)",
         "replay/fast"],
        rows,
    )

    with open(RESULT_FILE, "w", encoding="utf-8") as fh:
        json.dump({"items_per_epoch": ITEMS_PER_EPOCH,
                   "series": series}, fh, indent=2)
        fh.write("\n")

    # Shape assertions, not absolute timings.
    by_key = {(s["epochs"], s["full_every"]): s for s in series}
    # Replay cost grows with history; fast resume must not grow with it
    # anywhere near as fast (it restores the boundary, not the past).
    for full_every in (1, 0):
        small = by_key[(EPOCH_COUNTS[0], full_every)]
        large = by_key[(EPOCH_COUNTS[-1], full_every)]
        assert large["replay_resume_ms"] > small["replay_resume_ms"]
    # At the largest run, replaying 12 epochs costs more than restoring
    # their boundary checkpoints.
    for full_every in (1, 0):
        s = by_key[(EPOCH_COUNTS[-1], full_every)]
        assert s["replay_resume_ms"] > s["fast_resume_ms"]
    # Deltas-forever accumulates a longer chain than full-every-cycle.
    assert by_key[(EPOCH_COUNTS[-1], 0)]["chain_length"] > \
        by_key[(EPOCH_COUNTS[-1], 1)]["chain_length"]

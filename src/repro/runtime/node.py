"""Logical cluster nodes hosting TE and SE instances.

The runtime executes in a single process, but instances are grouped into
:class:`PhysicalNode` objects that define the failure and checkpointing
domain: a node fails as a unit (losing its SE contents, inboxes and
output buffers) and checkpoints as a unit (§5).
"""

from __future__ import annotations

from repro.errors import RuntimeExecutionError
from repro.runtime.instances import SEInstance, TEInstance


class PhysicalNode:
    """A failure/checkpoint domain holding colocated instances."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.alive = True
        self.te_instances: dict[tuple[str, int], TEInstance] = {}
        self.se_instances: dict[tuple[str, int], SEInstance] = {}
        self.items_processed = 0
        #: Relative processing speed; < 1.0 models a straggler node. The
        #: scheduling layer charges slow nodes fractional credit per
        #: visit, so a node at speed ``s`` serves items at rate ``s``
        #: (deterministically); ``speed <= 0`` pauses the node entirely,
        #: which the failure detector reports as a stall.
        self.speed = 1.0
        #: Accumulated scheduling credit of a throttled node (scheduler
        #: internal; see :mod:`repro.runtime.scheduler`).
        self.credit = 0.0

    def host_te(self, instance: TEInstance) -> None:
        if instance.key in self.te_instances:
            raise RuntimeExecutionError(
                f"node {self.node_id} already hosts TE {instance.key}"
            )
        instance.node_id = self.node_id
        self.te_instances[instance.key] = instance

    def host_se(self, instance: SEInstance) -> None:
        if instance.key in self.se_instances:
            raise RuntimeExecutionError(
                f"node {self.node_id} already hosts SE {instance.key}"
            )
        instance.node_id = self.node_id
        self.se_instances[instance.key] = instance

    def fail(self) -> None:
        """Kill the node: all hosted runtime state becomes unreachable."""
        self.alive = False

    def state_size_bytes(self) -> int:
        """Modelled memory footprint of all SE instances on this node."""
        return sum(
            se.element.estimated_size_bytes()
            for se in self.se_instances.values()
        )

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return (
            f"PhysicalNode({self.node_id} {status}, "
            f"tes={sorted(self.te_instances)}, "
            f"ses={sorted(self.se_instances)})"
        )

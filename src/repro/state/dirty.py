"""Dirty-state overlay used during asynchronous checkpointing (§5).

While a checkpoint of a state element is in progress, the main data
structure must stay immutable so that a consistent snapshot can be
serialised concurrently with processing. Updates arriving in that window
are recorded in a :class:`DirtyOverlay`; reads are first served by the
overlay and, only on a miss, by the main structure. When the checkpoint
has been persisted, the overlay is *consolidated* back into the main
structure (the only step that requires exclusive access, which is why the
paper reports the locking overhead to be proportional to the update rate
rather than the state size).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator


class _Tombstone:
    """Sentinel marking a key deleted while the overlay is active."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<TOMBSTONE>"


#: Sentinel stored in a :class:`DirtyOverlay` for deleted keys.
TOMBSTONE = _Tombstone()


class DirtyOverlay:
    """A key-indexed write buffer layered over a frozen main structure.

    The overlay is deliberately generic: every predefined SE maps its
    mutations onto ``(key, value)`` pairs (a vector uses the index, a
    matrix the ``(row, col)`` pair, a map the key itself), so one overlay
    implementation serves all of them.
    """

    __slots__ = ("_writes",)

    def __init__(self) -> None:
        self._writes: dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._writes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._writes

    def set(self, key: Hashable, value: Any) -> None:
        """Record a write to ``key``."""
        self._writes[key] = value

    def get(self, key: Hashable) -> Any:
        """Return the overlaid value for ``key``.

        Raises :class:`KeyError` if the key was not written while the
        overlay was active. Callers must treat a :data:`TOMBSTONE` result
        as "deleted".
        """
        return self._writes[key]

    def delete(self, key: Hashable) -> None:
        """Record a deletion of ``key`` (stored as a tombstone)."""
        self._writes[key] = TOMBSTONE

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate over ``(key, value-or-TOMBSTONE)`` pairs."""
        return iter(self._writes.items())

    def keys(self) -> Iterator[Hashable]:
        return iter(self._writes.keys())

    def clear(self) -> None:
        self._writes.clear()

"""Tests for the event loop and the cluster-lifetime simulation."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    EventLoop,
    LifetimeConfig,
    simulate_lifetime,
)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, fired.append, "c")
        loop.schedule(1.0, fired.append, "a")
        loop.schedule(2.0, fired.append, "b")
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_ties_fire_fifo(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "first")
        loop.schedule(1.0, fired.append, "second")
        loop.run()
        assert fired == ["first", "second"]

    def test_cancellation(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, fired.append, "never")
        event.cancel()
        loop.run()
        assert fired == []
        assert loop.pending == 0

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, "early")
        loop.schedule(5.0, fired.append, "late")
        loop.run_until(2.0)
        assert fired == ["early"]
        assert loop.now == 2.0
        assert loop.pending == 1

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n > 0:
                loop.schedule(1.0, chain, n - 1)

        loop.schedule(0.0, chain, 3)
        loop.run()
        assert fired == [3, 2, 1, 0]
        assert loop.now == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule(-1, print)

    def test_runaway_guard(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.1, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="exceeded"):
            loop.run(max_events=100)


class TestLifetime:
    def test_no_failures_full_availability(self):
        result = simulate_lifetime(LifetimeConfig(failures=()))
        assert result.availability == pytest.approx(1.0, abs=0.01)
        assert all(p.nodes_up == 4 for p in result.timeline)

    def test_failure_produces_a_dip_then_recovery(self):
        result = simulate_lifetime(LifetimeConfig(
            failures=((20.0, 0),), duration_s=80.0,
        ))
        by_t = {p.t: p for p in result.timeline}
        assert by_t[10.0].nodes_up == 4
        assert by_t[25.0].nodes_up == 3          # during recovery
        assert result.timeline[-1].nodes_up == 4  # recovered
        assert result.availability < 1.0

    def test_faster_strategy_shrinks_the_dip(self):
        slow = simulate_lifetime(LifetimeConfig(
            failures=((20.0, 0),), m_backups=1, n_recovering=1,
            duration_s=120.0,
        ))
        fast = simulate_lifetime(LifetimeConfig(
            failures=((20.0, 0),), m_backups=2, n_recovering=2,
            duration_s=120.0,
        ))
        assert fast.recovery_times[0] < slow.recovery_times[0]
        assert fast.lost_requests < slow.lost_requests
        assert fast.availability > slow.availability

    def test_deficit_matches_recovery_window(self):
        config = LifetimeConfig(failures=((10.0, 1),), duration_s=100.0)
        result = simulate_lifetime(config)
        # Lost requests ~ one node's served rate x recovery duration.
        per_node = min(
            config.per_node_offered,
            config.per_node_capacity * (1 - config.checkpoint_overhead),
        )
        expected = per_node * result.recovery_times[0]
        assert result.lost_requests == pytest.approx(expected,
                                                     rel=0.15)

    def test_multiple_failures(self):
        result = simulate_lifetime(LifetimeConfig(
            failures=((10.0, 0), (40.0, 2)), duration_s=120.0,
        ))
        assert len(result.recovery_times) == 2
        events = [p.event for p in result.timeline if p.event]
        assert len(events) == 4  # two failures + two recoveries

    def test_invalid_configs_rejected(self):
        with pytest.raises(SimulationError):
            simulate_lifetime(LifetimeConfig(n_nodes=0))
        with pytest.raises(SimulationError):
            simulate_lifetime(LifetimeConfig(failures=((1.0, 99),)))

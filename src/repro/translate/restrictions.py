"""Static enforcement of the paper's §4.1 program restrictions.

Beyond the structural rules (one SE per statement, merge-after-global),
translated programs must be:

* **deterministic** — replay-based recovery re-executes computation and
  downstream duplicate filtering assumes identical outputs, so programs
  "should not depend on system time or random input";
* **location independent** — TEs migrate between nodes, so programs
  "cannot make assumptions about the execution environment", e.g. local
  files, sockets or environment variables.

The checks are a conservative static scan over the method ASTs for
calls into the offending modules/builtins. They are heuristic (Python
cannot be fully sandboxed statically) but catch the realistic mistakes
with actionable errors.
"""

from __future__ import annotations

import ast

from repro.errors import TranslationError

#: Module roots whose use breaks determinism (§4.1).
_NONDETERMINISTIC_MODULES = frozenset({
    "random", "secrets", "uuid", "time", "datetime",
})

#: Module roots whose use breaks location independence (§4.1).
_ENVIRONMENT_MODULES = frozenset({
    "os", "socket", "subprocess", "pathlib", "tempfile", "shutil",
})

#: Builtins that read the execution environment.
_FORBIDDEN_BUILTINS = frozenset({"input", "open"})


def _call_root(node: ast.Call) -> str | None:
    """The leftmost name of a call target (``random.random`` → ``random``)."""
    target = node.func
    while isinstance(target, ast.Attribute):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id
    return None


def check_restrictions(fn: ast.FunctionDef, method: str) -> None:
    """Scan one method for §4.1 violations; raise on the first."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        root = _call_root(node)
        if root is None:
            continue
        if root in _NONDETERMINISTIC_MODULES:
            raise TranslationError(
                f"method {method!r} calls into {root!r}: translated "
                f"programs must be deterministic — recovery re-executes "
                f"computation and filters duplicates by identity (§4.1); "
                f"pass randomness/timestamps in as entry arguments "
                f"instead",
                lineno=node.lineno,
            )
        if root in _ENVIRONMENT_MODULES or root in _FORBIDDEN_BUILTINS:
            raise TranslationError(
                f"method {method!r} calls into {root!r}: translated "
                f"programs must be location independent — TEs run on "
                f"(and migrate between) arbitrary nodes and cannot rely "
                f"on local files, sockets or the OS environment (§4.1)",
                lineno=node.lineno,
            )

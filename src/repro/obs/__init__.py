"""Unified observability: metrics, tracing, events, profiling, flight.

Four pillars plus the event bus, wired through every layer behind the
existing step-hook/facade seams:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  primitives in an injectable :class:`MetricsRegistry` with a
  Prometheus text exporter.  Histogram buckets are *logical steps*;
  nothing in the registry touches the wall clock, so the deterministic
  core (§4.1) stays deterministic. On the multiprocess substrate each
  worker's registry shard streams back to the coordinator piggybacked
  on idle frames, so ``runtime.merged_metrics()`` is fresh *between*
  barriers, not only at them.
* :mod:`repro.obs.trace` — optional per-envelope causal tracing
  (``RuntimeConfig(trace=True)``): each envelope carries a trace id and
  the :class:`Tracer` reconstructs its hop list (TE, instance,
  queue-wait and service spans in logical steps, ``replayed`` marks).
  Works across process boundaries: workers record hops locally and
  ship shards the coordinator merges into one causal view.
* :mod:`repro.obs.profile` — opt-in wall-clock phase timers
  (``RuntimeConfig(profile=True)``): process, dispatch, serialize,
  wire wait, checkpoint, recovery. Layered *beside* the logical-time
  registry; never feeds back into execution.
* :mod:`repro.obs.flight` — a bounded per-process ring buffer of
  recent envelope digests, shipped in crash frames and persisted next
  to durable-run manifests for SIGKILL post-mortems.
* :mod:`repro.obs.events` — a typed, structured :class:`EventBus` that
  the engine, checkpoint manager, recovery supervisor, failure
  detector and chaos injector publish to instead of private logs,
  with JSON-lines export.

``repro obs`` (see :mod:`repro.obs.runner`) runs a workload with the
full stack enabled and renders metrics + traces + events; ``repro
top`` (see :mod:`repro.obs.top`) renders the live dashboard view.
"""

from repro.obs.events import Event, EventBus, JsonlExporter
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, render_dump
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.profile import PHASES, ProfileRegistry, profile_span
from repro.obs.trace import DEFAULT_SERVED_LIMIT, Hop, Trace, Tracer

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "DEFAULT_SERVED_LIMIT",
    "Event",
    "EventBus",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Hop",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "PHASES",
    "ProfileRegistry",
    "Trace",
    "Tracer",
    "profile_span",
    "render_dump",
]

"""Tests for the Naiad / Spark / Streaming Spark mechanism models."""

import pytest

from repro.baselines import NaiadModel, SparkModel, StreamingSparkModel
from repro.baselines.spark import SDGBatchModel
from repro.simulation import CheckpointPolicy, NodeParams, simulate_node

FAST = dict(duration_s=30.0)


def sdg_kv_result(offered, state_bytes):
    return simulate_node(
        offered, NodeParams(service_rate=65_000, state_bytes=state_bytes),
        CheckpointPolicy(mode="async", interval_s=10, disk_bw=400e6),
        **FAST,
    )


class TestNaiadCheckpointing:
    def test_small_state_parity_with_sdg(self):
        """Fig. 6: at 100 MB both systems serve ~65 k requests/s."""
        naiad = NaiadModel.nodisk().simulate(65_000, 100e6, **FAST)
        sdg = sdg_kv_result(65_000, 100e6)
        assert naiad.throughput == pytest.approx(sdg.throughput, rel=0.1)

    def test_disk_collapse_with_large_state(self):
        """Fig. 6: Naiad-Disk throughput collapses as state grows."""
        small = NaiadModel.disk().simulate(65_000, 100e6, **FAST)
        large = NaiadModel.disk().simulate(65_000, 2.5e9, **FAST)
        assert large.throughput < small.throughput * 0.5

    def test_nodisk_still_well_below_sdg_at_2_5gb(self):
        """Fig. 6: even on a RAM disk Naiad loses most of its throughput
        relative to the SDG at 2.5 GB (paper: 63% lower)."""
        naiad = NaiadModel.nodisk().simulate(65_000, 2.5e9, **FAST)
        sdg = sdg_kv_result(65_000, 2.5e9)
        assert naiad.throughput < sdg.throughput * 0.6

    def test_latency_spike_during_stop_the_world(self):
        naiad = NaiadModel.nodisk().simulate(40_000, 2.5e9, **FAST)
        sdg = sdg_kv_result(40_000, 2.5e9)
        assert naiad.p(95) > sdg.p(95) * 3


class TestNaiadBatching:
    def test_high_throughput_config_tops_the_chart(self):
        high = NaiadModel.high_throughput().wordcount_throughput(10.0)
        low = NaiadModel.low_latency().wordcount_throughput(10.0)
        assert high > low

    def test_high_throughput_collapses_below_100ms(self):
        """Fig. 8: Naiad-HighThroughput cannot support <100 ms windows."""
        model = NaiadModel.high_throughput()
        assert model.wordcount_throughput(0.05) == 0.0
        assert model.wordcount_throughput(1.0) > 0.0

    def test_low_latency_sustains_small_windows(self):
        model = NaiadModel.low_latency()
        assert model.wordcount_throughput(0.05) > 0.0


class TestStreamingSpark:
    def test_collapse_below_250ms(self):
        """Fig. 8: Streaming Spark's smallest sustainable window."""
        model = StreamingSparkModel()
        assert model.wordcount_throughput(0.1) == 0.0
        assert model.wordcount_throughput(0.25) > 0.0

    def test_peak_comparable_to_sdg(self):
        model = StreamingSparkModel()
        assert model.wordcount_throughput(10.0) == pytest.approx(
            model.service_rate, rel=0.1
        )

    def test_throughput_recovers_with_window(self):
        model = StreamingSparkModel()
        t1 = model.wordcount_throughput(0.3)
        t2 = model.wordcount_throughput(1.0)
        t3 = model.wordcount_throughput(10.0)
        assert t1 < t2 < t3


class TestSparkScaling:
    def test_both_scale_linearly(self):
        """Fig. 9: both systems scale ~linearly from 25 to 100 nodes."""
        spark = SparkModel()
        sdg = SDGBatchModel()
        for model in (spark, sdg):
            ratio = model.lr_throughput(100) / model.lr_throughput(25)
            assert ratio == pytest.approx(4.0, rel=0.15)

    def test_sdg_above_spark_at_every_size(self):
        spark = SparkModel()
        sdg = SDGBatchModel()
        for n in (25, 50, 75, 100):
            assert sdg.lr_throughput(n) > spark.lr_throughput(n)

    def test_recovery_by_recomputation_grows_with_history(self):
        spark = SparkModel()
        assert (spark.recovery_time(1e12, 10)
                > spark.recovery_time(1e11, 10))

    def test_recomputation_prohibitive_for_long_histories(self):
        """§7: recomputation is effective only when cheap."""
        spark = SparkModel()
        from repro.simulation import recovery_time

        checkpointed = recovery_time(4e9, 2, 2)
        recomputed = spark.recovery_time(1e12, 10)
        assert recomputed > checkpointed * 3

    def test_invalid_nodes_rejected(self):
        with pytest.raises(ValueError):
            SparkModel().recovery_time(1e9, 0)

"""Pass 2 — merge order-sensitivity check (``SDG302``).

A merge TE reconciles the gathered partial values of a ``global_``
access (§4.2 rule 5). The gather barrier delivers one value per
replica, but their **order is not defined** — it depends on scheduling,
instance count and recovery replay. A merge function must therefore be
insensitive to the order of its collection argument (the same
discipline Naiad demands of its vertices and SEEP of its upstream
backups: deterministic results regardless of delivery interleaving).

This is a conservative AST scan of every merge method reachable from
an entry. Inside loops that iterate the gathered collection it flags
accumulation through non-commutative/non-associative operators
(``-``, ``/``, ``//``, ``%``, ``**``, ``<<``, ``>>``, ``@``) — the
``acc -= cur``, ``acc = acc - cur`` and operand-swapped
``acc = cur - acc`` shapes — and, anywhere in the method, positional
indexing of the collection parameter itself (``gathered[0]`` picks an
arbitrary replica) or of a call over it (``sorted(gathered)[0]``
launders the same arbitrary pick through a transform).
Order-insensitive reductions (sums, maxes, elementwise means divided
*after* the loop) pass untouched, as every bundled application's
merge does.

The same scan powers positive certification: the capability layer
(:mod:`repro.analysis.capabilities`) calls
:func:`order_sensitive_sites` and only considers a merge for the
``COMMUTATIVE_MERGE`` flag when the scan finds nothing.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import ProgramModel

#: BinOp / AugAssign operators whose accumulation is order-sensitive.
_ORDER_SENSITIVE_OPS = (
    ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.MatMult,
)


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    for name, (fn_ast, collection_param) in model.merge_methods().items():
        _check_merge(fn_ast, name, collection_param, sink)


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


def _op_name(op: ast.operator) -> str:
    return {
        ast.Sub: "-", ast.Div: "/", ast.FloorDiv: "//", ast.Mod: "%",
        ast.Pow: "**", ast.LShift: "<<", ast.RShift: ">>",
        ast.MatMult: "@",
    }.get(type(op), type(op).__name__)


def _same_target(target: ast.expr, operand: ast.expr) -> bool:
    """``acc = acc - x`` / ``m[i] = m[i] - x``: operand is the target."""
    return ast.unparse(target) == ast.unparse(operand)


def order_sensitive_sites(
    fn_ast: ast.FunctionDef, collection_param: str,
) -> list[tuple[str, ast.AST, ast.operator | None]]:
    """Every order-sensitivity witness in one merge method.

    Returns ``(kind, node, op)`` triples with ``kind`` one of
    ``"index"`` (positional indexing of the collection itself),
    ``"laundered_index"`` (indexing a call over the collection, e.g.
    ``sorted(gathered)[0]``) or ``"accumulation"`` (non-commutative
    accumulation inside a loop over the collection; ``op`` is the
    operator). An empty list is the *positive* signal the capability
    certifier builds on — shared here so the warning pass and the
    certifier can never disagree about what is order-sensitive.
    """
    sites: list[tuple[str, ast.AST, ast.operator | None]] = []

    # Positional indexing of the gathered collection anywhere — direct,
    # or laundered through a call over it (sorted()/list()/reversed()
    # re-expose the arbitrary gather order as a positional pick).
    for node in ast.walk(fn_ast):
        if not isinstance(node, ast.Subscript):
            continue
        value = node.value
        if isinstance(value, ast.Name) and value.id == collection_param:
            sites.append(("index", node, None))
        elif isinstance(value, ast.Call) and _mentions(
            value, collection_param
        ):
            sites.append(("laundered_index", node, None))

    # Order-sensitive accumulation inside loops over the collection.
    # Both operand orders are accumulation: ``acc = acc - x`` and the
    # swapped ``acc = x - acc`` each fold the loop-carried value
    # through a non-commutative operator.
    for loop in ast.walk(fn_ast):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        if isinstance(loop, ast.For):
            if not _mentions(loop.iter, collection_param):
                continue
        elif not _mentions(loop.test, collection_param):
            continue
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, _ORDER_SENSITIVE_OPS
            ):
                sites.append(("accumulation", node, node.op))
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, _ORDER_SENSITIVE_OPS)
                and (
                    _same_target(node.targets[0], node.value.left)
                    or _same_target(node.targets[0], node.value.right)
                )
            ):
                sites.append(("accumulation", node, node.value.op))
    return sites


def _check_merge(fn_ast: ast.FunctionDef, method: str,
                 collection_param: str, sink: DiagnosticSink) -> None:
    for kind, node, op in order_sensitive_sites(fn_ast, collection_param):
        if kind == "index":
            sink.emit(
                "SDG302",
                f"merge method {method!r} indexes the gathered "
                f"collection {collection_param!r} by position; the "
                f"gather order of partial values is not deterministic, "
                f"so position selects an arbitrary replica",
                lineno=node.lineno, col=node.col_offset, origin=method,
                hint="iterate the collection and combine values with an "
                     "order-insensitive reduction instead of indexing",
            )
        elif kind == "laundered_index":
            sink.emit(
                "SDG302",
                f"merge method {method!r} indexes a transform of the "
                f"gathered collection {collection_param!r} by position "
                f"({ast.unparse(node.value)!r}); sorting or reshaping "
                f"the collection launders but does not remove the "
                f"dependence on the arbitrary gather order",
                lineno=node.lineno, col=node.col_offset, origin=method,
                hint="combine the gathered values with an "
                     "order-insensitive reduction instead of selecting "
                     "one by position",
            )
        else:
            _flag_accumulation(sink, method, collection_param, node, op)


def _flag_accumulation(sink: DiagnosticSink, method: str,
                       collection_param: str, node: ast.stmt,
                       op: ast.operator) -> None:
    sink.emit(
        "SDG302",
        f"merge method {method!r} accumulates with {_op_name(op)!r} "
        f"while iterating the gathered collection "
        f"{collection_param!r}; the result depends on the replica "
        f"delivery order, which is not deterministic across runs or "
        f"recovery replays",
        lineno=node.lineno, col=node.col_offset, origin=method,
        hint="restructure the reduction to be commutative (sum the "
             "terms, then apply the non-commutative step once after "
             "the loop)",
    )

"""Data-item envelopes and channel identifiers.

Every payload travelling a dataflow edge is wrapped in an
:class:`Envelope` carrying the metadata the paper's recovery mechanism
needs (§5): a producer-side scalar timestamp per channel (used for
duplicate detection after replay) and, for global-access round trips, a
request id plus the expected response count for the gather barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class _NoResponse:
    """Marker emitted on gather edges when a TE produced no output.

    Without it, a merge barrier would wait forever for an instance whose
    task function returned ``None`` for a given request.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<NO_RESPONSE>"

    def __reduce__(self):
        # The marker is compared by identity (``payload is NO_RESPONSE``)
        # so crossing a pickle boundary — the multiprocess substrate's
        # wire codec — must yield the singleton, not a fresh instance.
        return (_restore_no_response, ())


def _restore_no_response() -> "_NoResponse":
    return NO_RESPONSE


NO_RESPONSE = _NoResponse()


class Batch:
    """A coalesced run of consecutive payloads from one channel.

    Built by the transport when capability-driven coalescing is on
    (``RuntimeConfig(optimize=True)`` plus a ``COALESCIBLE_DISPATCH``
    certificate): consecutive envelopes on the same channel are merged
    into a single delivery whose payload is a ``Batch``. ``items``
    holds ``(ts, payload)`` pairs in channel order; the carrying
    envelope's ``ts`` is the *newest* item's, so whole-batch duplicate
    detection stays conservative while the engine re-checks each item
    against ``last_seen`` individually (crash replay can re-deliver a
    prefix that was already processed).
    """

    __slots__ = ("items",)

    def __init__(self, items: list[tuple[int, Any]]) -> None:
        self.items = items

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Batch of {len(self.items)}>"

    def __reduce__(self):
        return (Batch, (self.items,))


def envelope_weight(envelope: "Envelope") -> int:
    """Logical item count carried by one envelope (1 unless batched)."""
    payload = envelope.payload
    return len(payload.items) if type(payload) is Batch else 1


@dataclass(frozen=True)
class ChannelId:
    """Identifies one point-to-point stream between two TE instances.

    ``edge_index`` is the edge's position in ``sdg.dataflows`` — or the
    sentinel ``-1`` for the external-input channel into an entry TE.
    """

    edge_index: int
    src_te: str
    src_instance: int
    dst_te: str
    dst_instance: int

    def reroute(self, dst_instance: int) -> "ChannelId":
        return ChannelId(self.edge_index, self.src_te, self.src_instance,
                         self.dst_te, dst_instance)


#: edge_index used for external input injected into entry TEs.
INPUT_EDGE = -1

#: edge_index used for the coordinator<->worker wire channels of the
#: multiprocess substrate; ``blocked_channels()`` reports congested wire
#: channels under this sentinel so callers can tell transport-level
#: backpressure (real edges) from wire-level backpressure.
WIRE_EDGE = -2


@dataclass(frozen=True)
class Envelope:
    """One data item in flight on a specific channel."""

    payload: Any
    #: Producer-side sequence number on this channel; strictly increasing.
    ts: int
    channel: ChannelId
    #: Correlates a broadcast request with its gathered responses.
    request_id: int | None = None
    #: Number of responses the gather barrier must collect.
    expected_responses: int | None = None
    #: Causal trace id (``RuntimeConfig(trace=True)``); rides the
    #: envelope through dispatch fan-out, repartition re-routing and
    #: crash replay. ``None`` when tracing is off — the hot path then
    #: pays a single attribute default, nothing else.
    trace_id: int | None = None

    def with_channel(self, channel: ChannelId, ts: int) -> "Envelope":
        """Rewrap the same logical item for delivery on another channel."""
        return Envelope(payload=self.payload, ts=ts, channel=channel,
                        request_id=self.request_id,
                        expected_responses=self.expected_responses,
                        trace_id=self.trace_id)

    # -- wire serialisation ----------------------------------------------
    #
    # The multiprocess substrate pickles envelopes across process
    # boundaries. ``to_wire``/``from_wire`` pin the field order as an
    # explicit tuple so the contract survives dataclass refactors
    # (added fields, __slots__, reordering) — the wire tests assert
    # both this path and plain pickling stay equivalent.

    WIRE_FIELDS = ("payload", "ts", "channel", "request_id",
                   "expected_responses", "trace_id")

    def to_wire(self) -> tuple:
        """The envelope as a positional tuple (channel flattened)."""
        return (self.payload, self.ts,
                (self.channel.edge_index, self.channel.src_te,
                 self.channel.src_instance, self.channel.dst_te,
                 self.channel.dst_instance),
                self.request_id, self.expected_responses, self.trace_id)

    @classmethod
    def from_wire(cls, wired: tuple) -> "Envelope":
        """Rebuild an envelope from :meth:`to_wire` output."""
        payload, ts, channel, request_id, expected, trace_id = wired
        return cls(payload=payload, ts=ts, channel=ChannelId(*channel),
                   request_id=request_id, expected_responses=expected,
                   trace_id=trace_id)

"""The deployment layer: instance materialisation and placement.

A validated SDG is *materialised* (§3.3): every TE/SE spec becomes one
or more instances grouped onto :class:`~repro.runtime.node.PhysicalNode`
failure domains by the four-step allocation algorithm. The
:class:`Topology` owns everything structural that results — the slot
lists (with ``None`` holes for failed instances), the node map, the
routing partitioners and their repartition epochs — and performs the
structural mutations: reactive scale-up growth, repartitioning, node
failure, and replacement installation during recovery.

What the topology deliberately does *not* do is move data: draining and
re-routing queued envelopes after a repartition is the engine's job
(via the transport), so :meth:`Topology.repartition` hands the drained
envelopes back to its caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.allocation import allocate
from repro.core.elements import StateKind
from repro.core.graph import SDG
from repro.errors import RuntimeExecutionError
from repro.runtime.envelope import Envelope
from repro.runtime.instances import SEInstance, TEInstance
from repro.runtime.node import PhysicalNode
from repro.state import HashPartitioner
from repro.state.base import StateElement

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import RuntimeConfig


@dataclass(frozen=True)
class WorkerPlacement:
    """The deploy-time assignment of logical nodes to worker processes.

    The multiprocess substrate is shared-nothing: a worker owns every
    TE instance — and, transitively, every StateElement partition —
    hosted on its assigned nodes, and nothing else. Because a stateful
    TE instance is always co-located with its SE instance on one
    logical node, mapping *nodes* to workers automatically keeps each
    partition's state and its accessing task on the same process, so
    workers never contend on state (the shared-nothing discipline of
    the state-access-patterns taxonomy).
    """

    n_workers: int
    #: node id -> worker index.
    node_worker: dict[int, int] = field(default_factory=dict)
    #: (te_name, instance_index) -> worker index.
    instance_worker: dict[tuple[str, int], int] = field(
        default_factory=dict)

    def owner_of(self, te_name: str, index: int) -> int:
        """The worker owning TE instance ``(te_name, index)``."""
        return self.instance_worker[(te_name, index)]

    def worker_of_node(self, node_id: int) -> int:
        return self.node_worker[node_id]

    def instances_of(self, worker: int) -> list[tuple[str, int]]:
        """The instance keys owned by ``worker``, in deployment order."""
        return [key for key, w in self.instance_worker.items()
                if w == worker]


class Topology:
    """Owns the materialised instances, nodes, partitioners and epochs."""

    def __init__(self, sdg: SDG, config: "RuntimeConfig") -> None:
        self.sdg = sdg
        self.config = config
        self.nodes: dict[int, PhysicalNode] = {}
        self._te_instances: dict[str, list[TEInstance | None]] = {}
        self._se_instances: dict[str, list[SEInstance | None]] = {}
        self._partitioners: dict[str, HashPartitioner] = {}
        #: Per-SE repartition counter. A checkpoint records the epoch it
        #: was taken under; restoring it under a different partitioning
        #: would resurrect keys the instance no longer owns, so recovery
        #: refuses stale-epoch checkpoints.
        self._se_epochs: dict[str, int] = {}
        self._node_key_map: dict[tuple[int, int], int] = {}
        self._next_node_id = 0
        #: Stateless fallback partitioners for keyed dispatch into TEs
        #: without a partitioned SE, cached per fan-out.
        self._fallbacks: dict[int, HashPartitioner] = {}
        #: Certified ProgramCapabilities, attached by the runtime when
        #: deploying with ``optimize=True`` (``None`` otherwise). Lives
        #: on the topology so forked substrate workers inherit it.
        self.capabilities = None

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def materialise(self) -> None:
        """Allocate and instantiate every element of the SDG."""
        base = allocate(self.sdg)

        for se in self.sdg.states.values():
            custom = self.config.partitioners.get(se.name)
            if custom is not None:
                if se.kind is not StateKind.PARTITIONED:
                    raise RuntimeExecutionError(
                        f"SE {se.name!r} is {se.kind.value}; only "
                        f"partitioned SEs take a custom partitioner"
                    )
                n = custom.n_partitions
                configured = self.config.se_instances.get(se.name)
                if configured is not None and configured != n:
                    raise RuntimeExecutionError(
                        f"SE {se.name!r}: se_instances={configured} "
                        f"conflicts with the partitioner's "
                        f"{n} partitions"
                    )
            else:
                n = max(1, self.config.se_instances.get(se.name, 1))
            self._se_instances[se.name] = [
                SEInstance(se, i) for i in range(n)
            ]
            if se.kind is StateKind.PARTITIONED:
                self._partitioners[se.name] = (
                    custom if custom is not None else HashPartitioner(n)
                )

        for te in self.sdg.tasks.values():
            if te.state is not None:
                n = len(self._se_instances[te.state])
            else:
                n = max(1, self.config.te_instances.get(te.name, 1))
            self._te_instances[te.name] = [
                TEInstance(te, i, se_instance=None) for i in range(n)
            ]

        # Bind stateful TE instances to the same-index SE instance and
        # group everything onto nodes following the base allocation.
        for se_name, instances in self._se_instances.items():
            for se_inst in instances:
                node = self.node_for(base.node_of[se_name], se_inst.index)
                node.host_se(se_inst)
        for te_name, instances in self._te_instances.items():
            spec = self.sdg.task(te_name)
            for te_inst in instances:
                if spec.state is not None:
                    se_inst = self._se_instances[spec.state][te_inst.index]
                    te_inst.se_instance = se_inst
                    node = self.nodes[se_inst.node_id]
                else:
                    node = self.node_for(
                        base.node_of[te_name], te_inst.index
                    )
                node.host_te(te_inst)

    def node_for(self, base_node: int, replica: int) -> PhysicalNode:
        """The node hosting replica ``replica`` of allocation slot
        ``base_node``, created on first use."""
        key = (base_node, replica)
        if key not in self._node_key_map:
            node_id = self._next_node_id
            self._next_node_id += 1
            self._node_key_map[key] = node_id
            self.nodes[node_id] = PhysicalNode(node_id)
        return self.nodes[self._node_key_map[key]]

    def fresh_node(self) -> PhysicalNode:
        """A brand-new empty node (scale-up and recovery targets)."""
        node_id = self._next_node_id
        self._next_node_id += 1
        node = PhysicalNode(node_id)
        self.nodes[node_id] = node
        return node

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def te_instances(self, te: str) -> list[TEInstance]:
        """Live instances of TE ``te`` (failed slots omitted)."""
        return [i for i in self._te_instances[te] if i is not None]

    def te_instance(self, te: str, index: int) -> TEInstance | None:
        instances = self._te_instances[te]
        return instances[index] if index < len(instances) else None

    def te_slot_count(self, te: str) -> int:
        return len(self._te_instances[te])

    def se_instances(self, se: str) -> list[SEInstance]:
        return [i for i in self._se_instances[se] if i is not None]

    def se_instance(self, se: str, index: int) -> SEInstance | None:
        instances = self._se_instances[se]
        return instances[index] if index < len(instances) else None

    def all_te_instances(self) -> Iterator[TEInstance]:
        for instances in self._te_instances.values():
            for instance in instances:
                if instance is not None:
                    yield instance

    def alive_nodes(self) -> list[PhysicalNode]:
        return [n for n in self.nodes.values() if n.alive]

    def is_idle(self) -> bool:
        """Whether no envelope is waiting in any live inbox."""
        return all(
            not inst.inbox
            for insts in self._te_instances.values()
            for inst in insts
            if inst is not None and self.nodes[inst.node_id].alive
        )

    # ------------------------------------------------------------------
    # Worker placement (multiprocess substrate)
    # ------------------------------------------------------------------

    def plan_workers(self, n_workers: int) -> WorkerPlacement:
        """Assign every materialised node to one of ``n_workers`` workers.

        Nodes are distributed round-robin in node-id (deployment)
        order, which keeps the assignment deterministic and balances
        partitions across workers for the common symmetric layouts.
        Every TE instance inherits its hosting node's worker, so state
        ownership follows placement with no further bookkeeping.
        """
        if n_workers < 1:
            raise RuntimeExecutionError(
                f"worker count must be >= 1, got {n_workers}"
            )
        node_worker = {
            node_id: i % n_workers
            for i, node_id in enumerate(sorted(self.nodes))
        }
        instance_worker = {
            inst.key: node_worker[inst.node_id]
            for inst in self.all_te_instances()
        }
        return WorkerPlacement(n_workers=n_workers,
                               node_worker=node_worker,
                               instance_worker=instance_worker)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def partitioner(self, se_name: str) -> HashPartitioner:
        return self._partitioners[se_name]

    def keyed_index(self, spec, key) -> int:
        """Partition index for keyed dispatch into TE ``spec``."""
        if spec.state is not None and spec.state in self._partitioners:
            return self._partitioners[spec.state].partition(key)
        slots = self.te_slot_count(spec.name)
        fallback = self._fallbacks.get(slots)
        if fallback is None:
            fallback = self._fallbacks[slots] = HashPartitioner(slots)
        return fallback.partition(key)

    def set_partitioner(self, se_name: str,
                        partitioner: HashPartitioner) -> None:
        """Replace the routing partitioner of a partitioned SE.

        Used by m-to-n recovery when a failed SE instance is restored as
        ``n`` partitions, changing the partition count.
        """
        self._partitioners[se_name] = partitioner
        self._se_epochs[se_name] = self.se_epoch(se_name) + 1

    def se_epoch(self, se_name: str) -> int:
        """The SE's current partitioning epoch (0 until repartitioned)."""
        return self._se_epochs.get(se_name, 0)

    # ------------------------------------------------------------------
    # Failure and replacement (used by repro.recovery)
    # ------------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Kill a node: inboxes, SE contents and output buffers are lost."""
        node = self.nodes[node_id]
        node.fail()
        for key in list(node.te_instances):
            te_name, index = key
            self._te_instances[te_name][index] = None
        for key in list(node.se_instances):
            se_name, index = key
            self._se_instances[se_name][index] = None

    def install_replacement(
        self,
        te_replacements: list[TEInstance],
        se_replacements: list[SEInstance],
    ) -> PhysicalNode:
        """Host replacement instances on a fresh node (recovery R-steps).

        Slot lists grow on demand so that m-to-n recovery can restore a
        single failed instance as several new partitioned instances.
        """
        node = self.fresh_node()
        for se_inst in se_replacements:
            slots = self._se_instances[se_inst.name]
            while len(slots) <= se_inst.index:
                slots.append(None)
            slots[se_inst.index] = se_inst
            node.host_se(se_inst)
        for te_inst in te_replacements:
            spec = te_inst.spec
            if spec.state is not None:
                te_inst.se_instance = self._se_instances[spec.state][
                    te_inst.index
                ]
            slots = self._te_instances[te_inst.name]
            while len(slots) <= te_inst.index:
                slots.append(None)
            slots[te_inst.index] = te_inst
            node.host_te(te_inst)
        return node

    # ------------------------------------------------------------------
    # Growth (reactive scaling, §3.3)
    # ------------------------------------------------------------------

    def add_stateless_instance(self, te_name: str) -> TEInstance:
        """Append one instance to a stateless TE on a fresh node."""
        spec = self.sdg.task(te_name)
        instance = TEInstance(spec, self.te_slot_count(te_name))
        self._te_instances[te_name].append(instance)
        self.fresh_node().host_te(instance)
        return instance

    def add_partial_instance(self, se_name: str) -> None:
        """Create one more partial replica and bind new TE instances."""
        spec = self.sdg.state(se_name)
        index = len(self._se_instances[se_name])
        se_inst = SEInstance(spec, index)
        self._se_instances[se_name].append(se_inst)
        node = self.fresh_node()
        node.host_se(se_inst)
        for te in self.sdg.tasks_accessing(se_name):
            te_inst = TEInstance(te, index, se_instance=se_inst)
            self._te_instances[te.name].append(te_inst)
            node.host_te(te_inst)

    def repartition(self, se_name: str, n_new: int) -> list[Envelope]:
        """Re-split a partitioned SE over ``n_new`` instances.

        Queued envelopes for the accessing TEs are drained and returned
        so the engine can re-route them under the new partitioner
        (keyed items must still meet their partition).
        """
        spec = self.sdg.state(se_name)
        old_instances = self.se_instances(se_name)
        if len(old_instances) != len(self._se_instances[se_name]):
            raise RuntimeExecutionError(
                f"cannot repartition SE {se_name!r} while an instance is "
                f"failed; recover first"
            )
        if any(inst.element.checkpoint_active for inst in old_instances):
            raise RuntimeExecutionError(
                f"cannot repartition SE {se_name!r} while a checkpoint "
                f"is in progress; complete or abort it first"
            )
        merged: StateElement = type(old_instances[0].element).merge_partitions(
            [inst.element for inst in old_instances]
        )
        # Rescale the *existing* strategy; a RangePartitioner refuses
        # (its boundaries are semantic) and the scale-up fails loudly.
        partitioner = self._partitioners[se_name].rescaled(n_new)
        self.set_partitioner(se_name, partitioner)

        pending: list[Envelope] = []
        accessing = self.sdg.tasks_accessing(se_name)
        for te in accessing:
            for te_inst in self.te_instances(te.name):
                while te_inst.inbox:
                    pending.append(te_inst.inbox.popleft())
                te_inst.queued_items = 0

        for index in range(n_new):
            part = merged.extract_partition(partitioner, index)
            if index < len(self._se_instances[se_name]):
                se_inst = self._se_instances[se_name][index]
                se_inst.element = part
            else:
                se_inst = SEInstance(spec, index, element=part)
                self._se_instances[se_name].append(se_inst)
                node = self.fresh_node()
                node.host_se(se_inst)
                for te in accessing:
                    te_inst = TEInstance(te, index, se_instance=se_inst)
                    self._te_instances[te.name].append(te_inst)
                    node.host_te(te_inst)
        return pending

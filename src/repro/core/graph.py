"""The stateful dataflow graph container.

An :class:`SDG` collects task-element and state-element specs plus the
dataflow edges between TEs. It offers the structural queries used by
validation (§3.1 invariants), allocation (§3.3, which needs cycles and
access edges) and the runtime (successors and entry points).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.core.dispatch import Dispatch
from repro.core.elements import (
    AccessMode,
    DataflowEdge,
    StateElementSpec,
    StateKind,
    TaskElementSpec,
    TaskFn,
)
from repro.errors import ValidationError
from repro.state.base import StateElement


class SDG:
    """A stateful dataflow graph: TEs, SEs, access and dataflow edges."""

    def __init__(self, name: str = "sdg") -> None:
        self.name = name
        self._tasks: dict[str, TaskElementSpec] = {}
        self._states: dict[str, StateElementSpec] = {}
        self._dataflows: list[DataflowEdge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_state(
        self,
        name: str,
        factory: Callable[[], StateElement],
        kind: StateKind = StateKind.PARTITIONED,
        partition_by: str | None = None,
    ) -> StateElementSpec:
        """Declare a state element. Returns its spec."""
        if name in self._states:
            raise ValidationError(f"duplicate state element {name!r}")
        if name in self._tasks:
            raise ValidationError(f"{name!r} already names a task element")
        spec = StateElementSpec(
            name=name, kind=kind, factory=factory, partition_by=partition_by
        )
        self._states[name] = spec
        return spec

    def add_task(
        self,
        name: str,
        fn: TaskFn,
        state: str | None = None,
        access: AccessMode = AccessMode.NONE,
        is_entry: bool = False,
        is_merge: bool = False,
        entry_key_fn: Callable[[Any], Hashable] | None = None,
        entry_key_name: str | None = None,
    ) -> TaskElementSpec:
        """Declare a task element. Returns its spec.

        The access edge is checked immediately: the named SE must already
        have been declared (declare SEs first).
        """
        if name in self._tasks:
            raise ValidationError(f"duplicate task element {name!r}")
        if name in self._states:
            raise ValidationError(f"{name!r} already names a state element")
        if state is not None and state not in self._states:
            raise ValidationError(
                f"TE {name!r} accesses unknown SE {state!r}"
            )
        spec = TaskElementSpec(
            name=name, fn=fn, state=state, access=access,
            is_entry=is_entry, is_merge=is_merge,
            entry_key_fn=entry_key_fn, entry_key_name=entry_key_name,
        )
        self._tasks[name] = spec
        return spec

    def connect(
        self,
        src: str,
        dst: str,
        dispatch: Dispatch = Dispatch.ONE_TO_ANY,
        key_fn: Callable[[Any], Hashable] | None = None,
        key_name: str | None = None,
    ) -> DataflowEdge:
        """Add a dataflow edge from TE ``src`` to TE ``dst``."""
        for endpoint in (src, dst):
            if endpoint not in self._tasks:
                raise ValidationError(
                    f"dataflow endpoint {endpoint!r} is not a task element"
                )
        edge = DataflowEdge(
            src=src, dst=dst, dispatch=dispatch,
            key_fn=key_fn, key_name=key_name,
        )
        self._dataflows.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def tasks(self) -> dict[str, TaskElementSpec]:
        return dict(self._tasks)

    @property
    def states(self) -> dict[str, StateElementSpec]:
        return dict(self._states)

    @property
    def dataflows(self) -> list[DataflowEdge]:
        return list(self._dataflows)

    def task(self, name: str) -> TaskElementSpec:
        return self._tasks[name]

    def state(self, name: str) -> StateElementSpec:
        return self._states[name]

    def entries(self) -> list[TaskElementSpec]:
        """TEs marked as program entry points (one per entry method)."""
        return [t for t in self._tasks.values() if t.is_entry]

    def successors(self, te: str) -> list[DataflowEdge]:
        """Outgoing dataflow edges of ``te``."""
        return [e for e in self._dataflows if e.src == te]

    def predecessors(self, te: str) -> list[DataflowEdge]:
        """Incoming dataflow edges of ``te``."""
        return [e for e in self._dataflows if e.dst == te]

    def tasks_accessing(self, se: str) -> list[TaskElementSpec]:
        """All TEs with an access edge to state element ``se``."""
        return [t for t in self._tasks.values() if t.state == se]

    def se_of(self, te: str) -> StateElementSpec | None:
        """The state element accessed by TE ``te`` (None if stateless)."""
        state = self._tasks[te].state
        return self._states[state] if state is not None else None

    # ------------------------------------------------------------------
    # Cycle detection (for iteration support and allocation step 1)
    # ------------------------------------------------------------------

    def cycles(self) -> list[set[str]]:
        """Strongly connected components with a cycle, as TE-name sets.

        Tarjan's algorithm over the TE dataflow graph; an SCC counts as a
        cycle if it has more than one TE or a self-loop.
        """
        index_counter = [0]
        indices: dict[str, int] = {}
        lowlinks: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[set[str]] = []
        adjacency: dict[str, list[str]] = {t: [] for t in self._tasks}
        for edge in self._dataflows:
            adjacency[edge.src].append(edge.dst)

        def strongconnect(node: str) -> None:
            # Iterative Tarjan to avoid recursion limits on long pipelines.
            work = [(node, iter(adjacency[node]))]
            indices[node] = lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, neighbours = work[-1]
                advanced = False
                for neighbour in neighbours:
                    if neighbour not in indices:
                        indices[neighbour] = lowlinks[neighbour] = (
                            index_counter[0]
                        )
                        index_counter[0] += 1
                        stack.append(neighbour)
                        on_stack.add(neighbour)
                        work.append((neighbour, iter(adjacency[neighbour])))
                        advanced = True
                        break
                    if neighbour in on_stack:
                        lowlinks[current] = min(
                            lowlinks[current], indices[neighbour]
                        )
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent],
                                           lowlinks[current])
                if lowlinks[current] == indices[current]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == current:
                            break
                    has_self_loop = any(
                        e.src == e.dst and e.src in component
                        for e in self._dataflows
                    )
                    if len(component) > 1 or has_self_loop:
                        sccs.append(component)

        for task_name in self._tasks:
            if task_name not in indices:
                strongconnect(task_name)
        return sccs

    def reachable_from_entries(self) -> set[str]:
        """TE names reachable via dataflow edges from any entry TE."""
        frontier = [t.name for t in self.entries()]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for edge in self.successors(current):
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        return seen

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; see :mod:`repro.core.validation`."""
        from repro.core.validation import validate

        validate(self)

    def to_dot(self) -> str:
        """Render the SDG in Graphviz dot format (TEs boxes, SEs ovals)."""
        lines = [f"digraph {self.name} {{", "  rankdir=LR;"]
        for se in self._states.values():
            style = "dashed" if se.kind is StateKind.PARTIAL else "solid"
            lines.append(
                f'  "{se.name}" [shape=ellipse style={style} '
                f'label="{se.name}\\n({se.kind.value})"];'
            )
        for te in self._tasks.values():
            peripheries = 2 if te.is_entry else 1
            lines.append(
                f'  "{te.name}" [shape=box peripheries={peripheries}];'
            )
            if te.state is not None:
                lines.append(
                    f'  "{te.name}" -> "{te.state}" [style=dotted '
                    f'label="{te.access.value}"];'
                )
        for edge in self._dataflows:
            label = edge.dispatch.value
            if edge.key_name:
                label += f"({edge.key_name})"
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SDG({self.name!r}, tasks={len(self._tasks)}, "
            f"states={len(self._states)}, dataflows={len(self._dataflows)})"
        )

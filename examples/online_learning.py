"""Online machine learning with partial state: logistic regression.

The model weights are a *partial* SE: each replica trains independently
on its share of the stream (high-throughput local SGD), and reading the
model is a *global* access that averages the replicas behind a merge
barrier — the same partial-state pattern as the paper's LR (§6.2).

Run with:

    python examples/online_learning.py
"""

from repro.apps import LogisticRegression
from repro.apps.logistic_regression import sigmoid
from repro.workloads import LabelledPoints


def main():
    result = LogisticRegression.translate()
    info = result.entry_info("get_model")
    print("get_model pipeline:",
          " -> ".join(info.te_names),
          "(broadcast, then merge barrier)\n")

    app = LogisticRegression.launch(weights=4)
    points = LabelledPoints(dimensions=6, margin=1.5, noise=0.5, seed=2)
    data = list(points.points(600))

    for epoch in range(3):
        for features, label in data:
            app.train(features, label, 0.5)
        app.run()
        app.get_model()
        app.run()
        model = app.results("get_model")[-1]

        def predict(features, model=model):
            return sigmoid(sum(m * f for m, f in zip(model, features)))

        correct = sum(
            1 for features, label in data
            if (predict(features) > 0.5) == bool(label)
        )
        print(f"epoch {epoch + 1}: training accuracy "
              f"{correct / len(data):.1%} "
              f"(model averaged over 4 replicas)")

    replicas = [w.to_list() for w in app.state_of("weights")]
    print(f"\nreplica weight vectors diverge independently: "
          f"first weights = "
          f"{[round(w[0], 3) if w else 0.0 for w in replicas]}")
    holdout = points.accuracy_of(predict)
    print(f"holdout accuracy: {holdout:.1%}")


if __name__ == "__main__":
    main()

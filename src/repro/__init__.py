"""repro — Stateful Dataflow Graphs (SDGs).

A reproduction of *"Making State Explicit for Imperative Big Data
Processing"* (Castro Fernandez, Migliavacca, Kalyvianaki, Pietzuch —
USENIX ATC 2014).

Quickstart::

    from repro import SDGProgram, Partitioned, entry
    from repro.state import KeyValueMap

    class Store(SDGProgram):
        table = Partitioned(KeyValueMap, key="key")

        @entry
        def put(self, key, value):
            self.table.put(key, value)

        @entry
        def get(self, key):
            return self.table.get(key)

    app = Store.launch(table=4)   # 4 partitions, 4 logical nodes
    app.put("answer", 42)
    app.get("answer")
    app.run()
    assert app.results("get") == [42]

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-figure reproductions.
"""

from repro.annotations import (
    Partial,
    Partitioned,
    collection,
    entry,
    global_,
)
from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.errors import (
    AllocationError,
    RecoveryError,
    RuntimeExecutionError,
    SDGError,
    StateError,
    TranslationError,
    ValidationError,
)
from repro.program import BoundProgram, SDGProgram
from repro.runtime import Runtime, RuntimeConfig
from repro.translate import TranslationResult, translate

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "AllocationError",
    "BoundProgram",
    "Dispatch",
    "Partial",
    "Partitioned",
    "RecoveryError",
    "Runtime",
    "RuntimeConfig",
    "RuntimeExecutionError",
    "SDG",
    "SDGError",
    "SDGProgram",
    "StateError",
    "StateKind",
    "TranslationError",
    "TranslationResult",
    "ValidationError",
    "collection",
    "entry",
    "global_",
    "translate",
    "__version__",
]

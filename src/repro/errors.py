"""Exception hierarchy for the SDG reproduction.

Every error raised by the library derives from :class:`SDGError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the phase that failed (translation,
validation, runtime, recovery).
"""

from __future__ import annotations


class SDGError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TranslationError(SDGError):
    """Raised when an imperative program cannot be translated to an SDG.

    This covers violations of the paper's §4.1 program restrictions
    (explicit state classes, side-effect-free parallelism, determinism)
    as well as structural problems found during static analysis.
    """

    def __init__(self, message: str, *, lineno: int | None = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno


class ValidationError(SDGError):
    """Raised when an SDG violates a structural invariant.

    Examples: a task element with access edges to two different state
    elements (access edges must be a partial function, §3.1), or task
    elements accessing one partitioned state element with conflicting
    partitioning strategies (§3.2).
    """


class AllocationError(SDGError):
    """Raised when TE/SE instances cannot be mapped onto cluster nodes."""


class RuntimeExecutionError(SDGError):
    """Raised when the pipelined runtime fails while processing data."""


class StateError(SDGError):
    """Raised on invalid operations against a state element.

    Examples: partitioning a matrix by row after it was already accessed
    by column, or consolidating dirty state when no checkpoint is active.
    """


class RecoveryError(SDGError):
    """Raised when checkpointing, backup or restore cannot proceed."""


class StaleCheckpointError(RecoveryError):
    """Raised when a checkpoint was captured under a superseded
    partitioning epoch.

    Restoring it would resurrect keys the instance no longer owns and
    miss keys it gained. The :class:`~repro.recovery.supervisor.
    RecoverySupervisor` reacts by falling back to pure log-replay
    recovery instead of restoring the stale snapshot.
    """


class BackupIntegrityError(RecoveryError):
    """Raised when stored checkpoint chunks fail verification.

    Covers missing chunks (a backup target offline or data lost) and
    CRC-32 checksum mismatches (corrupted chunk payloads). Restores must
    never silently proceed with partial or tampered state.
    """


class ChaosError(SDGError):
    """Raised on invalid fault plans or fault-injection misuse."""


class DurabilityError(SDGError):
    """Raised when a durable run directory cannot be used.

    Covers a missing or half-formed run manifest, a schema-version or
    program-fingerprint mismatch between the manifest and the code
    resuming it, and a restored state whose fingerprint disagrees with
    the hash the manifest committed for that epoch.
    """


class SimulationError(SDGError):
    """Raised by the discrete-event cluster simulator on invalid input."""

"""Table 1 — design space of data-parallel processing frameworks.

Regenerates the classification table and checks the claim it encodes:
SDGs are the only point in the space combining an imperative model,
large explicit state with fine-grained updates, pipelined low-latency
execution, iteration, and asynchronous local checkpointing.
"""

from repro.designspace import TABLE_1, YES, frameworks_with, render_table


def test_table1_designspace(benchmark):
    table = benchmark(render_table)
    print()
    print("=== Table 1: design space ===")
    print(table)

    assert len(TABLE_1) == 15
    unique = frameworks_with(
        programming_model="imperative",
        state_representation="explicit",
        large_state=YES,
        fine_grained_updates=YES,
        execution="pipelined",
        low_latency=YES,
        iteration=YES,
        failure_recovery="async. local checkpoints",
    )
    assert [row.system for row in unique] == ["SDG"]

    # Sanity of neighbouring rows the paper leans on: Piccolo has the
    # state story but no dataflow; SEEP/Naiad have explicit state but
    # no large-state support.
    piccolo = frameworks_with(system="Piccolo")[0]
    assert piccolo.large_state == YES and piccolo.execution == "n/a"
    for system in ("SEEP", "Naiad"):
        row = frameworks_with(system=system)[0]
        assert row.state_representation == "explicit"
        assert row.large_state == "no"

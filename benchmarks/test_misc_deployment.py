"""§3.4 — SDG deployment (start-up) cost.

The paper acknowledges the materialised representation has a start-up
cost: deploying an SDG with 50 TE and SE instances on 50 nodes takes
~7 s on their prototype. The model reproduces that point; the real
runtime demonstrates the mechanism (instance count grows linearly with
the configured partitioning) and measures actual deployment time.
"""

from conftest import print_figure

from repro.runtime import Runtime, RuntimeConfig
from repro.simulation import deployment_time

from repro.testing import build_kv_sdg


def test_deployment_cost_model(benchmark):
    rows = benchmark.pedantic(
        lambda: [(n, deployment_time(n)) for n in (10, 25, 50, 100)],
        rounds=1, iterations=1,
    )
    print_figure(
        "§3.4: modelled SDG deployment time",
        ["instances", "deploy time (s)"],
        rows,
    )
    by_n = dict(rows)
    assert 6.0 <= by_n[50] <= 8.0   # the paper's 7 s point
    times = [t for _n, t in rows]
    assert times == sorted(times)


def test_real_deployment_scales_linearly(benchmark):
    """Materialising more instances is linear work in the runtime."""

    def deploy(partitions):
        runtime = Runtime(
            build_kv_sdg(),
            RuntimeConfig(se_instances={"table": partitions}),
        ).deploy()
        return len(runtime.nodes)

    nodes = benchmark(deploy, 50)
    print_figure(
        "§3.4 mechanism: nodes materialised for 50 partitions",
        ["partitions", "nodes"],
        [(50, nodes)],
    )
    assert nodes == 50

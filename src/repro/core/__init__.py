"""The SDG core model (§3): task elements, state elements, dataflows.

A stateful dataflow graph is a cyclic graph with two vertex kinds —
task elements (TEs) that transform dataflows, and state elements (SEs)
that hold the explicit mutable state — joined by access edges (TE→SE,
at most one per TE) and dataflow edges (TE→TE) carrying data items under
one of four dispatch semantics.
"""

from repro.core.allocation import Allocation, allocate
from repro.core.dispatch import Dispatch
from repro.core.elements import (
    AccessMode,
    DataflowEdge,
    StateElementSpec,
    StateKind,
    TaskContext,
    TaskElementSpec,
)
from repro.core.graph import SDG
from repro.core.validation import validate

__all__ = [
    "AccessMode",
    "Allocation",
    "DataflowEdge",
    "Dispatch",
    "SDG",
    "StateElementSpec",
    "StateKind",
    "TaskContext",
    "TaskElementSpec",
    "allocate",
    "validate",
]

"""Heartbeat-based failure detection.

The paper's SEEP runtime notices failed workers on its own and triggers
the §5 recovery protocol; nothing tells it which node died. This module
reproduces that behaviour for the in-process engine: every live node
"heartbeats" implicitly by being observed alive at each engine step, and
the :class:`FailureDetector` — installed as a step hook — watches those
heartbeats in logical time:

* a node whose heartbeat has been silent for ``heartbeat_timeout`` steps
  is declared **dead**;
* a node that is alive but has made no processing progress for
  ``stall_timeout`` steps *while holding queued work* is declared
  **stalled** (e.g. a paused or pathologically slow node);
* a task-code crash is reported **immediately** through the engine's
  crash-handler channel (the loud-failure path — a worker process dying
  with a stack trace rather than going silent).

The detector only *marks* nodes; acting on a detection (restore, retry,
quarantine) is the :class:`~repro.recovery.supervisor.RecoverySupervisor`'s
job, subscribed via :meth:`FailureDetector.subscribe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import RuntimeExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Runtime
    from repro.runtime.instances import TEInstance


@dataclass(frozen=True)
class DetectionEvent:
    """One failure-detection verdict."""

    step: int
    node_id: int
    kind: str  # "dead" | "stalled" | "crashed"
    detail: str = ""


@dataclass
class _NodeStatus:
    """Heartbeat bookkeeping for one node."""

    last_beat: int
    last_progress: int
    items: int


class FailureDetector:
    """Watches per-node liveness and progress through the step hook."""

    def __init__(self, runtime: "Runtime", *,
                 heartbeat_timeout: int = 40,
                 stall_timeout: int = 200,
                 check_every: int = 5) -> None:
        if heartbeat_timeout < 1 or stall_timeout < 1 or check_every < 1:
            raise RuntimeExecutionError(
                "detector timeouts and check interval must be >= 1"
            )
        self.runtime = runtime
        self.heartbeat_timeout = heartbeat_timeout
        self.stall_timeout = stall_timeout
        self.check_every = check_every
        #: Every verdict ever reached, in detection order.
        self.events: list[DetectionEvent] = []
        self._status: dict[int, _NodeStatus] = {}
        self._reported: set[int] = set()
        self._listeners: list[Callable[[DetectionEvent], None]] = []
        self._installed = False

    # ------------------------------------------------------------------

    def install(self) -> "FailureDetector":
        """Attach to the runtime; returns self.

        Nodes already dead at install time are considered pre-existing
        failures and are not reported — the detector supervises what
        happens on its watch.
        """
        if self._installed:
            return self
        now = self.runtime.total_steps
        for node in self.runtime.nodes.values():
            self._status[node.node_id] = _NodeStatus(
                last_beat=now, last_progress=now,
                items=node.items_processed,
            )
            if not node.alive:
                self._reported.add(node.node_id)
        self.runtime.add_step_hook(self._on_step)
        self.runtime.add_crash_handler(self._on_crash)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.runtime.remove_step_hook(self._on_step)
            self.runtime.remove_crash_handler(self._on_crash)
            self._installed = False

    def subscribe(self, listener: Callable[[DetectionEvent], None]) -> None:
        """Register a callback invoked synchronously on each verdict."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------

    def _on_step(self, runtime: "Runtime") -> None:
        now = runtime.total_steps
        for node in list(runtime.nodes.values()):
            status = self._status.get(node.node_id)
            if status is None:
                status = _NodeStatus(last_beat=now, last_progress=now,
                                     items=node.items_processed)
                self._status[node.node_id] = status
            if node.alive:
                status.last_beat = now
                if node.items_processed > status.items:
                    status.items = node.items_processed
                    status.last_progress = now
        if now % self.check_every:
            return
        for node_id, status in self._status.items():
            if node_id in self._reported:
                continue
            node = runtime.nodes.get(node_id)
            if node is None:
                continue
            if not node.alive:
                silent = now - status.last_beat
                if silent >= self.heartbeat_timeout:
                    self._report(node_id, "dead", now,
                                 f"no heartbeat for {silent} steps")
            elif (
                now - status.last_progress >= self.stall_timeout
                and any(inst.inbox
                        for inst in node.te_instances.values())
            ):
                self._report(
                    node_id, "stalled", now,
                    f"no progress for {now - status.last_progress} steps "
                    f"with queued work (speed={node.speed})",
                )

    def _on_crash(self, runtime: "Runtime", instance: "TEInstance",
                  envelope, exc: Exception) -> None:
        """Immediate crash report: the engine already failed the node."""
        node_id = instance.node_id
        if node_id in self._reported:
            return
        self._report(node_id, "crashed", runtime.total_steps,
                     f"TE {instance.name}[{instance.index}]: {exc}")

    def _report(self, node_id: int, kind: str, step: int,
                detail: str) -> None:
        self._reported.add(node_id)
        event = DetectionEvent(step=step, node_id=node_id, kind=kind,
                               detail=detail)
        self.events.append(event)
        self.runtime.events.publish(
            "detector", "failure-detected", step,
            node_id=node_id, verdict=kind, detail=detail,
        )
        self.runtime.metrics.counter(
            "detector_verdicts_total",
            "failure-detection verdicts, by kind",
        ).labels(kind=kind).inc()
        for listener in list(self._listeners):
            listener(event)

    # ------------------------------------------------------------------

    def detected(self, kind: str | None = None) -> list[DetectionEvent]:
        """Events so far, optionally filtered by kind."""
        if kind is None:
            return list(self.events)
        return [e for e in self.events if e.kind == kind]

    def unreported_dead_nodes(self) -> list[int]:
        """Dead nodes the detector has seen but not yet timed out on."""
        return [
            node.node_id for node in self.runtime.nodes.values()
            if not node.alive and node.node_id not in self._reported
        ]

"""Partitioning-epoch safety: stale checkpoints must not restore.

A checkpoint captured under partitioning epoch E holds exactly the keys
its instance owned *then*; restoring it after a repartition would both
resurrect keys the instance no longer owns and miss keys it gained.
Recovery therefore refuses stale-epoch checkpoints, and the scheduler
re-checkpoints affected nodes as soon as an epoch changes.
"""

import pytest

from repro.errors import RecoveryError
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
)
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def cluster(n=2):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": n},
                                    max_instances=8)).deploy()
    store = BackupStore(m_targets=2)
    return (runtime, CheckpointManager(runtime, store),
            RecoveryManager(runtime, store), store)


class TestEpochTracking:
    def test_epoch_starts_at_zero(self):
        runtime, *_ = cluster()
        assert runtime.se_epoch("table") == 0

    def test_repartition_bumps_epoch(self):
        runtime, *_ = cluster()
        runtime.scale_up("serve")
        assert runtime.se_epoch("table") == 1
        runtime.scale_up("serve")
        assert runtime.se_epoch("table") == 2

    def test_checkpoint_records_epoch(self):
        runtime, ckpt, _rec, _store = cluster()
        node = runtime.se_instance("table", 0).node_id
        checkpoint = ckpt.checkpoint(node)
        assert checkpoint.se_epochs == {"table": 0}


class TestStaleCheckpointRefusal:
    def test_recovery_refuses_pre_scale_checkpoint(self):
        runtime, ckpt, rec, _store = cluster()
        for i in range(40):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)
        runtime.scale_up("serve")  # repartition: epoch 0 -> 1
        node_after = runtime.se_instance("table", 0).node_id
        runtime.fail_node(node_after)
        with pytest.raises(RecoveryError, match="repartitioned"):
            rec.recover_node(node_after)

    def test_fresh_checkpoint_after_scale_recovers_cleanly(self):
        runtime, ckpt, rec, _store = cluster()
        for i in range(40):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        runtime.scale_up("serve")
        node = runtime.se_instance("table", 0).node_id
        ckpt.checkpoint(node)  # re-checkpoint under the new epoch
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {i: i for i in range(40)}


class TestRepartitionCheckpointExclusion:
    def test_scale_refused_while_checkpoint_open(self):
        from repro.errors import RuntimeExecutionError

        runtime, ckpt, _rec, _store = cluster()
        node = runtime.se_instance("table", 0).node_id
        pending = ckpt.begin(node)
        with pytest.raises(RuntimeExecutionError, match="in progress"):
            runtime.scale_up("serve")
        ckpt.complete(pending)
        assert runtime.scale_up("serve")  # fine once closed

    def test_auto_scale_skips_checkpointing_se(self):
        runtime, ckpt, _rec, _store = cluster(n=1)
        node = runtime.se_instance("table", 0).node_id
        pending = ckpt.begin(node)
        runtime.config.auto_scale = True
        runtime.config.scale_threshold = 10
        runtime.config.scale_check_every = 20
        for i in range(200):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()  # must not blow up mid-checkpoint
        assert len(runtime.se_instances("table")) == 1
        ckpt.complete(pending)


class TestSchedulerEpochReaction:
    def test_scheduler_recheckpoints_after_scale(self):
        runtime, ckpt, rec, store = cluster()
        scheduler = CheckpointScheduler(ckpt, every_items=1_000_000,
                                        complete_after_steps=0).install()
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        assert scheduler.completed_count == 0  # interval far away
        runtime.scale_up("serve")
        # A few more items let the hook observe the epoch change and
        # force fresh checkpoints of the affected nodes.
        for i in range(30, 40):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        scheduler.flush()
        assert scheduler.completed_count >= 3  # all table partitions
        # And those checkpoints now support recovery.
        node = runtime.se_instance("table", 1).node_id
        assert store.latest(node).se_epochs == {"table": 1}
        runtime.fail_node(node)
        rec.recover_node(node)
        runtime.run_until_idle()
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {i: i for i in range(40)}

"""Tests for the runtime monitor."""

from repro.runtime import Runtime, RuntimeConfig, RuntimeMonitor

from tests.helpers import build_kv_sdg


def deploy_with_monitor(sample_every=10):
    runtime = Runtime(build_kv_sdg(),
                      RuntimeConfig(se_instances={"table": 2}))
    runtime.deploy()
    monitor = RuntimeMonitor(sample_every=sample_every).install(runtime)
    return runtime, monitor


class TestMonitor:
    def test_samples_taken_periodically(self):
        runtime, monitor = deploy_with_monitor(sample_every=10)
        for i in range(100):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        # A baseline sample at install, then one every 10 steps.
        assert len(monitor.samples) == 11
        assert [s.step for s in monitor.samples] == list(
            range(0, 101, 10)
        )

    def test_baseline_sample_on_install(self):
        runtime, monitor = deploy_with_monitor(sample_every=10)
        assert [s.step for s in monitor.samples] == [0]
        assert monitor.samples[0].instances["serve"] == 2

    def test_backlog_series_drains_to_zero(self):
        runtime, monitor = deploy_with_monitor(sample_every=5)
        for i in range(50):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        series = monitor.backlog_series("serve")
        # The baseline point precedes the injections, so the series
        # starts at zero, peaks, then drains back to zero.
        assert series[0][1] == 0
        assert max(depth for _step, depth in series) > 0
        assert series[-1][1] == 0

    def test_throughput_series_steady_state(self):
        runtime, monitor = deploy_with_monitor(sample_every=10)
        for i in range(200):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        series = monitor.throughput_series("serve")
        # One TE, one item per step: unit throughput throughout.
        assert all(rate == 1.0 for _step, rate in series)

    def test_peak_backlog(self):
        runtime, monitor = deploy_with_monitor(sample_every=1)
        for i in range(30):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        assert monitor.peak_backlog("serve") >= 25

    def test_instances_tracked_through_scaling(self):
        runtime, monitor = deploy_with_monitor(sample_every=1)
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        runtime.scale_up("serve")
        for i in range(10, 20):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        first, last = monitor.samples[0], monitor.samples[-1]
        assert first.instances["serve"] == 2
        assert last.instances["serve"] == 3

    def test_uninstall_stops_sampling(self):
        runtime, monitor = deploy_with_monitor(sample_every=1)
        monitor.uninstall()
        runtime.inject("serve", ("put", 1, 1))
        runtime.run_until_idle()
        # Only the install-time baseline sample remains.
        assert [s.step for s in monitor.samples] == [0]

    def test_manual_sample(self):
        runtime, monitor = deploy_with_monitor(sample_every=1_000_000)
        runtime.inject("serve", ("put", 1, 1))
        sample = monitor.take_sample(runtime)
        assert sample.backlog["serve"] == 1

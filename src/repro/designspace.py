"""The design-space classification of Table 1.

The paper positions SDGs against fourteen existing frameworks along the
dimensions motivated in §2.2: programming model, state handling (how
state is represented, whether large state and fine-grained updates are
supported), dataflow execution (scheduled / hybrid / pipelined, latency,
iteration) and failure recovery. This module encodes the table as data
and renders it, so the reproduction of Table 1 is a program artifact
rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass

YES = "yes"
NO = "no"
NA = "n/a"


@dataclass(frozen=True)
class FrameworkRow:
    computational_model: str
    system: str
    programming_model: str
    state_representation: str
    large_state: str
    fine_grained_updates: str
    execution: str
    low_latency: str
    iteration: str
    failure_recovery: str


TABLE_1: list[FrameworkRow] = [
    FrameworkRow("stateless dataflow", "MapReduce", "map/reduce",
                 "as data", NA, NO, "scheduled", NO, NO, "recompute"),
    FrameworkRow("stateless dataflow", "DryadLINQ", "functional",
                 "as data", NA, NO, "scheduled", NO, YES, "recompute"),
    FrameworkRow("stateless dataflow", "Spark", "functional",
                 "as data", NA, NO, "hybrid", NO, YES, "recompute"),
    FrameworkRow("stateless dataflow", "CIEL", "imperative",
                 "as data", NA, NO, "scheduled", NO, YES, "recompute"),
    FrameworkRow("incremental dataflow", "HaLoop", "map/reduce",
                 "cache", YES, NO, "scheduled", NO, YES, "recompute"),
    FrameworkRow("incremental dataflow", "Incoop", "map/reduce",
                 "cache", YES, NO, "scheduled", NO, NO, "recompute"),
    FrameworkRow("incremental dataflow", "Nectar", "functional",
                 "cache", YES, NO, "scheduled", NO, NO, "recompute"),
    FrameworkRow("incremental dataflow", "CBP", "dataflow",
                 "loopback", YES, YES, "scheduled", NO, NO, "recompute"),
    FrameworkRow("batched dataflow", "Comet", "functional",
                 "as data", NA, NO, "scheduled", YES, NO, "recompute"),
    FrameworkRow("batched dataflow", "D-Streams", "functional",
                 "as data", NA, NO, "hybrid", YES, YES, "recompute"),
    FrameworkRow("batched dataflow", "Naiad", "dataflow",
                 "explicit", NO, YES, "hybrid", YES, YES,
                 "sync. global checkpoints"),
    FrameworkRow("continuous dataflow", "Storm, S4", "dataflow",
                 "as data", NA, NO, "pipelined", YES, NO, "recompute"),
    FrameworkRow("continuous dataflow", "SEEP", "dataflow",
                 "explicit", NO, YES, "pipelined", YES, NO,
                 "sync. local checkpoints"),
    FrameworkRow("parallel in-memory", "Piccolo", "imperative",
                 "explicit", YES, YES, NA, YES, YES,
                 "async. global checkpoints"),
    FrameworkRow("stateful dataflow", "SDG", "imperative",
                 "explicit", YES, YES, "pipelined", YES, YES,
                 "async. local checkpoints"),
]

_COLUMNS = [
    ("computational_model", "Computational model"),
    ("system", "System"),
    ("programming_model", "Programming model"),
    ("state_representation", "State repr."),
    ("large_state", "Large state"),
    ("fine_grained_updates", "Fine-grained updates"),
    ("execution", "Execution"),
    ("low_latency", "Low latency"),
    ("iteration", "Iteration"),
    ("failure_recovery", "Failure recovery"),
]


def sdg_row() -> FrameworkRow:
    """The SDG row — the claimed combination of properties."""
    return next(row for row in TABLE_1 if row.system == "SDG")


def frameworks_with(**criteria: str) -> list[FrameworkRow]:
    """Filter the table by column values (e.g. ``large_state=YES``)."""
    rows = TABLE_1
    for column, value in criteria.items():
        rows = [row for row in rows if getattr(row, column) == value]
    return list(rows)


def render_table() -> str:
    """Plain-text rendering of Table 1."""
    widths = {
        attr: max(len(header),
                  max(len(getattr(row, attr)) for row in TABLE_1))
        for attr, header in _COLUMNS
    }
    header_line = "  ".join(
        header.ljust(widths[attr]) for attr, header in _COLUMNS
    )
    separator = "-" * len(header_line)
    lines = [header_line, separator]
    for row in TABLE_1:
        lines.append("  ".join(
            getattr(row, attr).ljust(widths[attr])
            for attr, _header in _COLUMNS
        ))
    return "\n".join(lines)

"""Tests for the structured event bus."""

import json

from repro.obs import EventBus


class TestEventBus:
    def test_publish_orders_and_stamps(self):
        bus = EventBus()
        bus.publish("engine", "node-failed", 10, node_id=3)
        bus.publish("checkpoint", "checkpoint-begin", 12, version=1)
        events = list(bus)
        assert [e.seq for e in events] == [0, 1]
        assert events[0].step == 10
        assert events[0].attrs["node_id"] == 3
        assert len(bus) == 2

    def test_filter_by_source_and_kind(self):
        bus = EventBus()
        bus.publish("engine", "node-failed", 1, node_id=1)
        bus.publish("supervisor", "detected", 2, node_id=1)
        bus.publish("supervisor", "recovered", 3, node_id=1)
        assert len(bus.events(source="supervisor")) == 2
        assert len(bus.events(kind="recovered")) == 1
        assert bus.events(source="engine", kind="recovered") == []

    def test_counts_by_kind(self):
        bus = EventBus()
        bus.publish("a", "x", 1)
        bus.publish("b", "x", 2)
        bus.publish("a", "y", 3)
        assert bus.counts_by_kind() == {"x": 2, "y": 1}

    def test_subscribe_with_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=["restore"])
        bus.publish("recovery", "restore", 5, node_id=1)
        bus.publish("recovery", "checkpoint-begin", 6)
        assert [e.kind for e in seen] == ["restore"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        listener = bus.subscribe(seen.append)
        bus.publish("a", "x", 1)
        bus.unsubscribe(listener)
        bus.publish("a", "y", 2)
        assert [e.kind for e in seen] == ["x"]

    def test_jsonl_round_trips(self):
        bus = EventBus()
        bus.publish("engine", "scale-out", 7, te="count", instances=3)
        bus.publish("injector", "fault-injected", 9,
                    fault=object(), outcome="fired")
        lines = bus.to_jsonl().strip().splitlines()
        first = json.loads(lines[0])
        assert first == {"seq": 0, "step": 7, "source": "engine",
                         "kind": "scale-out", "te": "count",
                         "instances": 3}
        # Non-JSON payloads degrade to repr instead of failing.
        second = json.loads(lines[1])
        assert second["fault"].startswith("<object object")

    def test_empty_bus_exports_empty(self):
        assert EventBus().to_jsonl() == ""

"""SDG301: a replica-dependent value escaping a partial RMW block.

``counters`` is partial (replicated); ``increment`` returns the local
replica's running count, which depends on which instance served the
item. Shipping that value into the partitioned ``table`` persists
replica-divergent results no merge can reconcile.
"""

from repro.annotations import Partial, Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class PartialRace(SDGProgram):
    """Persists a per-replica counter value into keyed state."""

    counters = Partial(KeyValueMap)
    table = Partitioned(KeyValueMap, key="key")

    @entry
    def record(self, key, amount):
        seen = self.counters.increment(key, amount)
        self.table.put(key, seen)

"""Asynchronous local checkpointing (§5).

The five-step protocol, per node:

1. *begin*: every local SE is flagged dirty (writes go to the overlay)
   and the node's TE bookkeeping — per-stream ``last_seen`` vector
   timestamps, output buffers, sequence counters and gather barriers —
   is captured atomically;
2. processing continues against the dirty overlays;
3. the consistent snapshot is chunked (asynchronously w.r.t. processing);
4. chunks are persisted to the backup store across ``m`` targets;
5. *complete*: each SE consolidates its overlay (the only step that
   locks the SE), and upstream output buffers are trimmed up to the
   checkpointed timestamps.

The split into :meth:`CheckpointManager.begin` and
:meth:`CheckpointManager.complete` lets callers interleave processing
between the two calls, which is exactly what the asynchronous mechanism
buys — and what the tests and the sync-vs-async benchmarks exercise.

Under an incremental :class:`~repro.recovery.policy.CheckpointPolicy`,
step 3 has a **delta mode**: instead of re-chunking the full state, the
manager serialises only the keys mutated since the previous cycle (the
backend's mutation journal) as
:class:`~repro.state.base.DeltaChunk` chains with ``(version,
base_version)`` lineage. A delta is only emitted when it is provably
sound — contiguous predecessor in the store, unchanged SE set and
partitioning epochs, every SE journal-backed — otherwise the cycle
silently re-anchors with a full base. Upstream output buffers are
trimmed only on *full* cycles, so the supervisor's base-only fallback
can always re-replay the span covered by discarded deltas.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import RecoveryError
from repro.obs.events import KIND
from repro.obs.profile import profile_span
from repro.recovery.policy import CheckpointPolicy
from repro.runtime.envelope import INPUT_EDGE, ChannelId, Envelope
from repro.runtime.instances import GatherState, StreamKey
from repro.state.base import StateChunk

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.backup import BackupStore
    from repro.runtime.engine import Runtime


@dataclass
class TEMeta:
    """Recovery bookkeeping of one TE instance, captured at begin-time."""

    last_seen: dict[StreamKey, int] = field(default_factory=dict)
    out_seq: dict[ChannelId, int] = field(default_factory=dict)
    output_buffers: dict[ChannelId, list[Envelope]] = field(
        default_factory=dict
    )
    pending_gathers: dict[int, GatherState] = field(default_factory=dict)
    processed_count: int = 0


@dataclass
class NodeCheckpoint:
    """A completed checkpoint of one node."""

    node_id: int
    version: int
    #: "full" (a self-contained base) or "delta" (changed keys +
    #: tombstones on top of ``base_version``).
    kind: str = "full"
    #: For deltas, the version this delta applies on top of.
    base_version: int | None = None
    se_chunks: dict[tuple[str, int], list[StateChunk]] = field(
        default_factory=dict
    )
    te_meta: dict[tuple[str, int], TEMeta] = field(default_factory=dict)
    #: Partitioning epoch of each SE at capture time; a checkpoint is
    #: only restorable while the SE's partitioning is unchanged.
    se_epochs: dict[str, int] = field(default_factory=dict)
    #: Expected chunk count per SE instance, recorded by the backup
    #: store at save time. The read path refuses to reassemble an SE
    #: from fewer chunks than were written — a lost chunk must raise,
    #: never yield a silently truncated restore.
    chunk_counts: dict[tuple[str, int], int] = field(default_factory=dict)
    #: CRC-32 per (se_key, chunk_index), recorded at save time and
    #: verified on restore.
    chunk_checksums: dict[tuple[tuple[str, int], int], int] = field(
        default_factory=dict
    )

    def state_entries(self) -> int:
        """Logical entries moved by this checkpoint (incl. tombstones)."""
        return sum(
            chunk.entry_count()
            for chunks in self.se_chunks.values()
            for chunk in chunks
        )


@dataclass
class PendingCheckpoint:
    """An in-progress checkpoint: SEs are dirty, metadata is frozen."""

    node_id: int
    version: int
    te_meta: dict[tuple[str, int], TEMeta]
    se_keys: list[tuple[str, int]]
    se_epochs: dict[str, int] = field(default_factory=dict)
    #: Logical step at which :meth:`CheckpointManager.begin` ran; the
    #: begin→complete span is the checkpoint's duration in steps.
    begun_at_step: int = 0


class CheckpointManager:
    """Coordinates per-node asynchronous checkpoints."""

    def __init__(self, runtime: "Runtime", store: "BackupStore",
                 n_chunks: int | None = None,
                 trim_input_log: bool = True,
                 policy: CheckpointPolicy | None = None) -> None:
        self.runtime = runtime
        self.store = store
        #: chunks per SE snapshot; defaults to the store's target count.
        self.n_chunks = n_chunks if n_chunks is not None else store.m_targets
        #: Whether step 5 also trims the client-side input log. Keeping
        #: the full log (``False``) costs memory but guarantees that
        #: pure log-replay recovery of an entry TE's node can rebuild
        #: its state from scratch even when every checkpoint of it is
        #: corrupt or stale — the RecoverySupervisor's last-resort path.
        self.trim_input_log = trim_input_log
        #: Full/delta cadence: an explicit argument wins, then the
        #: runtime config's ``checkpoint_policy``, then the default
        #: (full every cycle — the seed behaviour).
        if policy is None:
            policy = getattr(runtime.config, "checkpoint_policy", None)
        self.policy = policy if policy is not None else CheckpointPolicy()
        self._versions: dict[int, int] = {}
        self._pending: dict[int, PendingCheckpoint] = {}
        #: Completed checkpoint cycles per node (drives the cadence).
        self._cycles: dict[int, int] = {}
        metrics = runtime.metrics
        self._events = runtime.events
        self._c_checkpoints = metrics.counter(
            "recovery_checkpoints_total",
            "completed checkpoints, by kind (full/delta)")
        self._c_entries = metrics.counter(
            "recovery_checkpoint_entries_total",
            "state entries (incl. tombstones) persisted, by kind")
        self._c_bytes = metrics.counter(
            "recovery_checkpoint_bytes_total",
            "modelled bytes persisted, by kind")
        self._c_aborted = metrics.counter(
            "recovery_checkpoints_aborted_total",
            "checkpoints aborted or discarded (node died mid-flight)"
        ).labels()
        self._h_duration = metrics.histogram(
            "recovery_checkpoint_duration_steps",
            "begin-to-complete span of a checkpoint, in logical steps")
        self._c_journal = metrics.counter(
            "state_journal_mutations_total",
            "journalled state mutations consumed by checkpoint cycles"
        ).labels()

    # ------------------------------------------------------------------

    def begin(self, node_id: int) -> PendingCheckpoint:
        """Step 1: flag SEs dirty and freeze TE bookkeeping."""
        with profile_span(getattr(self.runtime, "profiler", None),
                          "checkpoint"):
            return self._begin(node_id)

    def _begin(self, node_id: int) -> PendingCheckpoint:
        node = self.runtime.nodes[node_id]
        if not node.alive:
            raise RecoveryError(f"cannot checkpoint dead node {node_id}")
        if node_id in self._pending:
            raise RecoveryError(
                f"node {node_id} already has a checkpoint in progress"
            )
        for se_inst in node.se_instances.values():
            se_inst.element.begin_checkpoint()
        te_meta: dict[tuple[str, int], TEMeta] = {}
        for key, te_inst in node.te_instances.items():
            te_meta[key] = TEMeta(
                last_seen=dict(te_inst.last_seen),
                out_seq=dict(te_inst.out_seq),
                output_buffers={
                    channel: list(buffer)
                    for channel, buffer in te_inst.output_buffers.items()
                },
                pending_gathers=copy.deepcopy(te_inst.pending_gathers),
                processed_count=te_inst.processed_count,
            )
        version = self._versions.get(node_id, 0) + 1
        self._versions[node_id] = version
        pending = PendingCheckpoint(
            node_id=node_id, version=version, te_meta=te_meta,
            se_keys=list(node.se_instances),
            se_epochs={
                se_name: self.runtime.se_epoch(se_name)
                for se_name, _index in node.se_instances
            },
            begun_at_step=self.runtime.total_steps,
        )
        self._pending[node_id] = pending
        self._events.publish(
            "checkpoint", KIND.CHECKPOINT_BEGIN, self.runtime.total_steps,
            node_id=node_id, version=version,
        )
        return pending

    def complete(self, pending: PendingCheckpoint) -> NodeCheckpoint | None:
        """Steps 3-5: chunk, persist, consolidate, trim upstream.

        Under an incremental policy, eligible cycles serialise only the
        mutation journal (delta mode); the cost of such a cycle is
        O(|mutations since the previous cycle|), not O(|state|).
        Returns ``None`` (and discards the checkpoint) if the node died
        while the checkpoint was in progress.
        """
        with profile_span(getattr(self.runtime, "profiler", None),
                          "checkpoint"):
            return self._complete(pending)

    def _complete(self, pending: PendingCheckpoint) \
            -> NodeCheckpoint | None:
        self._pending.pop(pending.node_id, None)
        node = self.runtime.nodes[pending.node_id]
        if not node.alive:
            self._c_aborted.inc()
            self._events.publish(
                "checkpoint", KIND.CHECKPOINT_ABORT,
                self.runtime.total_steps, node_id=pending.node_id,
                version=pending.version, reason="node died",
            )
            return None
        delta = self._delta_eligible(pending, node)
        persisted_bytes = 0
        se_chunks: dict[tuple[str, int], list[StateChunk]] = {}
        for se_key in pending.se_keys:
            se_inst = node.se_instances.get(se_key)
            if se_inst is None:
                continue
            element = se_inst.element
            if element.delta_capable:
                journal = element.journal()
                self._c_journal.inc(
                    len(journal.written) + len(journal.deleted))
            if delta:
                se_chunks[se_key] = element.to_delta_chunks(
                    self.n_chunks, version=pending.version,
                    base_version=pending.version - 1,
                )
            else:
                se_chunks[se_key] = element.to_chunks(self.n_chunks)
            persisted_bytes += sum(
                chunk.size_bytes(element.BYTES_PER_ENTRY)
                for chunk in se_chunks[se_key]
            )
        checkpoint = NodeCheckpoint(
            node_id=pending.node_id, version=pending.version,
            kind="delta" if delta else "full",
            base_version=pending.version - 1 if delta else None,
            se_chunks=se_chunks, te_meta=pending.te_meta,
            se_epochs=dict(pending.se_epochs),
        )
        self.store.save(checkpoint)
        # Reset the journals *before* consolidating: the persisted
        # checkpoint covers every pre-begin mutation, while the overlay
        # entries folded back below re-journal themselves and therefore
        # land in the *next* cycle's delta.
        for se_key in pending.se_keys:
            se_inst = node.se_instances.get(se_key)
            if se_inst is not None:
                se_inst.element.mark_clean()
                se_inst.element.consolidate()
        self._cycles[pending.node_id] = \
            self._cycles.get(pending.node_id, 0) + 1
        entries = checkpoint.state_entries()
        self._c_checkpoints.labels(kind=checkpoint.kind).inc()
        self._c_entries.labels(kind=checkpoint.kind).inc(entries)
        self._c_bytes.labels(kind=checkpoint.kind).inc(persisted_bytes)
        self._h_duration.labels().observe(
            self.runtime.total_steps - pending.begun_at_step)
        self._events.publish(
            "checkpoint", KIND.CHECKPOINT_COMMIT, self.runtime.total_steps,
            node_id=checkpoint.node_id, version=checkpoint.version,
            checkpoint_kind=checkpoint.kind, entries=entries,
            bytes=persisted_bytes,
            duration_steps=self.runtime.total_steps - pending.begun_at_step,
        )
        if checkpoint.kind == "full":
            # Deltas must not trim upstream buffers: if the delta part
            # of the chain is later lost or corrupted, base-only
            # recovery replays the gap from these buffers.
            self._trim_upstream(checkpoint)
        return checkpoint

    def _delta_eligible(self, pending: PendingCheckpoint, node) -> bool:
        """Whether this cycle may be incremental (else a full base).

        Requires, beyond the policy cadence: a contiguous predecessor
        still in the store, an unchanged SE instance set, unchanged
        partitioning epochs, and every SE journal-backed. Any mismatch
        re-anchors with a full checkpoint — a delta whose lineage or
        coverage is doubtful is never emitted.
        """
        if self.policy.wants_full(self._cycles.get(pending.node_id, 0)):
            return False
        previous = self.store.latest(pending.node_id)
        if previous is None or previous.version != pending.version - 1:
            return False
        if set(previous.se_chunks) != set(pending.se_keys):
            return False
        if previous.se_epochs != pending.se_epochs:
            return False
        for se_key in pending.se_keys:
            se_inst = node.se_instances.get(se_key)
            if se_inst is None or not se_inst.element.delta_capable:
                return False
        return True

    def abort(self, pending: PendingCheckpoint) -> None:
        """Abandon an in-progress checkpoint, consolidating dirty state."""
        self._pending.pop(pending.node_id, None)
        node = self.runtime.nodes[pending.node_id]
        for se_key in pending.se_keys:
            se_inst = node.se_instances.get(se_key)
            if se_inst is not None:
                se_inst.element.abort_checkpoint()
        self._c_aborted.inc()
        self._events.publish(
            "checkpoint", KIND.CHECKPOINT_ABORT, self.runtime.total_steps,
            node_id=pending.node_id, version=pending.version,
            reason="aborted",
        )

    def checkpoint(self, node_id: int) -> NodeCheckpoint | None:
        """Synchronous convenience: begin + complete with no gap."""
        return self.complete(self.begin(node_id))

    def checkpoint_all(self) -> list[NodeCheckpoint]:
        """Checkpoint every live node — still *local* checkpoints taken
        one node at a time, with no cross-node coordination."""
        results = []
        for node in self.runtime.alive_nodes():
            checkpoint = self.checkpoint(node.node_id)
            if checkpoint is not None:
                results.append(checkpoint)
        return results

    # ------------------------------------------------------------------

    def _trim_upstream(self, checkpoint: NodeCheckpoint) -> None:
        """Step 5b: upstream buffers drop items covered by the checkpoint."""
        for (te_name, index), meta in checkpoint.te_meta.items():
            for stream, ts in meta.last_seen.items():
                if not self.trim_input_log and stream[0] == INPUT_EDGE:
                    continue
                self.runtime.trim_stream(stream, te_name, index, ts)

"""SDG402: a value derived from unordered set iteration escapes.

Which element a ``for`` over a freshly built ``set`` yields first is
hash-dependent — and hash randomization makes it differ *between
worker processes*. The first tag therefore diverges across workers
and across recovery replays. In-process the program is merely
order-unstable; under fork it is wrong, so only the substrate pass
flags it.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class SetIterationRoute(SDGProgram):
    """Picks a representative tag by set iteration order."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def tally(self, key, tags):
        first = None
        for tag in set(tags):
            first = tag
            break
        self.table.put(key, first)

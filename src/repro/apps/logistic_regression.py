"""Online logistic regression (§6.2).

The paper runs batch logistic regression [21] to show that SDGs scale
like stateless batch systems. Here the model weights are a *partial*
vector: every replica trains independently on its share of the stream
(local SGD), and reading the model performs a global access that
averages the replicas — the standard parameter-averaging formulation,
and exactly the partial-state pattern the paper's LR uses to manage the
shared model.
"""

from __future__ import annotations

import math

from repro.annotations import Partial, collection, entry, global_
from repro.program import SDGProgram
from repro.state import Vector


def sigmoid(z):
    """Numerically-stable logistic function."""
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    ez = math.exp(z)
    return ez / (1.0 + ez)


class LogisticRegression(SDGProgram):
    """Streaming SGD with replica-averaged model reads."""

    weights = Partial(Vector)

    @entry
    def train(self, features, label, learning_rate):
        """One SGD step on the local weight replica."""
        w = self.weights
        z = 0.0
        for i in range(len(features)):
            z = z + w.get(i) * features[i]
        p = sigmoid(z)
        gradient = p - label
        for i in range(len(features)):
            w.add(i, -learning_rate * gradient * features[i])

    @entry
    def get_model(self):
        """The averaged model across all weight replicas."""
        partial_w = global_(self.weights).to_list()
        model = self.average(collection(partial_w))
        return model

    def average(self, all_weights):
        """Elementwise mean of the replica weight vectors."""
        if not all_weights:
            return []
        width = max(len(w) for w in all_weights)
        model = [0.0] * width
        for w in all_weights:
            for i in range(len(w)):
                model[i] = model[i] + w[i]
        return [v / len(all_weights) for v in model]

    def predict_with(self, model, features):
        """Probability of the positive class under ``model``."""
        z = 0.0
        for i in range(min(len(model), len(features))):
            z = z + model[i] * features[i]
        return sigmoid(z)

"""SDG303 through a parameter: the SE is handed to the bypasser.

The intra-procedural checkpoint scan looks for ``self.<field>._...``
— here the entry passes ``self.table`` *into* ``_launder``, and the
bypass happens through the parameter name ``se``. The helper's
summary records ``param_bypass[0]``; the interprocedural pass
connects the argument to the parameter and reports the chain.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap


class LaunderedBypass(SDGProgram):
    """Bypasses the journalled API one call frame down."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def poke(self, key, value):
        self._launder(self.table, key, value)

    def _launder(self, se, key, value):
        se._backend._data[key] = value

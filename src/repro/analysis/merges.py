"""Pass 2 — merge order-sensitivity check (``SDG302``).

A merge TE reconciles the gathered partial values of a ``global_``
access (§4.2 rule 5). The gather barrier delivers one value per
replica, but their **order is not defined** — it depends on scheduling,
instance count and recovery replay. A merge function must therefore be
insensitive to the order of its collection argument (the same
discipline Naiad demands of its vertices and SEEP of its upstream
backups: deterministic results regardless of delivery interleaving).

This is a conservative AST scan of every merge method reachable from
an entry. Inside loops that iterate the gathered collection it flags
accumulation through non-commutative/non-associative operators
(``-``, ``/``, ``//``, ``%``, ``**``, ``<<``, ``>>``, ``@``) — both
``acc -= cur`` and ``acc = acc - cur`` shapes — and, anywhere in the
method, positional indexing of the collection parameter itself
(``gathered[0]`` picks an arbitrary replica). Order-insensitive
reductions (sums, maxes, elementwise means divided *after* the loop)
pass untouched, as every bundled application's merge does.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import DiagnosticSink
from repro.analysis.model import ProgramModel

#: BinOp / AugAssign operators whose accumulation is order-sensitive.
_ORDER_SENSITIVE_OPS = (
    ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
    ast.LShift, ast.RShift, ast.MatMult,
)


def run(model: ProgramModel, sink: DiagnosticSink) -> None:
    for name, (fn_ast, collection_param) in model.merge_methods().items():
        _check_merge(fn_ast, name, collection_param, sink)


def _mentions(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        for sub in ast.walk(node)
    )


def _op_name(op: ast.operator) -> str:
    return {
        ast.Sub: "-", ast.Div: "/", ast.FloorDiv: "//", ast.Mod: "%",
        ast.Pow: "**", ast.LShift: "<<", ast.RShift: ">>",
        ast.MatMult: "@",
    }.get(type(op), type(op).__name__)


def _same_target(target: ast.expr, operand: ast.expr) -> bool:
    """``acc = acc - x`` / ``m[i] = m[i] - x``: operand is the target."""
    return ast.unparse(target) == ast.unparse(operand)


def _check_merge(fn_ast: ast.FunctionDef, method: str,
                 collection_param: str, sink: DiagnosticSink) -> None:
    # Positional indexing of the gathered collection anywhere.
    for node in ast.walk(fn_ast):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == collection_param
        ):
            sink.emit(
                "SDG302",
                f"merge method {method!r} indexes the gathered "
                f"collection {collection_param!r} by position; the "
                f"gather order of partial values is not deterministic, "
                f"so position selects an arbitrary replica",
                lineno=node.lineno, col=node.col_offset, origin=method,
                hint="iterate the collection and combine values with an "
                     "order-insensitive reduction instead of indexing",
            )

    # Order-sensitive accumulation inside loops over the collection.
    for loop in ast.walk(fn_ast):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        if isinstance(loop, ast.For):
            if not _mentions(loop.iter, collection_param):
                continue
        elif not _mentions(loop.test, collection_param):
            continue
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, _ORDER_SENSITIVE_OPS
            ):
                _flag_accumulation(sink, method, collection_param,
                                   node, node.op)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, _ORDER_SENSITIVE_OPS)
                and _same_target(node.targets[0], node.value.left)
            ):
                _flag_accumulation(sink, method, collection_param,
                                   node, node.value.op)


def _flag_accumulation(sink: DiagnosticSink, method: str,
                       collection_param: str, node: ast.stmt,
                       op: ast.operator) -> None:
    sink.emit(
        "SDG302",
        f"merge method {method!r} accumulates with {_op_name(op)!r} "
        f"while iterating the gathered collection "
        f"{collection_param!r}; the result depends on the replica "
        f"delivery order, which is not deterministic across runs or "
        f"recovery replays",
        lineno=node.lineno, col=node.col_offset, origin=method,
        hint="restructure the reduction to be commutative (sum the "
             "terms, then apply the non-commutative step once after "
             "the loop)",
    )

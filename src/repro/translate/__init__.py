"""py2sdg: static translation of annotated imperative programs to SDGs.

This is the Python analogue of the paper's ``java2sdg`` tool (Fig. 3).
The pipeline mirrors the paper's stages:

1. the class source is parsed to an AST (the paper's Jimple IR);
2. SE extraction — annotated ``Partitioned``/``Partial`` fields (step 2);
3. SE-access extraction and classification: local / partitioned /
   global (step 3);
4. TE extraction — statements are grouped into task elements, cut at
   every change of accessed SE or access type, with dataflow dispatch
   semantics chosen from the type of state access (step 4, rules 1-5);
5. live-variable analysis determines which variables travel on each
   dataflow edge (step 5);
6-8. code generation — each TE's statements are rewritten (state-field
   accesses become runtime state accesses, helper calls are redirected,
   ``@Global`` markers are unwrapped, ``@Collection`` merges become
   gather inputs) and compiled to task functions, and data dispatching
   is attached to the edges.
"""

from repro.translate.builder import TranslationResult, translate

__all__ = ["TranslationResult", "translate"]

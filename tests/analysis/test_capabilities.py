"""Tests for the capability-certification layer.

Three concerns, in order: the *matrix* — every bundled application and
hand-built SDG receives exactly the certificates the static proofs
support, with readable refusals for the rest; the *fold synthesis* —
the incremental form of a foldable merge computes what the original
loop computes; and the *soundness boundary* — programs whose merges
the lint pass flags are never granted ``COMMUTATIVE_MERGE``, so the
runtime's relaxed paths stay unreachable for them by construction.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capabilities import (
    MergeFold,
    ProgramCapabilities,
    certify,
)
from repro.analysis.engine import bundled_objects
from repro.apps import CollaborativeFiltering
from repro.apps.logistic_regression import LogisticRegression
from repro.apps.multiclass import N_CLASSES, N_FEATURES, MulticlassRegression
from repro.state import Vector
from repro.testing import build_cf_sdg, build_iterative_sdg, build_kv_sdg

from tests.analysis.fixtures import (
    clean,
    laundered_index_merge,
    operand_swap_merge,
    order_sensitive_merge,
)


def certify_bundled(key):
    target, label = bundled_objects()[key]()
    return certify(target, label.split(":")[-1])


# ---------------------------------------------------------------------------
# The certification matrix
# ---------------------------------------------------------------------------

#: key -> (flags, commutative, foldable, batchable_rmw, entries, edges,
#:         batch_state_tes) for every bundled target.
BUNDLED_MATRIX = {
    "cf": (["COMMUTATIVE_MERGE", "BATCHABLE_RMW", "SUBSTRATE_SAFE"],
           ("merge",), ("merge",), ("add_rating_1_co_occ",),
           [], [], ["add_rating_1_co_occ"]),
    "kvstore": (["SUBSTRATE_SAFE"], (), (), (), [], [], ["bump"]),
    "lr": (["COMMUTATIVE_MERGE", "COALESCIBLE_DISPATCH", "SUBSTRATE_SAFE"],
           ("average",), (), (), ["train"], [], []),
    "kmeans": (["COALESCIBLE_DISPATCH", "SUBSTRATE_SAFE"],
               (), (), (), ["observe"], [], []),
    "multiclass": (["COMMUTATIVE_MERGE", "COALESCIBLE_DISPATCH",
                    "SUBSTRATE_SAFE"],
                   ("average",), (), (), ["train"], [], []),
    "wordcount": (["COALESCIBLE_DISPATCH", "SUBSTRATE_SAFE"], (), (), (),
                  ["query", "split"], [("split", "count")], ["count"]),
    "pagerank": (["SUBSTRATE_SAFE"], (), (), (), [], [], []),
}


class TestBundledMatrix:
    @pytest.mark.parametrize("key", sorted(BUNDLED_MATRIX))
    def test_bundled_target_certificates(self, key):
        expected = BUNDLED_MATRIX[key]
        caps = certify_bundled(key)
        got = (caps.flags, caps.commutative_merges, caps.foldable_merges,
               caps.batchable_rmw, sorted(caps.coalescible_entries),
               sorted(caps.coalescible_edges),
               sorted(caps.batch_state_tes))
        assert got == expected, f"{key}: {got}"

    def test_refused_certificates_carry_readable_reasons(self):
        kv = certify_bundled("kvstore")
        assert any("non-commutative writes" in r for r in kv.refusals)
        assert any("bump" in r for r in kv.refusals)
        kmeans = certify_bundled("kmeans")
        assert any("merge_centroids" in r for r in kmeans.refusals)

    def test_hand_built_cf_sdg(self):
        caps = certify(build_cf_sdg)
        assert caps.flags == [
            "BATCHABLE_RMW", "COALESCIBLE_DISPATCH", "SUBSTRATE_SAFE",
        ]
        assert caps.batchable_rmw == ("updateCoOcc",)
        assert ("updateUserItem", "updateCoOcc") in caps.coalescible_edges
        # The order-sensitive merge TE is refused, with the line.
        assert any("mergeRec" in r for r in caps.refusals)

    def test_hand_built_kv_sdg(self):
        caps = certify(build_kv_sdg)
        assert caps.flags == ["COALESCIBLE_DISPATCH", "SUBSTRATE_SAFE"]
        assert sorted(caps.coalescible_entries) == ["serve"]
        assert not caps.batch_state_tes

    def test_hand_built_iterative_sdg_coalesces_both_directions(self):
        caps = certify(build_iterative_sdg)
        assert sorted(caps.coalescible_edges) == [
            ("stepA", "stepB"), ("stepB", "stepA"),
        ]


class TestCertifyDispatch:
    def test_sdg_factory_uses_function_name(self):
        assert certify(build_kv_sdg).target == "build_kv_sdg"

    def test_sdg_instance_uses_graph_name(self):
        sdg = build_kv_sdg()
        assert certify(sdg).target == sdg.name

    def test_explicit_name_wins(self):
        assert certify(build_kv_sdg, name="custom").target == "custom"

    def test_uncertifiable_target_rejected(self):
        with pytest.raises(TypeError, match="cannot certify"):
            certify(42)


# ---------------------------------------------------------------------------
# The soundness boundary: flagged merges are never certified
# ---------------------------------------------------------------------------


class TestUncertifiedRefused:
    @pytest.mark.parametrize("module, cls_name, merge_name", [
        (order_sensitive_merge, "OrderSensitiveMerge", "newest_wins"),
        (operand_swap_merge, "OperandSwapMerge", "alternating"),
        (laundered_index_merge, "LaunderedIndexMerge", "top_pick"),
    ], ids=["index", "operand-swap", "laundered-index"])
    def test_flagged_merge_refused_by_name(self, module, cls_name,
                                           merge_name):
        caps = certify(getattr(module, cls_name))
        assert "COMMUTATIVE_MERGE" not in caps.flags
        assert not caps.commutative_merges
        assert not caps.merge_folds
        assert any(merge_name in r for r in caps.refusals)

    def test_clean_fixture_earns_every_flag(self):
        caps = certify(clean.CleanCounters)
        assert caps.flags == [
            "COMMUTATIVE_MERGE", "BATCHABLE_RMW", "COALESCIBLE_DISPATCH",
            "SUBSTRATE_SAFE",
        ]


# ---------------------------------------------------------------------------
# Fold synthesis
# ---------------------------------------------------------------------------


def vectors(rows):
    out = []
    for values in rows:
        v = Vector()
        v.add_vector(values)
        out.append(v)
    return out


class TestFoldSynthesis:
    def test_cf_fold_is_keyed_by_te_name(self):
        caps = certify(CollaborativeFiltering)
        assert list(caps.merge_folds) == ["get_rec_2_merge_merge"]
        assert isinstance(caps.merge_folds["get_rec_2_merge_merge"],
                          MergeFold)

    def test_fold_matches_the_buffered_merge(self):
        fold = certify(CollaborativeFiltering).merge_folds[
            "get_rec_2_merge_merge"]
        items = vectors([[1, 2, 3], [4, 0, 6], [7, 8, 0]])
        acc = fold.init()
        for item in items:
            acc = fold.step(acc, item)
        merged = CollaborativeFiltering.merge(None, items)
        assert acc.to_list() == merged.to_list()
        # The engine invokes the merge over [accumulator]: the init
        # value is the additive identity, so re-merging is a no-op.
        assert CollaborativeFiltering.merge(
            None, [acc]).to_list() == merged.to_list()

    def test_fold_init_is_fresh_per_call(self):
        fold = certify(CollaborativeFiltering).merge_folds[
            "get_rec_2_merge_merge"]
        first = fold.step(fold.init(), vectors([[5]])[0])
        second = fold.init()
        assert second.to_list() != first.to_list()

    def test_non_foldable_commutative_merge_has_no_fold(self):
        caps = certify(LogisticRegression)
        assert caps.commutative_merges == ("average",)
        assert not caps.foldable_merges
        assert not caps.merge_folds


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


class TestSerialization:
    def test_to_dict_is_json_clean_and_fold_free(self):
        payload = certify(CollaborativeFiltering).to_dict()
        assert "merge_folds" not in payload
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped == payload
        assert payload["flags"] == [
            "COMMUTATIVE_MERGE", "BATCHABLE_RMW", "SUBSTRATE_SAFE",
        ]
        assert payload["foldable_merges"] == ["merge"]

    def test_edges_serialise_as_pairs(self):
        payload = certify_bundled("wordcount").to_dict()
        assert payload["coalescible_edges"] == [["split", "count"]]

    def test_empty_constructor_records_refusals(self):
        caps = ProgramCapabilities.empty("t", "reason one", "reason two")
        assert caps.flags == []
        assert caps.refusals == ("reason one", "reason two")


# ---------------------------------------------------------------------------
# Property: certified-commutative merges really are order-insensitive
# ---------------------------------------------------------------------------

# One integer-valued item strategy per certified merge. Integer inputs
# make commutativity *exact* (float addition is only logically
# commutative), matching the optimizer differentials' contract.
_ITEM_STRATEGIES = {
    (CollaborativeFiltering, "merge"):
        st.lists(st.integers(-50, 50), min_size=1, max_size=6),
    (LogisticRegression, "average"):
        st.lists(st.integers(-50, 50), min_size=1, max_size=6),
    (MulticlassRegression, "average"):
        st.lists(st.lists(st.integers(-20, 20), min_size=N_FEATURES,
                          max_size=N_FEATURES),
                 min_size=N_CLASSES, max_size=N_CLASSES),
}


def _as_merge_input(cls, raw_items):
    if cls is CollaborativeFiltering:
        return vectors(raw_items)
    return raw_items


def _canonical(cls, result):
    return result.to_list() if cls is CollaborativeFiltering else result


def test_every_certified_commutative_merge_is_property_tested():
    """The strategy table must cover the whole certified surface."""
    certified = set()
    for key in BUNDLED_MATRIX:
        target, label = bundled_objects()[key]()
        if not isinstance(target, type):
            continue  # hand-built SDG merges carry no fold/method pair
        for merge in certify(target).commutative_merges:
            certified.add((target, merge))
    assert certified == set(_ITEM_STRATEGIES)


@pytest.mark.parametrize("cls, merge_name", sorted(
    _ITEM_STRATEGIES, key=lambda pair: (pair[0].__name__, pair[1])),
    ids=lambda value: getattr(value, "__name__", value))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_certified_merge_is_permutation_invariant(cls, merge_name, data):
    raw = data.draw(st.lists(_ITEM_STRATEGIES[(cls, merge_name)],
                             min_size=1, max_size=5))
    permuted_raw = data.draw(st.permutations(raw))
    merge = getattr(cls, merge_name)
    baseline = merge(None, _as_merge_input(cls, raw))
    shuffled = merge(None, _as_merge_input(cls, permuted_raw))
    assert _canonical(cls, baseline) == _canonical(cls, shuffled)

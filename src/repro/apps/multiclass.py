"""Multiclass (softmax) regression over a partial DenseMatrix.

A second flavour of the paper's online-learning workloads (§1, §6.2):
the model is a *dense* class-by-feature weight matrix held as partial
state. Every replica performs local SGD steps against its own copy;
reading the model globally averages the replicas — the same
parameter-averaging pattern as binary LR, but exercising the
``DenseMatrix`` SE through the translator (fixed shape, full rows).

The model dimensions are module-level constants because the translated
task code resolves names against the module globals (a translated
program cannot capture closure state — it must be location
independent, §4.1).
"""

from __future__ import annotations

import math

from repro.annotations import Partial, collection, entry, global_
from repro.program import SDGProgram
from repro.state import DenseMatrix

#: Number of classes and features (incl. the bias column).
N_CLASSES = 3
N_FEATURES = 6


def softmax(scores):
    """Numerically-stable softmax over a score list."""
    peak = max(scores)
    exps = [math.exp(s - peak) for s in scores]
    total = sum(exps)
    return [e / total for e in exps]


class MulticlassRegression(SDGProgram):
    """Streaming softmax regression with replica-averaged reads."""

    weights = Partial(lambda: DenseMatrix(N_CLASSES, N_FEATURES))

    @entry
    def train(self, features, label, learning_rate):
        """One softmax-SGD step on the local weight replica."""
        w = self.weights
        scores = []
        for c in range(N_CLASSES):
            z = 0.0
            for i in range(len(features)):
                z = z + w.get_element(c, i) * features[i]
            scores.append(z)
        probabilities = self.predict_proba(scores)
        for c in range(N_CLASSES):
            target = 1.0 if c == label else 0.0
            gradient = probabilities[c] - target
            for i in range(len(features)):
                w.add_element(c, i,
                              -learning_rate * gradient * features[i])

    @entry
    def get_model(self):
        """The averaged class-weight rows across all replicas."""
        partial_rows = global_(self.weights).to_rows()
        model = self.average(collection(partial_rows))
        return model

    def predict_proba(self, scores):
        return softmax(scores)

    def average(self, all_rows):
        """Elementwise mean of the replica weight matrices."""
        if not all_rows:
            return []
        model = [[0.0] * N_FEATURES for _ in range(N_CLASSES)]
        for rows in all_rows:
            for c in range(N_CLASSES):
                for i in range(N_FEATURES):
                    model[c][i] = model[c][i] + rows[c][i]
        count = len(all_rows)
        return [[value / count for value in row] for row in model]

    def classify_with(self, model, features):
        """argmax class under an exported model."""
        best, best_score = 0, None
        for c in range(len(model)):
            z = 0.0
            for i in range(min(len(model[c]), len(features))):
                z = z + model[c][i] * features[i]
            if best_score is None or z > best_score:
                best, best_score = c, z
        return best

"""Reactive runtime parallelism on the real engine (§3.3).

A single-partition KV store is flooded with requests; the bottleneck
detector notices the backlog and the engine scales the TE (and its
partitioned state) while traffic keeps flowing. A monitor samples the
instance count and backlog so the timeline is visible — the in-process
sibling of the paper's Fig. 10.

Run with:

    python examples/reactive_scaling.py
"""

from repro.apps import KeyValueStore
from repro.runtime import RuntimeConfig, RuntimeMonitor
from repro.workloads import KVWorkload


def main():
    app = KeyValueStore.launch(config=RuntimeConfig(
        se_instances={"table": 1},
        auto_scale=True,
        scale_threshold=30,
        max_instances=4,
        scale_check_every=100,
    ))
    monitor = RuntimeMonitor(sample_every=200).install(app.runtime)

    workload = KVWorkload(n_keys=500, read_fraction=0.0, seed=31)
    for op in workload.ops(1_500):
        app.put(op.key, op.value)
    app.run()

    put_te = app.translation.entry_info("put").entry_te
    print("scaling timeline (step, TE, instances after):")
    for step, te_name, count in app.runtime.scale_events:
        print(f"  step {step:5d}: {te_name} -> {count} instances")
    print(f"\nfinal partitions: "
          f"{len(app.runtime.se_instances('table'))}")

    sizes = [len(element) for element in app.state_of("table")]
    print(f"keys per partition after rebalancing: {sizes} "
          f"(total {sum(sizes)})")

    print("\nbacklog samples (engine step -> queued items):")
    for step, backlog in monitor.backlog_series(put_te)[:8]:
        bar = "#" * min(60, backlog // 10)
        print(f"  step {step:5d}: {backlog:5d} {bar}")

    # Everything still correct after all that movement.
    workload_check = KVWorkload(n_keys=500, read_fraction=0.0, seed=31)
    expected = {}
    for op in workload_check.ops(1_500):
        expected[op.key] = op.value
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    assert merged == expected
    print("\nstate identical to a sequential run  [ok]")


if __name__ == "__main__":
    main()

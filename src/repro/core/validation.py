"""Structural validation of SDGs.

Enforces the invariants stated in the paper:

* access edges form a partial function — each TE accesses at most one SE
  (§3.1); guaranteed by construction here, re-checked for completeness;
* partitioned SEs must be reached through a *unique* partitioning: all
  keyed dataflows into TEs that access the same partitioned SE must use
  the same key, and a partitioned matrix cannot be accessed by row and by
  column at once (§3.2);
* ``@Global`` access is only meaningful on partial SEs (§4.1);
* an ``ALL_TO_ONE`` (gather) edge must terminate at a merge TE, and merge
  TEs must be fed by gather edges (§4.2 rule 5);
* every TE should be reachable from an entry TE, otherwise it would never
  receive data.
"""

from __future__ import annotations

from repro.core.dispatch import Dispatch
from repro.core.elements import AccessMode, StateKind
from repro.errors import ValidationError


def validate(sdg) -> None:
    """Raise :class:`ValidationError` on the first violated invariant."""
    _check_access_modes(sdg)
    _check_partitioned_access(sdg)
    _check_gather_edges(sdg)
    _check_reachability(sdg)


def _check_access_modes(sdg) -> None:
    for te in sdg.tasks.values():
        if te.state is None:
            continue
        se = sdg.state(te.state)
        if te.access is AccessMode.GLOBAL and se.kind is not StateKind.PARTIAL:
            raise ValidationError(
                f"TE {te.name!r} uses global access on SE {se.name!r}, "
                f"but global access requires partial state"
            )
        if (
            te.access is AccessMode.PARTITIONED
            and se.kind is not StateKind.PARTITIONED
        ):
            raise ValidationError(
                f"TE {te.name!r} uses partitioned access on SE "
                f"{se.name!r}, which is {se.kind.value}"
            )
        if te.access is AccessMode.LOCAL and se.kind is StateKind.PARTITIONED:
            raise ValidationError(
                f"TE {te.name!r} uses local access on partitioned SE "
                f"{se.name!r}; partitioned SEs require keyed access"
            )


def _check_partitioned_access(sdg) -> None:
    """All routes into one partitioned SE must agree on the key (§3.2)."""
    for se in sdg.states.values():
        if se.kind is not StateKind.PARTITIONED:
            continue
        key_names: set[str] = set()
        for te in sdg.tasks_accessing(se.name):
            if te.is_entry:
                if te.entry_key_fn is None:
                    raise ValidationError(
                        f"entry TE {te.name!r} accesses partitioned SE "
                        f"{se.name!r} but declares no entry_key_fn; "
                        f"external input must be dispatched by key"
                    )
                key_names.add(te.entry_key_name or "<anonymous>")
            for edge in sdg.predecessors(te.name):
                if edge.dispatch is Dispatch.KEY_PARTITIONED:
                    key_names.add(edge.key_name or "<anonymous>")
                elif edge.dispatch is not Dispatch.ALL_TO_ONE:
                    raise ValidationError(
                        f"dataflow {edge.src}->{edge.dst} reaches TE "
                        f"{te.name!r} accessing partitioned SE "
                        f"{se.name!r} but is dispatched "
                        f"{edge.dispatch.value!r}; keyed dispatch is "
                        f"required for local partition access"
                    )
        named = {k for k in key_names if k != "<anonymous>"}
        if len(named) > 1:
            raise ValidationError(
                f"partitioned SE {se.name!r} is accessed with conflicting "
                f"partitioning keys {sorted(named)}; a unique partitioning "
                f"is required"
            )


def _check_gather_edges(sdg) -> None:
    for edge in sdg.dataflows:
        dst = sdg.task(edge.dst)
        if edge.dispatch is Dispatch.ALL_TO_ONE and not dst.is_merge:
            raise ValidationError(
                f"gather dataflow {edge.src}->{edge.dst} must end at a "
                f"merge TE (a synchronisation barrier)"
            )
    for te in sdg.tasks.values():
        if not te.is_merge:
            continue
        incoming = sdg.predecessors(te.name)
        if incoming and not any(
            e.dispatch is Dispatch.ALL_TO_ONE for e in incoming
        ):
            raise ValidationError(
                f"merge TE {te.name!r} has no all-to-one input; a merge "
                f"reconciles gathered partial values"
            )


def _check_reachability(sdg) -> None:
    if not sdg.entries():
        raise ValidationError("SDG has no entry task element")
    reachable = sdg.reachable_from_entries()
    unreachable = set(sdg.tasks) - reachable
    if unreachable:
        raise ValidationError(
            f"task elements unreachable from any entry: "
            f"{sorted(unreachable)}"
        )

"""Unit tests for metric collection."""

import pytest

from repro.simulation.metrics import (
    CheckpointTraffic,
    LatencyRecorder,
    candlestick,
    percentile,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_sample(self):
        assert percentile([7], 95) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCandlestick:
    def test_five_points_ordered(self):
        stick = candlestick(list(range(100)))
        values = stick.as_tuple()
        assert values == tuple(sorted(values))
        assert stick.p50 == pytest.approx(49.5)

    def test_matches_paper_percentiles(self):
        data = list(range(1, 101))
        stick = candlestick(data)
        assert stick.p5 == pytest.approx(percentile(data, 5))
        assert stick.p95 == pytest.approx(percentile(data, 95))


class TestLatencyRecorder:
    def test_record_and_summarise(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert len(recorder) == 3
        assert recorder.mean() == pytest.approx(2.0)
        assert recorder.percentile(50) == 2.0

    def test_weighted_record(self):
        recorder = LatencyRecorder()
        recorder.record(1.0, weight=9)
        recorder.record(100.0, weight=1)
        assert recorder.percentile(50) == 1.0
        assert recorder.percentile(95) > 1.0

    def test_mean_of_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()


class TestCheckpointTraffic:
    def traffic(self):
        t = CheckpointTraffic()
        t.record("full", 1000, 64_000)
        t.record("delta", 10, 640)
        t.record("delta", 20, 1280)
        return t

    def test_cycle_counts(self):
        t = self.traffic()
        assert len(t) == 3
        assert t.full_cycles() == 1
        assert t.delta_cycles() == 2

    def test_totals(self):
        t = self.traffic()
        assert t.total_bytes() == 64_000 + 640 + 1280
        assert t.total_entries() == 1030

    def test_delta_chain_bytes_is_the_tail_since_last_full(self):
        t = self.traffic()
        assert t.delta_chain_bytes() == 640 + 1280
        t.record("full", 1000, 64_000)
        assert t.delta_chain_bytes() == 0.0
        t.record("delta", 5, 320)
        assert t.delta_chain_bytes() == 320

    def test_savings_vs_full(self):
        t = self.traffic()
        baseline = 64_000 * 3
        expected = 1.0 - t.total_bytes() / baseline
        assert t.savings_vs_full(64_000) == pytest.approx(expected)
        assert CheckpointTraffic().savings_vs_full(64_000) == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CheckpointTraffic().record("partial", 1, 1)

"""The four-step TE/SE-to-node allocation algorithm (§3.3).

The strategy is to avoid remote state access by colocating TEs with the
SEs they access:

1. if there is a cycle in the SDG, all SEs accessed in the cycle are
   colocated (reduces communication in iterative algorithms);
2. the remaining SEs are allocated on separate nodes (maximises the
   memory available to each);
3. TEs are colocated with the SEs that they access;
4. any unallocated TEs are assigned to separate, fresh nodes.

For the paper's Fig. 1 CF example this yields exactly the published
mapping: ``{updateUserItem, getUserVec, userItem} -> n1``,
``{updateCoOcc, getRecVec, coOcc} -> n2`` and ``{merge} -> n3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError


@dataclass
class Allocation:
    """The result of mapping SDG elements to logical nodes.

    ``node_of`` maps element names (TEs and SEs) to node ids ``0..n-1``;
    ``nodes`` is the inverse, grouping element names per node.
    """

    node_of: dict[str, int] = field(default_factory=dict)
    nodes: dict[int, set[str]] = field(default_factory=dict)

    def place(self, element: str, node: int) -> None:
        if element in self.node_of:
            raise AllocationError(f"{element!r} allocated twice")
        self.node_of[element] = node
        self.nodes.setdefault(node, set()).add(element)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def colocated(self, a: str, b: str) -> bool:
        """Whether two elements share a node."""
        return self.node_of[a] == self.node_of[b]


def allocate(sdg) -> Allocation:
    """Run the four-step allocation over a validated SDG."""
    allocation = Allocation()
    next_node = 0

    # Step 1: colocate all SEs accessed inside each dataflow cycle.
    placed_states: set[str] = set()
    for cycle in sdg.cycles():
        cycle_states = {
            sdg.task(te).state
            for te in cycle
            if sdg.task(te).state is not None
        }
        cycle_states -= placed_states
        if not cycle_states:
            continue
        for se_name in sorted(cycle_states):
            allocation.place(se_name, next_node)
            placed_states.add(se_name)
        next_node += 1

    # Step 2: remaining SEs on separate nodes to maximise memory.
    for se_name in sdg.states:
        if se_name not in placed_states:
            allocation.place(se_name, next_node)
            placed_states.add(se_name)
            next_node += 1

    # Step 3: TEs join the node of the SE they access.
    unallocated: list[str] = []
    for te in sdg.tasks.values():
        if te.state is not None:
            allocation.place(te.name, allocation.node_of[te.state])
        else:
            unallocated.append(te.name)

    # Step 4: remaining (stateless) TEs on fresh nodes.
    for te_name in unallocated:
        allocation.place(te_name, next_node)
        next_node += 1

    return allocation

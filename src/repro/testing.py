"""Reference graphs and oracles for testing SDG deployments.

Downstream users (and this repository's own suite) need small,
well-understood SDGs to exercise runtimes, checkpointing and recovery
against. This module provides:

* :func:`build_cf_sdg` — the paper's Fig. 1 collaborative-filtering
  graph, hand-built with the low-level API (five TEs, two SEs);
* :func:`build_kv_sdg` — the §6.1 partitioned key/value store;
* :func:`build_iterative_sdg` — a two-TE keyed loop over two SEs
  (exercises cycle detection and step 1 of the allocator);
* :func:`reference_cf` — a plain-Python oracle for Alg. 1, used to
  check distributed CF results item by item.
"""

from __future__ import annotations

from repro.core import SDG, AccessMode, Dispatch, StateKind
from repro.state import KeyValueMap, Matrix, Vector


def noop(ctx, item):
    """The identity task function."""
    return item


def build_cf_sdg() -> SDG:
    """The collaborative-filtering SDG of the paper's Fig. 1.

    ``updateUserItem -> updateCoOcc`` realise ``addRating``;
    ``getUserVec -> getRecVec -> mergeRec`` realise ``getRec``. Inputs:
    inject ``(user, item, rating)`` into ``updateUserItem`` and a user
    id into ``getUserVec``; results appear as ``(user, Vector)`` pairs
    from ``mergeRec``.
    """
    sdg = SDG("cf")
    sdg.add_state("userItem", Matrix, kind=StateKind.PARTITIONED,
                  partition_by="user")
    sdg.add_state("coOcc", Matrix, kind=StateKind.PARTIAL)

    def update_user_item(ctx, item):
        user, movie, rating = item
        ctx.state.set_element(user, movie, rating)
        user_row = ctx.state.get_row(user)
        return (movie, user_row)

    def update_co_occ(ctx, item):
        movie, user_row = item
        for i, value in enumerate(user_row.to_list()):
            if value > 0 and i != movie:
                ctx.state.add_element(movie, i, 1)
                ctx.state.add_element(i, movie, 1)
        return None

    def get_user_vec(ctx, item):
        user = item
        return (user, ctx.state.get_row(user))

    def get_rec_vec(ctx, item):
        user, user_row = item
        return (user, ctx.state.multiply(user_row))

    def merge(ctx, gathered):
        user = gathered[0][0]
        rec = Vector.sum_merge([vec for _, vec in gathered])
        return (user, rec)

    sdg.add_task("updateUserItem", update_user_item, state="userItem",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda item: item[0], entry_key_name="user")
    sdg.add_task("updateCoOcc", update_co_occ, state="coOcc",
                 access=AccessMode.LOCAL)
    sdg.add_task("getUserVec", get_user_vec, state="userItem",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda user: user, entry_key_name="user")
    sdg.add_task("getRecVec", get_rec_vec, state="coOcc",
                 access=AccessMode.GLOBAL)
    sdg.add_task("mergeRec", merge, is_merge=True)

    sdg.connect("updateUserItem", "updateCoOcc", Dispatch.ONE_TO_ANY)
    sdg.connect("getUserVec", "getRecVec", Dispatch.ONE_TO_ALL)
    sdg.connect("getRecVec", "mergeRec", Dispatch.ALL_TO_ONE)
    return sdg


def build_kv_sdg() -> SDG:
    """A partitioned key/value store (the §6.1 synthetic benchmark).

    Inject ``("put", key, value)`` or ``("get", key, None)`` into
    ``serve``; get responses appear as ``(key, value)`` results.
    """
    sdg = SDG("kvstore")
    sdg.add_state("table", KeyValueMap, kind=StateKind.PARTITIONED,
                  partition_by="key")

    def serve(ctx, request):
        op, key, value = request
        if op == "put":
            ctx.state.put(key, value)
            return None
        return (key, ctx.state.get(key))

    sdg.add_task("serve", serve, state="table",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda req: req[1], entry_key_name="key")
    return sdg


def build_iterative_sdg() -> SDG:
    """A two-TE keyed loop over two SEs (cycle/allocation fixture).

    Inject an integer into ``stepA``; it circulates ``stepA -> stepB ->
    stepA`` decrementing until it reaches zero.
    """
    sdg = SDG("loop")
    sdg.add_state("modelA", KeyValueMap, kind=StateKind.PARTITIONED)
    sdg.add_state("modelB", KeyValueMap, kind=StateKind.PARTITIONED)

    def step_a(ctx, item):
        return item - 1 if item > 0 else None

    def step_b(ctx, item):
        return item

    sdg.add_task("stepA", step_a, state="modelA",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda x: x, entry_key_name="k")
    sdg.add_task("stepB", step_b, state="modelB",
                 access=AccessMode.PARTITIONED)
    sdg.connect("stepA", "stepB", Dispatch.KEY_PARTITIONED,
                key_fn=lambda x: x, key_name="k")
    sdg.connect("stepB", "stepA", Dispatch.KEY_PARTITIONED,
                key_fn=lambda x: x, key_name="k")
    return sdg


def reference_cf(ratings, query_user) -> dict[int, float]:
    """Sequential Alg. 1 oracle: item -> recommendation score.

    Matches :func:`build_cf_sdg`'s semantics (self co-occurrence
    excluded) for any interleaving-free rating sequence.
    """
    user_item: dict[tuple[int, int], float] = {}
    co_occ: dict[tuple[int, int], float] = {}
    for user, item, rating in ratings:
        user_item[(user, item)] = rating
        row = {i: r for (u, i), r in user_item.items() if u == user}
        for i, value in row.items():
            if value > 0 and i != item:
                co_occ[(item, i)] = co_occ.get((item, i), 0) + 1
                co_occ[(i, item)] = co_occ.get((i, item), 0) + 1
    row = {i: r for (u, i), r in user_item.items() if u == query_user}
    rec: dict[int, float] = {}
    for (r, c), count in co_occ.items():
        if c in row and row[c]:
            rec[r] = rec.get(r, 0.0) + count * row[c]
    return rec

"""Intra-class call-graph construction for interprocedural sdglint.

Every value-level pass used to analyse one method body at a time,
which made ``self._helper(...)`` an analysis boundary: a
nondeterministic call, journal bypass or replica-tainted flow
laundered through a helper was invisible. This module recovers the
missing structure. It builds, per translated program class, a call
graph over

* the class's own methods (entries, helpers, merges) called as
  ``self.helper(...)``,
* staticmethods, reached as ``self.helper(...)``,
  ``self.__class__.helper(...)`` or ``ClassName.helper(...)``,
* module-level free functions of the class's module, called by bare
  name (``sigmoid(z)``),

and exposes the strongly connected components in reverse topological
order so :mod:`repro.analysis.summaries` can compute per-function
summaries to fixpoint (callees before callers; mutually recursive
groups iterated together).

Resolution is deliberately conservative: a bare name that is locally
bound (parameter, assignment, comprehension target), import-aliased,
or simply unknown does **not** resolve to a function node. Unknown
call targets are recorded as *opaque* so the summary layer can degrade
them to the conservative opaque summary instead of silently assuming
purity.

Line numbers of module-level functions are rebased into the same
class-relative coordinate system the method ASTs use, so one
``DiagnosticSink.line_base`` converts every site to an absolute file
position.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from dataclasses import dataclass, field

from repro.translate.restrictions import collect_import_aliases


@dataclass(frozen=True)
class CallSite:
    """One resolved call from ``caller`` into ``callee``."""

    caller: str
    callee: str
    lineno: int  # class-relative, like every method AST lineno
    col: int


@dataclass
class FunctionNode:
    """One analysable function: a class method or a module-level def."""

    name: str
    fn_ast: ast.FunctionDef
    #: ``"method"`` | ``"staticmethod"`` | ``"function"``.
    kind: str

    @property
    def params(self) -> list[str]:
        """Positional parameters, without the implicit ``self``."""
        names = [arg.arg for arg in self.fn_ast.args.args]
        if self.kind == "method" and names and names[0] == "self":
            return names[1:]
        return names


def local_bindings(fn: ast.FunctionDef) -> set[str]:
    """Names bound inside ``fn``: parameters, assignment targets, loop
    and ``with``/``except`` targets, nested defs. A call through such a
    name is a call through a *local value*, not the builtin or module
    the bare name would otherwise denote.
    """
    bound: set[str] = set()
    args = fn.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            bound.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    bound.discard("self")
    return bound


def _is_staticmethod(fn: ast.FunctionDef) -> bool:
    return any(
        isinstance(deco, ast.Name) and deco.id == "staticmethod"
        for deco in fn.decorator_list
    )


def _is_self_class(node: ast.expr) -> bool:
    """``self.__class__`` as an expression."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "__class__"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


@dataclass
class CallGraph:
    """The intra-class call graph plus its opaque frontier."""

    class_name: str
    nodes: dict[str, FunctionNode] = field(default_factory=dict)
    #: caller name -> resolved call sites, in source order.
    calls: dict[str, list[CallSite]] = field(default_factory=dict)
    #: caller name -> bare names of call targets that could not be
    #: resolved to any function node (builtins, locals, module calls).
    opaque: dict[str, set[str]] = field(default_factory=dict)
    #: Import aliases in scope (module + class level), for resolution.
    aliases: dict[str, str] = field(default_factory=dict)
    #: Per-function locally-bound names (cached for resolution).
    _locals: dict[str, set[str]] = field(default_factory=dict)

    def callees(self, name: str) -> list[CallSite]:
        return self.calls.get(name, [])

    def resolve_call(self, caller: str, node: ast.Call) -> str | None:
        """The function-node name a call resolves to, or ``None``.

        ``None`` covers state-field calls, marker calls, module calls
        and genuinely opaque targets alike — the caller distinguishes
        those through :attr:`opaque` when it needs to.
        """
        func = node.func
        caller_node = self.nodes.get(caller)
        in_method = (caller_node is not None
                     and caller_node.kind in ("method", "staticmethod"))
        if isinstance(func, ast.Attribute):
            owner = func.value
            # self.helper(...)
            if (
                in_method
                and isinstance(owner, ast.Name)
                and owner.id == "self"
                and func.attr in self.nodes
                and self.nodes[func.attr].kind != "function"
            ):
                return func.attr
            # self.__class__.helper(...) / ClassName.helper(...)
            if (
                (_is_self_class(owner)
                 or (isinstance(owner, ast.Name)
                     and owner.id == self.class_name))
                and func.attr in self.nodes
                and self.nodes[func.attr].kind != "function"
            ):
                return func.attr
            return None
        if isinstance(func, ast.Name):
            name = func.id
            if name in self._locals.get(caller, set()):
                return None
            if name in self.aliases:
                return None  # module call; the restriction scan owns it
            target = self.nodes.get(name)
            if target is not None and target.kind == "function":
                return name
        return None

    def sccs(self) -> list[list[str]]:
        """Strongly connected components, callees-first.

        Iterative Tarjan; the returned order is reverse topological
        over the condensation, which is exactly the order a summary
        fixpoint wants (process a component only after everything it
        calls outside itself is final).
        """
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        result: list[list[str]] = []
        counter = [0]

        def edges(name: str) -> list[str]:
            return [site.callee for site in self.callees(name)]

        for root in sorted(self.nodes):
            if root in index:
                continue
            work = [(root, iter(edges(root)))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(edges(succ))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(sorted(component))
        return result


def _module_functions(cls: type, line_base: int) -> dict[str,
                                                         ast.FunctionDef]:
    """Top-level ``def``s of the class's module, linenos rebased to the
    class-relative coordinate system (``abs = line_base + rel - 1``)."""
    module = sys.modules.get(cls.__module__)
    if module is None:
        return {}
    try:
        source = inspect.getsource(module)
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return {}
    functions: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            ast.increment_lineno(node, 1 - line_base)
            functions[node.name] = node
    return functions


def build_callgraph(
    cls: type,
    method_asts: dict[str, ast.FunctionDef],
    line_base: int = 1,
    module_aliases: dict[str, str] | None = None,
) -> CallGraph:
    """Build the call graph of one translated program class.

    ``method_asts`` is the translator's captured class body
    (:attr:`~repro.translate.builder.TranslationResult.method_asts`);
    ``line_base`` is the class's absolute first source line, used to
    rebase module-level function linenos into the same class-relative
    coordinates.
    """
    graph = CallGraph(class_name=cls.__name__)
    graph.aliases = dict(module_aliases or {})
    for name, fn_ast in method_asts.items():
        kind = "staticmethod" if _is_staticmethod(fn_ast) else "method"
        graph.nodes[name] = FunctionNode(name=name, fn_ast=fn_ast,
                                         kind=kind)
    for name, fn_ast in _module_functions(cls, line_base).items():
        if name in graph.nodes:
            continue  # a method shadows a same-named module def
        graph.nodes[name] = FunctionNode(name=name, fn_ast=fn_ast,
                                         kind="function")
    for name, node in graph.nodes.items():
        graph._locals[name] = local_bindings(node.fn_ast)
    for name, node in graph.nodes.items():
        sites: list[CallSite] = []
        unknown: set[str] = set()
        for call in ast.walk(node.fn_ast):
            if not isinstance(call, ast.Call):
                continue
            target = graph.resolve_call(name, call)
            if target is not None:
                sites.append(CallSite(
                    caller=name, callee=target,
                    lineno=call.lineno, col=call.col_offset,
                ))
                continue
            func = call.func
            if isinstance(func, ast.Name) and (
                func.id not in graph.aliases
                and func.id not in graph._locals[name]
                and func.id not in ("global_", "collection")
            ):
                unknown.add(func.id)
        graph.calls[name] = sites
        if unknown:
            graph.opaque[name] = unknown
    return graph

"""Causal traces must survive repartitioning *and* crash replay.

The acceptance scenario for tracing: an envelope that is (1) drained
out of an inbox during a repartition epoch and re-routed, then (2)
replayed from the upstream log after its node crashes, keeps its one
trace id throughout — the re-execution appears inside the *same* trace
as an extra hop marked ``replayed=True``, never as a fresh trace.
"""

from repro.recovery import BackupStore, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig

from tests.helpers import build_kv_sdg


def test_trace_survives_repartition_then_crash_replay():
    runtime = Runtime(
        build_kv_sdg(),
        RuntimeConfig(se_instances={"table": 2}, trace=True),
    )
    runtime.deploy()

    # Phase 1: queue puts, then repartition *before* they are served —
    # every queued envelope is drained and re-sent under the new epoch.
    n_items = 12
    for i in range(n_items):
        runtime.inject("serve", ("put", i, i))
    assert runtime.scale_up("serve")
    runtime.run_until_idle()

    tracer = runtime.tracer
    assert len(tracer.traces()) == n_items  # re-routing minted nothing
    assert all(len(t.hops) == 1 and t.replayed_hops == 0
               for t in tracer.traces())

    # Phase 2: crash the node hosting partition 0 and recover it by
    # pure log replay (empty store): the input log re-delivers every
    # envelope the lost partition had served.
    victim = runtime.se_instance("table", 0).node_id
    runtime.fail_node(victim)
    RecoveryManager(runtime, BackupStore()).recover_node(
        victim, use_checkpoint=False
    )
    runtime.run_until_idle()

    # Still exactly one trace per injected item: replay extended
    # existing traces instead of creating new ones.
    traces = tracer.traces()
    assert len(traces) == n_items

    replayed = [t for t in traces if t.replayed_hops]
    assert replayed, "partition 0 served at least one key pre-crash"
    for trace in replayed:
        first, *rest = trace.hops
        # The original service, then the post-crash re-execution, all
        # under the one trace id.
        assert not first.replayed
        assert [h.replayed for h in rest] == [True] * len(rest)
        assert {h.te for h in trace.hops} == {"serve"}
        # The replay happened after the crash, on the replacement.
        assert all(h.entry_step > first.entry_step for h in rest)

    # Items owned by the surviving partition were not re-executed.
    untouched = [t for t in traces if not t.replayed_hops]
    assert untouched
    assert all(len(t.hops) == 1 for t in untouched)

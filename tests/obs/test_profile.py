"""Tests for the wall-clock phase profiler."""

import pytest

from repro.obs import PHASES, ProfileRegistry, profile_span
from repro.runtime import Runtime, RuntimeConfig
from repro.testing import build_kv_sdg


class TestProfileRegistry:
    def test_phase_timer_accumulates(self):
        reg = ProfileRegistry()
        timer = reg.phase("process")
        timer.add(0.5)
        timer.add(0.25)
        assert reg.seconds("process") == 0.75
        assert reg.count("process") == 2
        assert timer.mean == 0.375

    def test_phase_is_get_or_create(self):
        reg = ProfileRegistry()
        assert reg.phase("x") is reg.phase("x")
        assert reg.seconds("never") == 0.0
        assert reg.count("never") == 0

    def test_canonical_vocabulary_is_stable(self):
        assert PHASES == ("process", "dispatch", "serialize",
                          "wire_wait", "checkpoint", "recovery")

    def test_reset_zeroes_in_place(self):
        reg = ProfileRegistry()
        timer = reg.phase("dispatch")
        timer.add(1.0)
        reg.reset()
        # The pre-bound timer object survives the reset (workers re-use
        # inherited bindings after a fork).
        assert timer.seconds == 0.0 and timer.count == 0
        timer.add(0.5)
        assert reg.seconds("dispatch") == 0.5

    def test_snapshot_merge_roundtrip(self):
        a = ProfileRegistry()
        a.add("process", 1.0)
        a.add("process", 1.0)
        b = ProfileRegistry()
        b.add("process", 0.5)
        b.add("serialize", 0.25)
        merged = a.merged_with([b.snapshot()])
        assert merged.seconds("process") == 2.5
        assert merged.count("process") == 3
        assert merged.seconds("serialize") == 0.25
        # Non-destructive: the sources are untouched.
        assert a.seconds("process") == 2.0
        assert b.seconds("process") == 0.5

    def test_repeated_merges_never_double_count(self):
        # Shards are cumulative snapshots; merged_with builds a fresh
        # registry each call, so polling twice must not double.
        base = ProfileRegistry()
        base.add("checkpoint", 1.0)
        shard = {"process": (2.0, 4)}
        first = base.merged_with([shard])
        second = base.merged_with([shard])
        assert first.seconds("process") == second.seconds("process") == 2.0

    def test_breakdown_and_render(self):
        reg = ProfileRegistry()
        reg.add("process", 0.004)
        reg.add("process", 0.002)
        breakdown = reg.breakdown()
        assert breakdown["process"]["count"] == 2
        assert breakdown["process"]["mean_ms"] == pytest.approx(3.0)
        text = reg.render()
        assert "process" in text and "calls" in text
        assert ProfileRegistry().render() == "(no phases recorded)"


class TestProfileSpan:
    def test_span_records_and_none_is_noop(self):
        reg = ProfileRegistry()
        with profile_span(reg, "recovery"):
            pass
        assert reg.count("recovery") == 1
        with profile_span(None, "recovery"):
            pass  # must not raise

    def test_span_records_on_exception(self):
        reg = ProfileRegistry()
        with pytest.raises(ValueError):
            with profile_span(reg, "checkpoint"):
                raise ValueError("boom")
        assert reg.count("checkpoint") == 1


class TestEngineIntegration:
    def test_profile_off_by_default(self):
        runtime = Runtime(build_kv_sdg()).deploy()
        assert runtime.profiler is None
        assert runtime.merged_profile() is None

    def test_inprocess_run_populates_engine_phases(self):
        config = RuntimeConfig(se_instances={"table": 2}, profile=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        for i in range(25):
            runtime.inject("serve", ("put", f"k{i}", i))
        runtime.run_until_idle()
        profile = runtime.merged_profile()
        assert profile.count("process") == 25
        assert profile.count("dispatch") == 25
        assert profile.seconds("process") >= profile.seconds("dispatch")

    def test_checkpoint_and_recovery_spans(self):
        from repro.recovery import (
            BackupStore,
            CheckpointManager,
            RecoveryManager,
        )

        config = RuntimeConfig(se_instances={"table": 2}, profile=True)
        runtime = Runtime(build_kv_sdg(), config).deploy()
        for i in range(10):
            runtime.inject("serve", ("put", f"k{i}", i))
        runtime.run_until_idle()
        store = BackupStore()
        CheckpointManager(runtime, store).checkpoint_all()
        assert runtime.profiler.count("checkpoint") > 0
        victim = runtime.se_instance("table", 0).node_id
        runtime.fail_node(victim)
        RecoveryManager(runtime, store).recover_node(victim)
        runtime.run_until_idle()
        assert runtime.profiler.count("recovery") == 1

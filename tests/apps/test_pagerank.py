"""Tests for asynchronous PageRank over a cyclic SDG."""

import networkx as nx
import pytest

from repro.apps.pagerank import build_pagerank_sdg, pagerank_scores
from repro.core import allocate
from repro.runtime import Runtime, RuntimeConfig


def run_pagerank(graph: nx.DiGraph, partitions=2, damping=0.85,
                 epsilon=1e-9):
    runtime = Runtime(
        build_pagerank_sdg(damping=damping, epsilon=epsilon),
        RuntimeConfig(se_instances={"vertices": partitions}),
    ).deploy()
    for vertex in graph.nodes:
        runtime.inject("load",
                       (vertex, list(graph.successors(vertex))))
    runtime.run_until_idle(max_steps=50_000_000)
    return runtime


class TestStructure:
    def test_cycle_detected(self):
        sdg = build_pagerank_sdg()
        assert {"push"} in sdg.cycles()

    def test_cycle_state_colocated_with_te(self):
        allocation = allocate(build_pagerank_sdg())
        assert allocation.colocated("push", "vertices")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_pagerank_sdg(damping=1.0)
        with pytest.raises(ValueError):
            build_pagerank_sdg(epsilon=0)


class TestConvergence:
    def assert_matches_networkx(self, graph, partitions=2):
        runtime = run_pagerank(graph, partitions=partitions)
        ours = pagerank_scores(runtime, list(graph.nodes))
        reference = nx.pagerank(graph, alpha=0.85, tol=1e-12,
                                max_iter=500)
        for vertex in graph.nodes:
            assert ours[vertex] == pytest.approx(reference[vertex],
                                                 abs=2e-4)

    def test_small_cycle_graph(self):
        graph = nx.DiGraph([(0, 1), (1, 2), (2, 0)])
        self.assert_matches_networkx(graph)

    def test_star_graph(self):
        graph = nx.DiGraph([(i, 0) for i in range(1, 6)])
        graph.add_edges_from((0, i) for i in range(1, 6))
        self.assert_matches_networkx(graph)

    def test_random_graph_matches_networkx(self):
        graph = nx.gnp_random_graph(25, 0.2, seed=7, directed=True)
        # Give every vertex at least one out-edge (no dangling nodes;
        # the residual-push formulation assumes mass can leave).
        for vertex in list(graph.nodes):
            if graph.out_degree(vertex) == 0:
                graph.add_edge(vertex, (vertex + 1) % 25)
        self.assert_matches_networkx(graph, partitions=4)

    def test_partition_count_does_not_change_result(self):
        graph = nx.gnp_random_graph(15, 0.25, seed=3, directed=True)
        for vertex in list(graph.nodes):
            if graph.out_degree(vertex) == 0:
                graph.add_edge(vertex, (vertex + 1) % 15)
        single = pagerank_scores(run_pagerank(graph, partitions=1),
                                 list(graph.nodes))
        sharded = pagerank_scores(run_pagerank(graph, partitions=4),
                                  list(graph.nodes))
        for vertex in graph.nodes:
            # Partitioning changes processing order, which changes only
            # the sub-epsilon truncation of residual mass.
            assert single[vertex] == pytest.approx(sharded[vertex],
                                                   abs=1e-6)

    def test_iteration_is_uncoordinated(self):
        """The loop runs with no barriers: total steps far exceed the
        vertex count (mass circulates), yet the pipeline terminates."""
        graph = nx.DiGraph([(0, 1), (1, 0)])
        runtime = run_pagerank(graph)
        assert runtime.is_idle()
        assert runtime.total_steps > 10

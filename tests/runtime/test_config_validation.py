"""Deploy-time validation of ``RuntimeConfig`` knobs.

A typo'd SE name or a zero scaling interval must fail at ``deploy()``
with a clear message, not be silently ignored (or divide by zero deep
inside the engine).
"""

import pytest

from repro.errors import RuntimeExecutionError
from repro.runtime import Runtime, RuntimeConfig
from repro.state import HashPartitioner
from repro.testing import build_kv_sdg


def deploy(config):
    return Runtime(build_kv_sdg(), config).deploy()


class TestScalarKnobs:
    @pytest.mark.parametrize("knob", ["scale_threshold", "max_instances",
                                      "scale_check_every"])
    @pytest.mark.parametrize("bad", [0, -3, 2.5, "16", True, None])
    def test_non_positive_or_non_int_rejected(self, knob, bad):
        config = RuntimeConfig(**{knob: bad})
        with pytest.raises(RuntimeExecutionError, match=knob):
            deploy(config)

    def test_valid_config_deploys(self):
        runtime = deploy(RuntimeConfig(scale_threshold=10,
                                       max_instances=4,
                                       scale_check_every=100,
                                       se_instances={"table": 2}))
        assert len(runtime.se_instances("table")) == 2


class TestInstanceMaps:
    def test_unknown_se_name_rejected(self):
        config = RuntimeConfig(se_instances={"tabel": 2})  # typo
        with pytest.raises(RuntimeExecutionError, match="tabel"):
            deploy(config)

    def test_unknown_partitioner_se_rejected(self):
        config = RuntimeConfig(partitioners={"nope": HashPartitioner(2)})
        with pytest.raises(RuntimeExecutionError, match="nope"):
            deploy(config)

    def test_unknown_te_name_rejected(self):
        config = RuntimeConfig(te_instances={"server": 2})  # typo
        with pytest.raises(RuntimeExecutionError, match="server"):
            deploy(config)

    def test_error_lists_known_names(self):
        config = RuntimeConfig(se_instances={"tabel": 2})
        with pytest.raises(RuntimeExecutionError, match="'table'"):
            deploy(config)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_non_positive_se_count_rejected(self, bad):
        config = RuntimeConfig(se_instances={"table": bad})
        with pytest.raises(RuntimeExecutionError, match="se_instances"):
            deploy(config)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", True])
    def test_non_positive_te_count_rejected(self, bad):
        config = RuntimeConfig(te_instances={"serve": bad})
        with pytest.raises(RuntimeExecutionError, match="te_instances"):
            deploy(config)

"""Unit tests for checkpoint backup stores."""

import os

import pytest

from repro.errors import RecoveryError
from repro.recovery import BackupStore, DiskBackupStore, NodeCheckpoint
from repro.state import KeyValueMap


def make_checkpoint(node_id=0, version=1, n_entries=30, n_chunks=4):
    kv = KeyValueMap()
    for i in range(n_entries):
        kv.put(f"k{i}", i)
    return NodeCheckpoint(
        node_id=node_id, version=version,
        se_chunks={("table", 0): kv.to_chunks(n_chunks)},
    )


class TestBackupStore:
    def test_save_and_latest(self):
        store = BackupStore(m_targets=2)
        checkpoint = make_checkpoint()
        store.save(checkpoint)
        assert store.latest(0) is checkpoint
        assert store.has_checkpoint(0)

    def test_latest_of_unknown_node_is_none(self):
        assert BackupStore().latest(99) is None

    def test_new_checkpoint_evicts_old(self):
        store = BackupStore(m_targets=3)
        store.save(make_checkpoint(version=1, n_entries=10))
        store.save(make_checkpoint(version=2, n_entries=20))
        assert store.latest(0).version == 2
        # No stale chunks from version 1 remain.
        chunks = store.chunks_for(0, ("table", 0))
        total = sum(len(c.items) for c in chunks)
        assert total == 20

    def test_chunks_spread_across_targets(self):
        store = BackupStore(m_targets=4)
        store.save(make_checkpoint(n_chunks=8))
        loads = store.target_loads()
        assert sum(loads) == 8
        assert all(load == 2 for load in loads)

    def test_chunks_for_returns_sorted(self):
        store = BackupStore(m_targets=3)
        store.save(make_checkpoint(n_chunks=5))
        chunks = store.chunks_for(0, ("table", 0))
        assert [c.index for c in chunks] == [0, 1, 2, 3, 4]

    def test_zero_targets_rejected(self):
        with pytest.raises(RecoveryError):
            BackupStore(m_targets=0)

    def test_per_node_isolation(self):
        store = BackupStore(m_targets=2)
        store.save(make_checkpoint(node_id=0, n_entries=10))
        store.save(make_checkpoint(node_id=1, n_entries=20))
        assert store.latest(0).state_entries() == 10
        assert store.latest(1).state_entries() == 20


class TestDiskBackupStore:
    def test_roundtrip_through_disk(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_entries=25, n_chunks=4))
        # A brand-new store over the same directories must reconstruct
        # the full checkpoint from the files alone.
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        assert fresh.latest(0) is not None
        chunks = fresh.chunks_for(0, ("table", 0))
        items = {k: v for c in chunks for k, v in c.items}
        assert items == {f"k{i}": i for i in range(25)}

    def test_resave_removes_stale_files(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_entries=40, n_chunks=6))
        store.save(make_checkpoint(version=2, n_entries=10, n_chunks=2))
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        chunks = fresh.chunks_for(0, ("table", 0))
        total = sum(len(c.items) for c in chunks)
        assert total == 10
        assert fresh.latest(0).version == 2


class TestDiskBackupStoreDurability:
    """Crash-consistency of the on-disk chunk layout."""

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_entries=30, n_chunks=4))
        leftovers = [name for root, _d, names in os.walk(str(tmp_path))
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []

    def test_orphaned_temp_file_is_ignored_on_reload(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(n_entries=10, n_chunks=2))
        # A crash between temp-write and rename leaves a .tmp around.
        target_dir = os.path.join(str(tmp_path), "backup0")
        with open(os.path.join(target_dir, "node0_v9_x.pkl.tmp"),
                  "wb") as fh:
            fh.write(b"half a pickle")
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        assert fresh.latest(0).version == 1

    def test_crash_during_resave_keeps_old_chain_readable(
            self, tmp_path, monkeypatch):
        """The old chain must survive a crash mid-way through a new
        save: files are written via temp+rename *before* stale ones are
        deleted, so an interrupted save leaves at worst both versions,
        never a half-written chunk."""
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(version=1, n_entries=25, n_chunks=4))

        real_replace = os.replace
        calls = {"n": 0}

        def dying_replace(src, dst):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("simulated power cut")
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError):
            store.save(make_checkpoint(version=2, n_entries=40,
                                       n_chunks=4))
        monkeypatch.undo()

        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        chunks = fresh.chunks_for(0, ("table", 0), verify=False,
                                  version=1)
        items = {k: v for c in chunks for k, v in c.items}
        assert items == {f"k{i}": i for i in range(25)}

    def test_prune_drops_versions_above_watermark(self, tmp_path):
        store = DiskBackupStore(str(tmp_path), m_targets=2)
        store.save(make_checkpoint(version=1, n_entries=10))
        removed = store.prune({0: 1})
        assert removed == []
        # Node 5 is not in the watermark map at all: fully dropped.
        store.save(make_checkpoint(node_id=5, version=1, n_entries=5))
        removed = store.prune({0: 1})
        assert removed == [(5, 1)]
        files = [name for root, _d, names in os.walk(str(tmp_path))
                 for name in names]
        assert not any(name.startswith("node5_") for name in files)
        fresh = DiskBackupStore(str(tmp_path), m_targets=2)
        fresh.reload_from_disk()
        assert fresh.latest(5) is None
        assert fresh.latest(0) is not None

    def test_prune_in_memory_store(self):
        store = BackupStore(m_targets=2)
        store.save(make_checkpoint(version=1, n_entries=8))
        store.save(make_checkpoint(node_id=1, version=1, n_entries=8))
        removed = store.prune({0: 1})
        assert removed == [(1, 1)]
        assert store.latest(1) is None
        assert store.latest(0).version == 1

"""Tests for the streaming k-means application."""

import random

import pytest

from repro.apps import KMeans
from repro.core import AccessMode


def make_clusters(seed=5, per_cluster=60):
    """Three well-separated 2-D Gaussian blobs."""
    rng = random.Random(seed)
    centres = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]
    points = []
    for cx, cy in centres:
        for _ in range(per_cluster):
            points.append([cx + rng.gauss(0, 0.5),
                           cy + rng.gauss(0, 0.5)])
    rng.shuffle(points)
    return centres, points


def nearest(centroids, point):
    return min(
        range(len(centroids)),
        key=lambda c: sum((a - b) ** 2
                          for a, b in zip(centroids[c], point)),
    )


class TestTranslationStructure:
    def test_entries_and_modes(self):
        result = KMeans.translate()
        init = result.sdg.task(result.entry_info("init_centroid").entry_te)
        assert init.access is AccessMode.GLOBAL  # broadcast write
        observe = result.sdg.task(result.entry_info("observe").entry_te)
        assert observe.access is AccessMode.LOCAL
        read = result.entry_info("get_centroids")
        assert len(read.te_names) == 2
        assert result.sdg.task(read.te_names[1]).is_merge

    def test_single_state_element(self):
        result = KMeans.translate()
        assert list(result.sdg.states) == ["accumulators"]


class TestSequentialClustering:
    def test_recovers_cluster_centres(self):
        centres, points = make_clusters()
        model = KMeans()
        for cid, centre in enumerate(centres):
            model.init_centroid(cid, list(centre))
        for point in points:
            model.observe(point)
        centroids = model.get_centroids()
        assert len(centroids) == 3
        for cid, centre in enumerate(centres):
            for got, want in zip(centroids[cid], centre):
                assert got == pytest.approx(want, abs=0.6)


class TestDistributedClustering:
    @pytest.mark.parametrize("replicas", [1, 3])
    def test_distributed_recovers_centres(self, replicas):
        centres, points = make_clusters()
        app = KMeans.launch(accumulators=replicas)
        for cid, centre in enumerate(centres):
            app.init_centroid(cid, list(centre))
        app.run()
        # Every replica received the broadcast seed.
        for element in app.state_of("accumulators"):
            assert element.num_rows() == 3
        for point in points:
            app.observe(point)
        app.run()
        app.get_centroids()
        app.run()
        centroids = app.results("get_centroids")[0]
        for cid, centre in enumerate(centres):
            for got, want in zip(centroids[cid], centre):
                assert got == pytest.approx(want, abs=0.6)

    def test_single_replica_matches_sequential(self):
        centres, points = make_clusters(per_cluster=20)
        seq = KMeans()
        app = KMeans.launch(accumulators=1)
        for cid, centre in enumerate(centres):
            seq.init_centroid(cid, list(centre))
            app.init_centroid(cid, list(centre))
        # Different entry streams have no cross-stream ordering
        # guarantee: drain the seeds before streaming points.
        app.run()
        for point in points:
            seq.observe(point)
            app.observe(point)
        app.run()
        app.get_centroids()
        app.run()
        assert app.results("get_centroids")[0] == seq.get_centroids()

    def test_replicas_hold_divergent_accumulators(self):
        centres, points = make_clusters(per_cluster=30)
        app = KMeans.launch(accumulators=2)
        for cid, centre in enumerate(centres):
            app.init_centroid(cid, list(centre))
        app.run()
        for point in points:
            app.observe(point)
        app.run()
        counts = [
            [element.get_element(c, 0) for c in range(3)]
            for element in app.state_of("accumulators")
        ]
        assert counts[0] != counts[1]
        # Points (plus one seed each) are conserved across replicas.
        total = sum(sum(row) for row in counts)
        assert total == len(points) + 3 * 2

    def test_merged_assignment_quality(self):
        centres, points = make_clusters()
        app = KMeans.launch(accumulators=3)
        for cid, centre in enumerate(centres):
            app.init_centroid(cid, list(centre))
        app.run()
        for point in points:
            app.observe(point)
        app.run()
        app.get_centroids()
        app.run()
        centroids = app.results("get_centroids")[0]
        # Consensus centroids classify the stream like the true centres.
        agree = sum(
            1 for point in points
            if nearest(centroids, point) == nearest(list(centres), point)
        )
        assert agree / len(points) > 0.98

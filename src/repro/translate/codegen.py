"""TE code assembly and SE-access translation (Fig. 3, steps 6-8).

Each TE block is rewritten and compiled into a task function with the
runtime's calling convention ``fn(ctx, item)``:

* the prologue unpacks the live-in variables from the incoming item
  (for merge TEs: from the gathered list of per-instance items);
* ``self.<field>`` accesses to the block's SE become accesses to the
  co-located SE instance (``ctx.state``) — the paper's "state accesses
  ... are translated to invocations of the runtime system";
* ``global_(self.<field>)`` markers are unwrapped: the *broadcast* edge
  realises the global semantics, each instance simply computes on its
  local replica;
* ``self.<helper>(...)`` calls are redirected to compiled, state-free
  helper functions;
* the epilogue returns the live-out tuple for the successor TE (or the
  method's return value in the final TE).
"""

from __future__ import annotations

import ast
import copy
from typing import Any, Callable

from repro.errors import TranslationError
from repro.translate.accesses import MergeCall, _marker_name, _self_field
from repro.translate.splitter import Block

_ITEM = "_sdg_item"
_STATE = "_sdg_state"
_HELPER_PREFIX = "_sdg_helper_"


class _Rewriter(ast.NodeTransformer):
    """Rewrites one block's statements for execution inside a TE."""

    def __init__(self, se_field: str | None, helper_names: set[str],
                 merge: MergeCall | None,
                 class_name: str | None = None) -> None:
        self.se_field = se_field
        self.helper_names = helper_names
        self.merge = merge
        self.class_name = class_name

    def visit_Call(self, node: ast.Call):
        marker = _marker_name(node.func)
        if marker == "global_":
            # The broadcast already reached this instance: global access
            # degenerates to local access on the replica.
            inner = node.args[0]
            field = _self_field(inner)
            if field != self.se_field:
                raise TranslationError(
                    f"global_ access to {field!r} inside a TE bound to "
                    f"{self.se_field!r}", lineno=node.lineno,
                )
            return ast.copy_location(
                ast.Name(id=_STATE, ctx=ast.Load()), node
            )
        method = _self_field(node.func)
        if method is not None and method in self.helper_names:
            if (
                self.merge is not None
                and method == self.merge.method
                and any(
                    isinstance(arg, ast.Call)
                    and _marker_name(arg.func) == "collection"
                    for arg in node.args
                )
            ):
                # self.merge(collection(v), extra...) ->
                # _sdg_helper_merge(v, extra...); the prologue has
                # already bound v to the gathered list, and extras are
                # ordinary single-valued expressions.
                return ast.copy_location(
                    ast.Call(
                        func=ast.Name(id=_HELPER_PREFIX + method,
                                      ctx=ast.Load()),
                        args=[ast.Name(id=self.merge.collection_var,
                                       ctx=ast.Load())]
                        + [self.visit(arg) for arg in node.args[1:]],
                        keywords=[],
                    ),
                    node,
                )
            return ast.copy_location(
                ast.Call(
                    func=ast.Name(id=_HELPER_PREFIX + method,
                                  ctx=ast.Load()),
                    args=[self.visit(arg) for arg in node.args],
                    keywords=[
                        ast.keyword(arg=kw.arg, value=self.visit(kw.value))
                        for kw in node.keywords
                    ],
                ),
                node,
            )
        return self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute):
        field = _self_field(node)
        if field is None:
            return self.generic_visit(node)
        if field == "__class__" and self.class_name is not None:
            # ``self.__class__`` → the class name; the module namespace
            # resolves it, preserving class-attribute semantics.
            return ast.copy_location(
                ast.Name(id=self.class_name, ctx=ast.Load()), node
            )
        if field == self.se_field:
            return ast.copy_location(
                ast.Name(id=_STATE, ctx=ast.Load()), node
            )
        raise TranslationError(
            f"self.{field} cannot be used here: a task element accesses "
            f"at most one state element"
            + (f" (this one is bound to {self.se_field!r})"
               if self.se_field else " (this one is stateless)"),
            lineno=node.lineno,
        )


def _unpack_prologue(live_in: list[str]) -> list[ast.stmt]:
    """``(a, b) = _sdg_item`` (or ``a = _sdg_item`` for one variable)."""
    if not live_in:
        return []
    if len(live_in) == 1:
        target: ast.expr = ast.Name(id=live_in[0], ctx=ast.Store())
    else:
        target = ast.Tuple(
            elts=[ast.Name(id=name, ctx=ast.Store()) for name in live_in],
            ctx=ast.Store(),
        )
    return [ast.Assign(targets=[target],
                       value=ast.Name(id=_ITEM, ctx=ast.Load()))]


def _merge_prologue(live_in: list[str],
                    collection_var: str) -> list[ast.stmt]:
    """Unpack a gathered list of per-instance items.

    The collection variable becomes the list of per-instance values;
    any other live variable is single-valued (§4.1 side-effect-free
    parallelism) and is taken from the first gathered item.
    """
    statements: list[ast.stmt] = []
    if collection_var not in live_in:
        raise TranslationError(
            f"collection variable {collection_var!r} is not live into "
            f"the merge task element"
        )
    if len(live_in) == 1:
        # _item is already the list of bare values.
        statements.append(ast.Assign(
            targets=[ast.Name(id=collection_var, ctx=ast.Store())],
            value=ast.Call(func=ast.Name(id="list", ctx=ast.Load()),
                           args=[ast.Name(id=_ITEM, ctx=ast.Load())],
                           keywords=[]),
        ))
        return statements
    for position, name in enumerate(live_in):
        index = ast.Constant(value=position)
        if name == collection_var:
            # name = [t[position] for t in _sdg_item]
            value: ast.expr = ast.ListComp(
                elt=ast.Subscript(
                    value=ast.Name(id="_sdg_t", ctx=ast.Load()),
                    slice=index, ctx=ast.Load(),
                ),
                generators=[ast.comprehension(
                    target=ast.Name(id="_sdg_t", ctx=ast.Store()),
                    iter=ast.Name(id=_ITEM, ctx=ast.Load()),
                    ifs=[], is_async=0,
                )],
            )
        else:
            # name = _sdg_item[0][position]  (single-valued)
            value = ast.Subscript(
                value=ast.Subscript(
                    value=ast.Name(id=_ITEM, ctx=ast.Load()),
                    slice=ast.Constant(value=0), ctx=ast.Load(),
                ),
                slice=index, ctx=ast.Load(),
            )
        statements.append(ast.Assign(
            targets=[ast.Name(id=name, ctx=ast.Store())], value=value
        ))
    return statements


def _epilogue(live_out: list[str]) -> list[ast.stmt]:
    """``return (x, y)`` carrying the successor's live-in variables.

    An empty live-out still returns ``()`` — a token must flow so the
    successor TE is triggered.
    """
    if not live_out:
        value: ast.expr = ast.Tuple(elts=[], ctx=ast.Load())
    elif len(live_out) == 1:
        value = ast.Name(id=live_out[0], ctx=ast.Load())
    else:
        value = ast.Tuple(
            elts=[ast.Name(id=name, ctx=ast.Load()) for name in live_out],
            ctx=ast.Load(),
        )
    return [ast.Return(value=value)]


def compile_block(
    block: Block,
    te_name: str,
    live_in: list[str],
    live_out: list[str] | None,
    namespace: dict[str, Any],
    class_name: str | None = None,
) -> Callable:
    """Compile one TE block into a task function ``fn(ctx, item)``.

    ``live_out`` is the successor's live-in list, or ``None`` for the
    method's final block (whose own ``return`` statements, if any,
    become the TE's terminal output).
    """
    se_field = block.access.field if block.access is not None else None
    rewriter = _Rewriter(se_field=se_field,
                         helper_names={
                             name[len(_HELPER_PREFIX):]
                             for name in namespace
                             if name.startswith(_HELPER_PREFIX)
                         },
                         merge=block.merge,
                         class_name=class_name)
    body: list[ast.stmt] = []
    if block.is_merge:
        body.extend(_merge_prologue(live_in, block.merge.collection_var))
    else:
        body.extend(_unpack_prologue(live_in))
    if se_field is not None:
        body.append(ast.Assign(
            targets=[ast.Name(id=_STATE, ctx=ast.Store())],
            value=ast.Attribute(
                value=ast.Name(id="ctx", ctx=ast.Load()),
                attr="state", ctx=ast.Load(),
            ),
        ))
    # Rewrite deep copies: NodeTransformer mutates in place, and the
    # original statements stay live in the front-end IR (MethodIR /
    # method_asts) that the sdglint passes analyse after codegen.
    for stmt in block.statements:
        body.append(rewriter.visit(copy.deepcopy(stmt)))
    if live_out is not None:
        body.extend(_epilogue(live_out))
    if not body:
        body.append(ast.Pass())

    fn_def = ast.FunctionDef(
        name=te_name.replace(".", "_"),
        args=ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg="ctx"), ast.arg(arg=_ITEM)],
            kwonlyargs=[], kw_defaults=[], defaults=[],
        ),
        body=body, decorator_list=[],
    )
    return _compile_fn(fn_def, te_name, namespace)


def compile_helper(fn_ast: ast.FunctionDef, helper_names: set[str],
                   namespace: dict[str, Any],
                   class_name: str | None = None) -> Callable:
    """Compile a state-free helper method to a plain function.

    The ``self`` parameter is dropped (staticmethods keep their
    signature as-is); nested helper calls are redirected; any
    state-field access is a translation error (helpers run inside
    arbitrary TEs and have no state access edge).
    """
    rewriter = _Rewriter(se_field=None, helper_names=helper_names,
                         merge=None, class_name=class_name)
    args = fn_ast.args
    is_static = any(
        isinstance(deco, ast.Name) and deco.id == "staticmethod"
        for deco in fn_ast.decorator_list
    )
    if not is_static and (not args.args or args.args[0].arg != "self"):
        raise TranslationError(
            f"helper method {fn_ast.name!r} must take self first "
            f"(or be a @staticmethod)",
            lineno=fn_ast.lineno,
        )
    new_args = ast.arguments(
        posonlyargs=list(args.posonlyargs),
        args=list(args.args) if is_static else list(args.args[1:]),
        vararg=args.vararg,
        kwonlyargs=list(args.kwonlyargs),
        kw_defaults=list(args.kw_defaults),
        kwarg=args.kwarg,
        defaults=list(args.defaults),
    )
    body = [rewriter.visit(copy.deepcopy(stmt)) for stmt in fn_ast.body]
    fn_def = ast.FunctionDef(
        name=_HELPER_PREFIX + fn_ast.name,
        args=new_args, body=body, decorator_list=[],
    )
    return _compile_fn(fn_def, _HELPER_PREFIX + fn_ast.name, namespace)


def _compile_fn(fn_def: ast.FunctionDef, name: str,
                namespace: dict[str, Any]) -> Callable:
    module = ast.Module(body=[fn_def], type_ignores=[])
    ast.fix_missing_locations(module)
    code = compile(module, filename=f"<py2sdg:{name}>", mode="exec")
    exec(code, namespace)  # noqa: S102 - code generated from user program
    return namespace[fn_def.name]

"""Tests for merges whose dataflow carries more than the partial var.

When a single-valued variable (e.g. the request's user id) is live
across the gather barrier alongside the partial variable, the merge
prologue must take the single-valued component from any one gathered
item and build the list only for the collection variable — the §4.1
"side-effect-free parallelism" guarantee makes that sound.
"""

import pytest

from repro import (
    Partial,
    Partitioned,
    SDGProgram,
    collection,
    entry,
    global_,
)
from repro.state import KeyValueMap, Matrix, Vector


class EchoingCF(SDGProgram):
    """CF variant returning (user, rec): 'user' crosses the barrier."""

    user_item = Partitioned(Matrix, key="user")
    co_occ = Partial(Matrix)

    @entry
    def add_rating(self, user, item, rating):
        self.user_item.set_element(user, item, rating)
        user_row = self.user_item.get_row(user)
        values = user_row.to_list()
        for i in range(len(values)):
            if values[i] > 0:
                self.co_occ.add_element(item, i, 1)
                self.co_occ.add_element(i, item, 1)

    @entry
    def get_rec(self, user):
        user_row = self.user_item.get_row(user)
        user_rec = global_(self.co_occ).multiply(user_row)
        rec = self.merge(collection(user_rec))
        return (user, rec.to_list())

    def merge(self, all_user_rec):
        rec = Vector()
        for cur in all_user_rec:
            rec.add_vector(cur)
        return rec


class TestMultiVariableGatherPayload:
    def test_merge_live_in_includes_both_variables(self):
        result = EchoingCF.translate()
        info = result.entry_info("get_rec")
        merge_te = result.sdg.task(info.te_names[-1])
        assert merge_te.is_merge

    @pytest.mark.parametrize("replicas", [1, 2, 3])
    def test_user_id_travels_with_the_partials(self, replicas):
        seq = EchoingCF()
        app = EchoingCF.launch(user_item=2, co_occ=replicas)
        ratings = [(0, 0, 5), (0, 1, 3), (1, 0, 4), (2, 2, 2)]
        for rating in ratings:
            seq.add_rating(*rating)
            app.add_rating(*rating)
        app.run()
        for user in (0, 1, 2):
            app.get_rec(user)
        app.run()
        got = {user: rec for user, rec in app.results("get_rec")}
        for user in (0, 1, 2):
            assert got[user] == seq.get_rec(user)[1]
            assert seq.get_rec(user)[0] == user


class MultiExtraLive(SDGProgram):
    """Two single-valued variables cross the barrier with the partial."""

    counters = Partial(KeyValueMap)

    @entry
    def bump(self, key):
        self.counters.increment(key)

    @entry
    def report(self, key, label):
        scale = 10
        count = global_(self.counters).get(key, 0)
        total = self.total(collection(count))
        return (label, key, total * scale)

    def total(self, counts):
        result = 0
        for value in counts:
            result = result + value
        return result


class MergeWithArguments(SDGProgram):
    """The merge helper takes extra single-valued arguments."""

    counters = Partial(KeyValueMap)

    @entry
    def bump(self, key):
        self.counters.increment(key)

    @entry
    def top_scaled(self, key, factor, offset):
        count = global_(self.counters).get(key, 0)
        result = self.combine(collection(count), factor, offset)
        return result

    def combine(self, counts, factor, offset):
        total = 0
        for value in counts:
            total = total + value
        return total * factor + offset


class TestMergeWithExtraArguments:
    @pytest.mark.parametrize("replicas", [1, 3])
    def test_extra_args_reach_the_merge_helper(self, replicas):
        app = MergeWithArguments.launch(counters=replicas)
        for _ in range(6):
            app.bump("k")
        app.run()
        app.top_scaled("k", 10, 5)
        app.run()
        assert app.results("top_scaled") == [65]

    def test_sequential_agrees(self):
        seq = MergeWithArguments()
        for _ in range(6):
            seq.bump("k")
        assert seq.top_scaled("k", 10, 5) == 65


class TestSeveralSingleValuedVariables:
    @pytest.mark.parametrize("replicas", [1, 4])
    def test_all_constants_preserved(self, replicas):
        app = MultiExtraLive.launch(counters=replicas)
        for _ in range(12):
            app.bump("hits")
        app.run()
        app.report("hits", "daily")
        app.run()
        assert app.results("report") == [("daily", "hits", 120)]

    def test_sequential_agrees(self):
        seq = MultiExtraLive()
        for _ in range(12):
            seq.bump("hits")
        assert seq.report("hits", "daily") == ("daily", "hits", 120)

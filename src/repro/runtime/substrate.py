"""The execution-substrate layer: one program semantics, N executors.

The runtime's upper layers (deployment, scheduling, transport,
dispatch) define *what* an SDG execution means; an
:class:`ExecutionSubstrate` decides *where and how* the step loop
actually runs. The layered-dataflow discipline (Misale et al.) is the
contract: every substrate must produce the same final SE state for the
same injected inputs — the cross-substrate differential tests enforce
it.

Two substrates ship:

* :class:`InProcessSubstrate` (default) — the deterministic
  single-threaded logical-time loop the repository has always had,
  byte-for-byte. It remains the testing, repro and durability baseline
  (durable runs pin it: deterministic replay is its contract).
* :class:`~repro.runtime.multiprocess.MultiprocessSubstrate` —
  shared-nothing worker processes, each owning the TE instances and
  StateElement partitions of its assigned logical nodes, connected by
  OS pipes speaking the length-prefixed pickle codec of
  :mod:`repro.runtime.wire`.

A substrate is chosen per deployment via
``RuntimeConfig(substrate="inprocess" | "multiprocess" | <object>)``;
custom substrates plug in like custom schedulers do, by passing any
object implementing the protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import RuntimeExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.engine import Runtime
    from repro.runtime.envelope import ChannelId, Envelope
    from repro.runtime.instances import TEInstance


@runtime_checkable
class ExecutionSubstrate(Protocol):
    """Where the step loop runs: the execution layer behind the facade.

    The engine calls, in order: :meth:`bind` at deploy, then
    :meth:`deliver` for every injected envelope, :meth:`run_until_idle`
    to drain, and :meth:`shutdown` when the runtime is closed. The
    remaining hooks let a substrate restrict (:meth:`runnable`) and
    observe/intercept (:meth:`process`) the in-process step loop, which
    worker processes of a distributed substrate reuse verbatim.
    """

    #: Registry name (``RuntimeConfig(substrate=name)``).
    name: str

    #: Capability flag: True when every payload hand-off through this
    #: substrate crosses a serialisation boundary, which makes the
    #: transport's defensive ``copy_payloads`` deepcopy redundant (the
    #: wire codec *is* the isolation). The transport consults this to
    #: skip the hot-path copy.
    isolates_payloads: bool

    def bind(self, runtime: "Runtime") -> None:
        """Attach to a deployed runtime (spawn workers, open pipes...)."""
        ...  # pragma: no cover - protocol

    def deliver(self, envelope: "Envelope") -> bool:
        """Hand one injected envelope to the execution layer."""
        ...  # pragma: no cover - protocol

    def runnable(self, instances: "list[TEInstance]") \
            -> "list[TEInstance]":
        """Filter the step loop's candidate instances to the local set."""
        ...  # pragma: no cover - protocol

    def process(self, instance: "TEInstance",
                envelope: "Envelope") -> None:
        """Serve one envelope on one instance (the per-item semantics)."""
        ...  # pragma: no cover - protocol

    def run_until_idle(self, max_steps: int) -> int:
        """Drain all pending work; returns the items processed."""
        ...  # pragma: no cover - protocol

    def blocked_channels(self) -> "list[ChannelId]":
        """Channels currently reporting backpressure."""
        ...  # pragma: no cover - protocol

    def shutdown(self) -> None:
        """Release substrate resources (idempotent)."""
        ...  # pragma: no cover - protocol


class InProcessSubstrate:
    """The deterministic single-process logical-time loop (default).

    This substrate *is* the seed engine's behaviour: the scheduler's
    rotor order, stall ticks, hook timing and auto-scale cadence are
    unchanged — the rotor-determinism reference test asserts selection
    order against this class, which is what makes the substrate
    refactor provably behaviour-preserving.
    """

    name = "inprocess"
    isolates_payloads = False

    def __init__(self) -> None:
        self.runtime: "Runtime | None" = None

    def bind(self, runtime: "Runtime") -> None:
        self.runtime = runtime

    # -- execution -------------------------------------------------------

    def deliver(self, envelope: "Envelope") -> bool:
        return self.runtime.transport.deliver(envelope)

    def runnable(self, instances: "list[TEInstance]") \
            -> "list[TEInstance]":
        return instances

    def process(self, instance: "TEInstance",
                envelope: "Envelope") -> None:
        self.runtime._process(instance, envelope)

    def run_until_idle(self, max_steps: int) -> int:
        """The seed drain loop: auto-scale checks between steps."""
        runtime = self.runtime
        steps = 0
        while steps < max_steps:
            if (
                runtime.config.auto_scale
                and steps
                and steps % runtime.config.scale_check_every == 0
            ):
                runtime._maybe_scale()
            if not runtime.step():
                return steps
            steps += 1
        raise RuntimeExecutionError(
            f"pipeline did not become idle within {max_steps} steps"
        )

    # -- observation -----------------------------------------------------

    def blocked_channels(self) -> "list[ChannelId]":
        if self.runtime is None or self.runtime.transport is None:
            return []
        return self.runtime.transport.blocked_channels()

    def shutdown(self) -> None:
        pass


#: Built-in substrates selectable by name. The multiprocess substrate
#: is imported lazily so that plain in-process deployments never pay
#: its imports (selectors, multiprocessing).
SUBSTRATES = ("inprocess", "multiprocess")


def resolve_substrate(spec, config) -> "ExecutionSubstrate":
    """Turn the config knob into a substrate instance.

    Accepts a registry name or any object implementing the
    :class:`ExecutionSubstrate` protocol. Raises
    :class:`~repro.errors.RuntimeExecutionError` on anything else, so a
    typo'd substrate name fails at deploy time.
    """
    if isinstance(spec, str):
        if spec == "inprocess":
            return InProcessSubstrate()
        if spec == "multiprocess":
            from repro.runtime.multiprocess import MultiprocessSubstrate

            workers = config.workers if config.workers is not None else 2
            return MultiprocessSubstrate(
                workers=workers, capacity=config.channel_capacity,
                restarts=getattr(config, "worker_restarts", 0),
            )
        raise RuntimeExecutionError(
            f"unknown substrate {spec!r}; available substrates: "
            f"{sorted(SUBSTRATES)}"
        )
    required = ("bind", "deliver", "run_until_idle", "runnable",
                "process", "shutdown")
    if all(callable(getattr(spec, hook, None)) for hook in required):
        return spec
    raise RuntimeExecutionError(
        f"RuntimeConfig.substrate must be a substrate name or an object "
        f"implementing the ExecutionSubstrate protocol, got {spec!r}"
    )

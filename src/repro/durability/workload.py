"""Durable workload specs: seeded, position-addressable item streams.

A durable run must be able to say "give me items 400..499 of this
workload" in any process incarnation, so the workload here is a pure
function of ``(spec, position)``: the KV stream regenerates a
:class:`~repro.workloads.kv.KVWorkload` from its seed and skips to the
position; the wordcount stream indexes a fixed corpus. Two item
families are exposed:

* :meth:`DurableWorkload.items` — the *mutating* stream the manifest
  positions refer to; every item is injected exactly once across all
  incarnations.
* :meth:`DurableWorkload.probes` — *read-only* requests (KV gets,
  wordcount queries) used to pump logical time while chaos recoveries
  settle. Probes never mutate SE state, so the per-epoch state hash is
  independent of how many pump rounds a particular incarnation needed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.apps.wordcount import build_wordcount_sdg
from repro.errors import DurabilityError
from repro.recovery.policy import CheckpointPolicy
from repro.runtime.engine import Runtime, RuntimeConfig
from repro.testing import build_kv_sdg
from repro.workloads import KVWorkload

APPS = ("kvstore", "wordcount")

#: Fixed corpus for the wordcount stream (indexed, not sampled, so the
#: stream is position-addressable without replaying an RNG).
_CORPUS = (
    "the quick brown fox jumps over the lazy dog",
    "state must be made explicit to the processing platform",
    "imperative programs translate to stateful dataflow graphs",
    "checkpoints are chunked and spread over backup nodes",
    "failure recovery replays buffered streams deterministically",
    "a manifest fences every epoch of a durable run",
    "the quick grey wolf walks past the sleeping dog",
    "partitioned state elements hash keys to instances",
)


@dataclass(frozen=True)
class RunSpec:
    """Deployment + workload knobs of a durable run (JSON-stable)."""

    app: str = "kvstore"
    seed: int = 11
    epochs: int = 5
    items_per_epoch: int = 100
    n_keys: int = 120
    read_fraction: float = 0.0
    se_instances: int = 2
    #: Checkpoint cadence (``CheckpointPolicy.full_every``): 1 = every
    #: cycle full, K = re-anchor every K cycles, 0 = deltas forever.
    full_every: int = 4
    #: Wordcount window size (ignored by the KV app).
    window_size: int = 1000
    #: Seconds to sleep inside each epoch between drain and commit —
    #: a test knob that widens the window in which an external SIGKILL
    #: lands mid-epoch. 0 in any non-test run.
    throttle: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, record: dict) -> "RunSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in record.items() if k in known})


class DurableWorkload:
    """Binds a :class:`RunSpec` to an app's SDG and item streams."""

    def __init__(self, spec: RunSpec) -> None:
        if spec.app not in APPS:
            raise DurabilityError(
                f"unknown durable app {spec.app!r}; supported: {APPS}"
            )
        if spec.epochs < 1 or spec.items_per_epoch < 1:
            raise DurabilityError(
                "a durable run needs epochs >= 1 and items_per_epoch >= 1"
            )
        self.spec = spec

    # -- deployment ------------------------------------------------------

    @property
    def se_name(self) -> str:
        return "table" if self.spec.app == "kvstore" else "counts"

    @property
    def entry_te(self) -> str:
        """The entry TE chaos plans target."""
        return "serve" if self.spec.app == "kvstore" else "split"

    def build_sdg(self):
        if self.spec.app == "kvstore":
            return build_kv_sdg()
        return build_wordcount_sdg(self.spec.window_size)

    def build_runtime(self) -> Runtime:
        # Durable runs pin the in-process substrate: epoch fencing,
        # checkpoint chains and crash-replay all assume the
        # deterministic single-process step loop. The multiprocess
        # substrate is rejected at the CLI; this keeps the invariant
        # even for programmatic callers.
        config = RuntimeConfig(
            se_instances={self.se_name: self.spec.se_instances},
            checkpoint_policy=CheckpointPolicy(
                full_every=self.spec.full_every),
            substrate="inprocess",
        )
        return Runtime(self.build_sdg(), config)

    # -- streams ---------------------------------------------------------

    def items(self, start: int, count: int) -> list[tuple[str, object]]:
        """Mutating items ``start .. start+count-1`` as (entry, payload).

        Regeneration is O(start + count) — the KV RNG must be replayed
        from the seed — which is fine at epoch granularity and keeps the
        stream a pure function of the spec.
        """
        spec = self.spec
        if spec.app == "kvstore":
            workload = KVWorkload(n_keys=spec.n_keys,
                                  read_fraction=spec.read_fraction,
                                  seed=spec.seed)
            ops = list(workload.ops(start + count))[start:]
            return [("serve", (op.kind, op.key, op.value)) for op in ops]
        return [
            ("split", (i, _CORPUS[(i * 7 + spec.seed) % len(_CORPUS)]))
            for i in range(start, start + count)
        ]

    def probes(self, salt: int, count: int) -> list[tuple[str, object]]:
        """Read-only requests to keep logical time moving while settling."""
        spec = self.spec
        if spec.app == "kvstore":
            return [
                ("serve", ("get", f"key{(salt + j) % spec.n_keys}", None))
                for j in range(count)
            ]
        return [
            ("query", (salt + j,
                       _CORPUS[(salt + j) % len(_CORPUS)].split()[0]))
            for j in range(count)
        ]

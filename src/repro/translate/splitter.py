"""TE extraction: splitting a method into task-element blocks (step 4).

A new TE starts (the paper's rules, §4.2):

1. at each entry point of the class (the first block of every entry
   method);
2. when a statement uses partitioned access to a different SE than the
   current block (or the same SE through a different key);
3. when a statement uses global access to a partial SE;
4. when a statement uses local access to a new partial SE (and local or
   partitioned access *after* global access forces a barrier — here a
   new block fed by the gathered dataflow);
5. at a ``@Collection`` expression, which becomes a merge TE behind a
   synchronisation barrier.

Statements with no state access stay with the current block (they are
pipelined with the preceding computation). Compound statements (loops,
conditionals) are atomic: they must confine their state accesses to one
SE, or translation fails with a request to restructure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.core.elements import AccessMode
from repro.errors import TranslationError
from repro.translate.accesses import (
    MergeCall,
    StateAccess,
    analyse_statement,
)


@dataclass
class Block:
    """A contiguous statement group that will become one TE."""

    statements: list[ast.stmt] = field(default_factory=list)
    access: StateAccess | None = None
    merge: MergeCall | None = None
    helper_calls: set[str] = field(default_factory=set)

    @property
    def is_merge(self) -> bool:
        return self.merge is not None


def split_method(fn: ast.FunctionDef, fields: dict) -> list[Block]:
    """Split an entry method's body into TE blocks."""
    blocks: list[Block] = [Block()]

    def cut() -> Block:
        block = Block()
        blocks.append(block)
        return block

    for stmt in fn.body:
        info = analyse_statement(stmt, fields)
        current = blocks[-1]
        if info.merge is not None:
            if info.accesses:
                raise TranslationError(
                    "a merge statement must not also access state "
                    "elements; split the statement", lineno=stmt.lineno,
                )
            target = cut() if current.statements else current
            target.merge = info.merge
            target.statements.append(stmt)
            target.helper_calls.update(info.helper_calls)
            target.helper_calls.add(info.merge.method)
            continue
        if info.accesses:
            access = info.accesses[0]
            if current.is_merge:
                current = cut()
            if current.access is None and not current.is_merge:
                current.access = access
                current.statements.append(stmt)
            elif current.access == access:
                current.statements.append(stmt)
            else:
                fresh = cut()
                fresh.access = access
                fresh.statements.append(stmt)
                current = fresh
            blocks[-1].helper_calls.update(info.helper_calls)
            continue
        current.statements.append(stmt)
        current.helper_calls.update(info.helper_calls)

    blocks = [b for b in blocks if b.statements]
    if not blocks:
        raise TranslationError(
            f"entry method {fn.name!r} has an empty body",
            lineno=fn.lineno,
        )
    _check_returns(fn, blocks)
    _check_merge_preceded_by_global(fn, blocks)
    _check_global_continuations(fn, blocks)
    return blocks


def _contains_return(statements: list[ast.stmt]) -> bool:
    for stmt in statements:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Return):
                return True
    return False


def _check_returns(fn: ast.FunctionDef, blocks: list[Block]) -> None:
    for block in blocks[:-1]:
        if _contains_return(block.statements):
            raise TranslationError(
                f"method {fn.name!r}: return statements are only allowed "
                f"in the final task element of a method; restructure so "
                f"the return follows all state accesses",
                lineno=block.statements[0].lineno,
            )


def _check_global_continuations(fn: ast.FunctionDef,
                                blocks: list[Block]) -> None:
    """Rule 4 (§4.2): after global access, control must synchronise.

    Every value computed under a ``global_`` access is multi-valued
    (one per partial instance). Continuing into another state access
    without reconciling would execute that access once *per instance*,
    silently duplicating effects relative to the sequential program —
    so the block after a global-access block must be a merge (the
    all-to-one barrier), unless the global block ends the method.
    """
    for i, block in enumerate(blocks[:-1]):
        if (
            block.access is not None
            and block.access.mode is AccessMode.GLOBAL
            and not blocks[i + 1].is_merge
        ):
            raise TranslationError(
                f"method {fn.name!r}: computation continues after a "
                f"global_ access without reconciling the partial values; "
                f"merge them with self.<method>(collection(var)) before "
                f"further state access (§4.2 rule 4)",
                lineno=blocks[i + 1].statements[0].lineno,
            )


def _check_merge_preceded_by_global(fn: ast.FunctionDef,
                                    blocks: list[Block]) -> None:
    for i, block in enumerate(blocks):
        if not block.is_merge:
            continue
        if i == 0 or blocks[i - 1].access is None or (
            blocks[i - 1].access.mode is not AccessMode.GLOBAL
        ):
            raise TranslationError(
                f"method {fn.name!r}: collection(...) merges partial "
                f"values and must directly follow a global_ state access",
                lineno=block.statements[0].lineno,
            )

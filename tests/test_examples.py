"""Every example script must run end-to-end without errors."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.glob("examples/*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"


def test_quickstart_output_mentions_results():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120,
    )
    assert "distributed results" in completed.stdout
    assert "42" in completed.stdout

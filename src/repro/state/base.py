"""Base protocol for state elements (SEs).

A state element encapsulates the mutable state of an SDG computation
(§3.1). Every predefined SE routes its mutations through a small
key/value core provided here, which gives all of them, uniformly:

* the **dirty-state checkpoint protocol** of §5 — ``begin_checkpoint``
  freezes the main structure, subsequent writes land in a
  :class:`~repro.state.dirty.DirtyOverlay`, a consistent snapshot is read
  with :meth:`snapshot_items`, and ``consolidate`` folds the overlay back;
* **dynamic partitioning** — ``extract_partition`` / ``merge_partitions``
  split and re-join SE instances for partitioned state and for restoring a
  failed instance onto *n* new nodes;
* **chunked serialisation** — ``to_chunks`` / ``load_chunk`` implement the
  m-to-n backup pattern of Fig. 4, and ``to_delta_chunks`` /
  ``load_delta_chunk`` its incremental variant: only the keys mutated
  since the last checkpoint (read from the backend's journal) are
  emitted, as changed values plus deletion tombstones;
* **size accounting** — a byte estimate used by the allocation logic and
  by the cluster simulator's checkpoint cost model.

Since the storage-subsystem refactor the *physical* representation lives
in a pluggable :class:`~repro.state.backend.StateBackend`; the SE class
itself is a pure domain API. Subclasses normally pick their store by
overriding :meth:`StateElement._make_backend` and never touch the
``_store_*`` hooks; overriding the hooks directly remains supported for
legacy custom SEs, at the cost of delta-checkpoint support (see
:attr:`StateElement.delta_capable`).
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Sequence

from repro.errors import StateError
from repro.state.backend import DictBackend, MutationJournal, StateBackend
from repro.state.dirty import DirtyOverlay, TOMBSTONE

#: Sentinel distinguishing "no default supplied" from ``default=None``.
_MISSING = object()


@dataclass(frozen=True)
class StateChunk:
    """One fragment of a serialised SE checkpoint.

    Checkpoints are hash-partitioned into chunks so that they can be
    streamed to ``total`` backup nodes in parallel and later restored to
    any number of recovering instances (Fig. 4, steps B1-B3 / R1-R2).
    """

    index: int
    total: int
    items: tuple[tuple[Hashable, Any], ...]
    meta: dict[str, Any] = field(default_factory=dict)

    def size_bytes(self, bytes_per_entry: int) -> int:
        """Modelled size of this chunk on disk or on the wire."""
        return len(self.items) * bytes_per_entry

    def entry_count(self) -> int:
        """Logical entries carried by this chunk (items only)."""
        return len(self.items)


@dataclass(frozen=True)
class DeltaChunk(StateChunk):
    """One fragment of an *incremental* SE checkpoint.

    Carries only the keys mutated since the previous checkpoint in the
    chain: ``items`` holds changed/new values, ``deleted`` holds
    tombstones. ``(version, base_version)`` records the lineage — this
    delta applies on top of checkpoint ``base_version`` and produces
    the state of checkpoint ``version``. The restore path folds a full
    base plus its ordered deltas; a broken or corrupt link surfaces as
    a :class:`~repro.errors.BackupIntegrityError`, never a silently
    truncated restore.
    """

    version: int = 0
    base_version: int = 0
    deleted: tuple[Hashable, ...] = ()

    def size_bytes(self, bytes_per_entry: int) -> int:
        """Tombstones travel too: a key costs an entry either way."""
        return (len(self.items) + len(self.deleted)) * bytes_per_entry

    def entry_count(self) -> int:
        return len(self.items) + len(self.deleted)


class StateElement(abc.ABC):
    """Abstract base class for all SE data structures.

    Subclasses provide a physical store via :meth:`_make_backend` and
    expose a domain API (``get_row``, ``multiply``, ``put`` ...) built
    on the protected ``_get``/``_set``/``_delete`` helpers, which
    transparently apply the dirty-state redirection.
    """

    #: Modelled cost of one stored entry; used for state-size accounting.
    BYTES_PER_ENTRY = 64

    def __init__(self, backend: StateBackend | None = None) -> None:
        self._backend = backend if backend is not None \
            else self._make_backend()
        self._dirty: DirtyOverlay | None = None
        self._update_count = 0

    # ------------------------------------------------------------------
    # Physical storage
    # ------------------------------------------------------------------

    def _make_backend(self) -> StateBackend:
        """Build this SE's physical store; subclasses override to pick
        a different layout (dense list, grid, indexed sparse map...)."""
        return DictBackend()

    @property
    def backend(self) -> StateBackend:
        """The physical store behind this SE instance."""
        return self._backend

    # The ``_store_*`` hooks delegate to the backend. Legacy custom SEs
    # may still override them wholesale; doing so bypasses the mutation
    # journal, which :attr:`delta_capable` detects.

    def _store_get(self, key: Hashable) -> Any:
        """Return the value for ``key`` from the main structure.

        Raises :class:`KeyError` when absent.
        """
        return self._backend.get(key)

    def _store_set(self, key: Hashable, value: Any) -> None:
        """Write ``value`` for ``key`` into the main structure."""
        self._backend.set(key, value)

    def _store_delete(self, key: Hashable) -> None:
        """Remove ``key`` from the main structure (KeyError if absent)."""
        self._backend.delete(key)

    def _store_contains(self, key: Hashable) -> bool:
        """Membership against the main structure only."""
        return self._backend.contains(key)

    def _store_items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate over all ``(key, value)`` pairs of the main structure."""
        return self._backend.items()

    def _store_clear(self) -> None:
        """Empty the main structure."""
        self._backend.clear()

    @abc.abstractmethod
    def spawn_empty(self) -> "StateElement":
        """Return a new, empty SE with the same shape/configuration.

        Used when creating additional partial instances at runtime (§3.3)
        and when restoring a checkpoint onto fresh nodes.
        """

    # ------------------------------------------------------------------
    # Dirty-state aware access helpers
    # ------------------------------------------------------------------

    @property
    def checkpoint_active(self) -> bool:
        """Whether a checkpoint is in progress (writes go to dirty state)."""
        return self._dirty is not None

    @property
    def update_count(self) -> int:
        """Total number of mutations applied to this SE instance."""
        return self._update_count

    @property
    def dirty_size(self) -> int:
        """Number of entries currently buffered in the dirty overlay."""
        return 0 if self._dirty is None else len(self._dirty)

    def _get(self, key: Hashable, default: Any = _MISSING) -> Any:
        """Read ``key``, consulting the dirty overlay first (§5 step 2)."""
        if self._dirty is not None and key in self._dirty:
            value = self._dirty.get(key)
            if value is TOMBSTONE:
                if default is _MISSING:
                    raise KeyError(key)
                return default
            return value
        try:
            return self._store_get(key)
        except KeyError:
            if default is _MISSING:
                raise
            return default

    def _set(self, key: Hashable, value: Any) -> None:
        """Write ``key``; redirected to the dirty overlay mid-checkpoint."""
        self._update_count += 1
        if self._dirty is not None:
            self._dirty.set(key, value)
        else:
            self._store_set(key, value)

    def _delete(self, key: Hashable) -> None:
        """Delete ``key``; recorded as a tombstone mid-checkpoint."""
        self._update_count += 1
        if self._dirty is not None:
            if key not in self._dirty and not self._store_contains(key):
                raise KeyError(key)
            if key in self._dirty and self._dirty.get(key) is TOMBSTONE:
                raise KeyError(key)
            self._dirty.delete(key)
        else:
            self._store_delete(key)

    def _contains(self, key: Hashable) -> bool:
        if self._dirty is not None and key in self._dirty:
            return self._dirty.get(key) is not TOMBSTONE
        return self._store_contains(key)

    def _iter_items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate the *logical* contents: main structure + overlay."""
        if self._dirty is None:
            yield from self._store_items()
            return
        dirty = self._dirty
        seen = set()
        for key, value in self._store_items():
            seen.add(key)
            if key in dirty:
                overlaid = dirty.get(key)
                if overlaid is not TOMBSTONE:
                    yield key, overlaid
            else:
                yield key, value
        for key, value in dirty.items():
            if key not in seen and value is not TOMBSTONE:
                yield key, value

    # ------------------------------------------------------------------
    # Checkpoint protocol (§5)
    # ------------------------------------------------------------------

    def begin_checkpoint(self) -> None:
        """Flag the SE as dirty: freeze the main structure (step 1).

        After this call, the main structure is immutable and
        :meth:`snapshot_items` may be read concurrently with processing.
        """
        if self._dirty is not None:
            raise StateError("checkpoint already in progress for this SE")
        self._dirty = DirtyOverlay()

    def snapshot_items(self) -> list[tuple[Hashable, Any]]:
        """Materialise the consistent (pre-checkpoint) contents (step 3).

        Only meaningful while a checkpoint is active; calling it otherwise
        returns the current contents, which is still a consistent view.
        """
        return list(self._store_items())

    def consolidate(self) -> int:
        """Fold the dirty overlay back into the main structure (step 5).

        This is the only phase that requires exclusive access to the SE,
        so its cost is proportional to the number of updates made during
        the checkpoint, not to the state size. Returns the number of
        overlay entries applied.

        Consolidation routes through the journalled ``_store_*`` hooks,
        so every overlay entry lands in the mutation journal — i.e. it
        belongs to the *next* checkpoint's delta, exactly as the paper's
        protocol requires.
        """
        if self._dirty is None:
            raise StateError("no checkpoint in progress to consolidate")
        applied = 0
        for key, value in self._dirty.items():
            if value is TOMBSTONE:
                try:
                    self._store_delete(key)
                except KeyError:
                    pass
            else:
                self._store_set(key, value)
            applied += 1
        self._dirty = None
        return applied

    def abort_checkpoint(self) -> None:
        """Consolidate-and-discard used when a checkpoint fails midway."""
        if self._dirty is None:
            return
        self.consolidate()

    # ------------------------------------------------------------------
    # Mutation journal (incremental checkpoint support)
    # ------------------------------------------------------------------

    @property
    def delta_capable(self) -> bool:
        """Whether this SE's mutations are journalled by its backend.

        True for every SE whose ``_store_set``/``_store_delete``/
        ``_store_clear`` hooks are the backend-delegating base versions.
        A legacy custom SE that overrides the hooks against its own
        structure bypasses the journal; the checkpoint manager then
        falls back to full checkpoints for nodes hosting it rather than
        emit silently empty deltas.
        """
        cls = type(self)
        return (
            cls._store_set is StateElement._store_set
            and cls._store_delete is StateElement._store_delete
            and cls._store_clear is StateElement._store_clear
        )

    def journal(self) -> MutationJournal:
        """The keys mutated since the last :meth:`mark_clean`."""
        return self._backend.journal()

    def mark_clean(self) -> None:
        """Reset the mutation journal (a checkpoint has persisted)."""
        self._backend.mark_clean()

    def begin_rmw_batch(self) -> None:
        """Open a journal write batch (``BATCHABLE_RMW`` fast path).

        The engine brackets a coalesced run of certified non-escaping
        read-modify-writes with ``begin_rmw_batch``/``end_rmw_batch``:
        storage writes stay immediate (reads see every update), while
        per-key journal bookkeeping is deferred to one bulk fold at
        batch end. Safe only because the certificate proves the batch
        cannot observe its own journal mid-run — and the backend
        flushes pending ops on any journal read regardless.
        """
        self._backend.begin_batch()

    def end_rmw_batch(self) -> None:
        """Close the write batch, folding deferred ops into the journal."""
        self._backend.end_batch()

    # ------------------------------------------------------------------
    # Partitioning and merging (§3.2)
    # ------------------------------------------------------------------

    def partition_key(self, key: Hashable) -> Hashable:
        """Map a storage key to the key used for partitioning decisions.

        A matrix partitioned by row maps ``(row, col)`` to ``row``; the
        default is the identity, which suits vectors and maps.
        """
        return key

    def extract_partition(self, partitioner: "PartitionerProtocol",
                          index: int) -> "StateElement":
        """Return a new SE holding the subset owned by partition ``index``.

        The receiver is left untouched; callers re-scaling a live SE
        should build all partitions and then discard the original.
        """
        if self.checkpoint_active:
            raise StateError("cannot repartition while a checkpoint is active")
        part = self.spawn_empty()
        for key, value in self._store_items():
            if partitioner.partition(self.partition_key(key)) == index:
                part._store_set(key, value)
        return part

    @classmethod
    def merge_partitions(
        cls, parts: Sequence["StateElement"]
    ) -> "StateElement":
        """Union disjoint partitions back into a single SE instance.

        Used by recovery (reconstituting a checkpoint restored as chunks)
        and by scale-in. Partitions must be disjoint: a key present in
        more than one partition raises :class:`~repro.errors.StateError`
        — overlapping partitions mean routing or extraction went wrong,
        and silently letting a later partition win would corrupt state.
        """
        if not parts:
            raise StateError("merge_partitions requires at least one part")
        merged = parts[0].spawn_empty()
        seen: set[Hashable] = set()
        for part_index, part in enumerate(parts):
            for key, value in part._store_items():
                if key in seen:
                    raise StateError(
                        f"merge_partitions: key {key!r} appears in "
                        f"multiple partitions (again in partition "
                        f"{part_index}); partitions must be disjoint"
                    )
                seen.add(key)
                merged._store_set(key, value)
        return merged

    # ------------------------------------------------------------------
    # Chunked serialisation (Fig. 4)
    # ------------------------------------------------------------------

    def chunk_meta(self) -> dict[str, Any]:
        """Extra shape information replicated into every chunk.

        Subclasses override to carry sizes (e.g. vector length) that are
        not recoverable from the items alone.
        """
        return {}

    def apply_chunk_meta(self, meta: dict[str, Any]) -> None:
        """Re-apply :meth:`chunk_meta` information during restore."""

    def to_chunks(self, m: int) -> list[StateChunk]:
        """Split a consistent snapshot into ``m`` chunks (step B1).

        Items are hash-partitioned on the storage key so that chunk sizes
        are balanced and chunk membership is deterministic.
        """
        if m < 1:
            raise StateError(f"chunk count must be >= 1, got {m}")
        buckets: list[list[tuple[Hashable, Any]]] = [[] for _ in range(m)]
        for key, value in self.snapshot_items():
            buckets[stable_hash(key) % m].append((key, value))
        meta = self.chunk_meta()
        return [
            StateChunk(index=i, total=m, items=tuple(bucket), meta=dict(meta))
            for i, bucket in enumerate(buckets)
        ]

    def to_delta_chunks(self, m: int, version: int,
                        base_version: int) -> list[DeltaChunk]:
        """Serialise only the mutations since the last ``mark_clean``.

        The journal keys are read against the *frozen* main structure
        (mid-checkpoint writes sit in the dirty overlay and belong to
        the next delta), hash-bucketed with the same function as full
        chunks, and stamped with ``(version, base_version)`` lineage.
        The cost is O(|mutations|), independent of the state size —
        the paper's explicit-state claim (§5) applied to backup traffic.
        """
        if m < 1:
            raise StateError(f"chunk count must be >= 1, got {m}")
        if not self.delta_capable:
            raise StateError(
                f"{type(self).__name__} overrides the _store_* hooks and "
                f"bypasses the mutation journal; delta checkpoints would "
                f"be silently empty — take a full checkpoint instead"
            )
        journal = self._backend.journal()
        item_buckets: list[list[tuple[Hashable, Any]]] = \
            [[] for _ in range(m)]
        for key in journal.written:
            item_buckets[stable_hash(key) % m].append(
                (key, self._store_get(key))
            )
        deleted_buckets: list[list[Hashable]] = [[] for _ in range(m)]
        for key in journal.deleted:
            deleted_buckets[stable_hash(key) % m].append(key)
        meta = self.chunk_meta()
        return [
            DeltaChunk(
                index=i, total=m,
                items=tuple(sorted(bucket, key=lambda kv: stable_hash(kv[0]))),
                deleted=tuple(sorted(deleted_buckets[i], key=stable_hash)),
                meta=dict(meta), version=version, base_version=base_version,
            )
            for i, bucket in enumerate(item_buckets)
        ]

    def load_chunk(self, chunk: StateChunk) -> None:
        """Load one chunk's items into this (recovering) instance (R2)."""
        self.apply_chunk_meta(chunk.meta)
        for key, value in chunk.items:
            self._store_set(key, value)

    def load_delta_chunk(self, chunk: DeltaChunk) -> None:
        """Fold one delta chunk on top of previously restored state.

        Tombstones first, then writes: a key can only appear on one
        side of a single delta, so within a chunk the order is
        immaterial, but deleting first keeps the fold idempotent when a
        caller retries a chunk.
        """
        self.apply_chunk_meta(chunk.meta)
        for key in chunk.deleted:
            try:
                self._store_delete(key)
            except KeyError:
                pass  # deleted key never made it into the base: fine
        for key, value in chunk.items:
            self._store_set(key, value)

    @classmethod
    def from_chunks(
        cls, template: "StateElement", chunks: Iterable[StateChunk]
    ) -> "StateElement":
        """Reconstitute an SE from all of its chunks."""
        se = template.spawn_empty()
        for chunk in chunks:
            se.load_chunk(chunk)
        return se

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def entry_count(self) -> int:
        """Number of logical entries currently stored (incl. overlay)."""
        return sum(1 for _ in self._iter_items())

    def estimated_size_bytes(self) -> int:
        """Modelled in-memory footprint, linear in the entry count."""
        return self.entry_count() * self.BYTES_PER_ENTRY


class PartitionerProtocol:
    """Structural protocol: anything with ``partition(key) -> int``."""

    n_partitions: int

    def partition(self, key: Hashable) -> int:  # pragma: no cover
        raise NotImplementedError


def stable_hash(key: Hashable) -> int:
    """A hash that is stable across interpreter runs.

    Python's built-in ``hash`` is randomised per process for strings,
    which would make chunk membership — and therefore recovery tests and
    the deterministic-execution requirement of §4.1 — non-reproducible.
    Integers hash to themselves; other keys hash via CRC-32 of their
    ``repr``.
    """
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key if key >= 0 else -key * 2 + 1
    if isinstance(key, tuple):
        result = 1469598103
        for part in key:
            result = (result * 1099511628211 + stable_hash(part)) % (2**61 - 1)
        return result
    return zlib.crc32(repr(key).encode("utf-8"))

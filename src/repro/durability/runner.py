"""The durable runner: epochs, fenced commits, resume and fork.

:class:`DurableRunner` drives a :class:`~repro.runtime.engine.Runtime`
in *epochs*. Each epoch injects a fixed slice of the seeded workload,
drains the pipeline, waits for any chaos recoveries to settle (pumping
read-only probes so logical time keeps moving), checkpoints every live
node to the run directory's :class:`~repro.recovery.backup
.DiskBackupStore`, exports fresh events to ``events.jsonl``, and only
then *fences* the epoch by atomically replacing ``manifest.json``. A
``kill -9`` at any instant loses at most the uncommitted epoch.

Resume has two rungs:

* **checkpoint (fast) resume** — allowed while the committed topology
  is *clean* (no scale events, no repartitions): a fresh deterministic
  deployment is built and each SE element / TE bookkeeping record from
  the fenced checkpoints is installed onto its instance by ``(name,
  index)`` key — node ids may differ (kills create replacement ids);
  instance keys never do. The restored state's fingerprint must equal
  the committed ``state_hash``, else the rung is abandoned.
* **deterministic replay** — the universal fallback ("rerun = resume"):
  rebuild from epoch 0 and re-execute every committed epoch, verifying
  each boundary hash against the manifest as it is passed.

After a fast restore the backup directory is wiped and every node is
re-checkpointed (a fresh full base): the crashed incarnation's input
log is gone, so the old chains' replay spans are unsound — the
re-anchor makes the boundary itself the recovery baseline. The
manifest's committed record is then rewritten in place with the new
checkpoint versions (same epoch, same state hash), keeping a second
crash in the same epoch on the fast path.

:func:`fork_run` clones a run directory at a committed epoch K by
*hardlinking* the chunk/meta files the epoch-K chains need and
truncating the event log to the fenced offset — cheap what-if
experiments without copying untouched checkpoint data.
"""

from __future__ import annotations

import json
import os
import shutil
import time

from repro.chaos import FaultInjector, FaultPlan, fault_from_dict, fault_to_dict
from repro.durability.manifest import (
    EpochRecord,
    RunManifest,
    load_manifest,
    manifest_path,
    sdg_fingerprint,
    state_fingerprint,
    write_manifest,
)
from repro.durability.workload import DurableWorkload, RunSpec
from repro.errors import DurabilityError, RecoveryError
from repro.obs import JsonlExporter
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder
from repro.recovery import (
    CheckpointManager,
    DiskBackupStore,
    RecoveryManager,
    RecoverySupervisor,
)
from repro.runtime import FailureDetector

BACKUPS_DIR = "backups"
EVENTS_NAME = "events.jsonl"
FLIGHT_NAME = "flight.json"

#: Steps between periodic flight-recorder flushes inside an epoch: the
#: SIGKILL post-mortem window is at most this many steps stale (plus
#: whatever the last epoch fence wrote).
_FLIGHT_FLUSH_STEPS = 2_000

#: Probe-pump rounds allowed per epoch before declaring the run stuck.
_MAX_PUMP_ROUNDS = 500

#: Backup targets per run directory (chunk spreading, Fig. 4's m).
_M_TARGETS = 2


class DurableRunner:
    """Drives one durable run directory; see the module docstring."""

    def __init__(self, run_dir: str, manifest: RunManifest,
                 resume: bool = False) -> None:
        self.run_dir = run_dir
        self.manifest = manifest
        self.spec = RunSpec.from_dict(manifest.spec)
        self.workload = DurableWorkload(self.spec)
        self.plan = (FaultPlan.from_dict(manifest.fault_plan)
                     if manifest.fault_plan else None)
        self.resume_mode = "fresh"
        latest = manifest.latest
        if not resume or latest is None:
            self._build_runtime()
            self._build_stack(pending=None, events_offset=0)
            return
        if latest.clean_topology:
            try:
                self._fast_resume(latest)
                self.resume_mode = "checkpoint"
                return
            except (DurabilityError, RecoveryError):
                pass  # fall through to the universal rung
        self._replay_resume()
        self.resume_mode = "replay"

    # -- construction ----------------------------------------------------

    @classmethod
    def start(cls, run_dir: str, spec: RunSpec,
              plan: FaultPlan | None = None) -> "DurableRunner":
        """Create a new run directory and its epoch-0 manifest."""
        if os.path.exists(manifest_path(run_dir)):
            raise DurabilityError(
                f"{run_dir!r} already holds a run manifest; use resume()"
            )
        os.makedirs(run_dir, exist_ok=True)
        workload = DurableWorkload(spec)
        sdg = workload.build_sdg()
        manifest = RunManifest(
            run_id=os.path.basename(os.path.abspath(run_dir)) or "run",
            program={"app": spec.app, "sdg": sdg.name,
                     "fingerprint": sdg_fingerprint(sdg)},
            spec=spec.to_dict(),
            fault_plan=plan.to_dict() if plan is not None else None,
        )
        write_manifest(run_dir, manifest)
        return cls(run_dir, manifest)

    @classmethod
    def resume(cls, run_dir: str) -> "DurableRunner":
        """Reopen a run directory after a crash (or a clean exit)."""
        return cls(run_dir, load_manifest(run_dir), resume=True)

    def _build_runtime(self) -> None:
        self.runtime = self.workload.build_runtime().deploy()
        fingerprint = sdg_fingerprint(self.runtime.sdg)
        recorded = self.manifest.program.get("fingerprint")
        if fingerprint != recorded:
            raise DurabilityError(
                f"program fingerprint {fingerprint} does not match the "
                f"manifest's {recorded}; refusing to resume a manifest "
                f"written by a structurally different program"
            )

    def _build_stack(self, pending: list[dict] | None,
                     events_offset: int) -> None:
        """Wire store, checkpointing, supervision, chaos and export.

        ``pending=None`` arms the full fault plan (fresh start or
        replay-from-zero); a list re-arms exactly the faults a fenced
        epoch still owed.
        """
        self.store = DiskBackupStore(
            os.path.join(self.run_dir, BACKUPS_DIR), m_targets=_M_TARGETS)
        # The input log is never trimmed: pure log replay must stay
        # sound as the last recovery rung within an epoch.
        self.manager = CheckpointManager(self.runtime, self.store,
                                         trim_input_log=False)
        self.recovery = RecoveryManager(self.runtime, self.store)
        self.detector = self.supervisor = self.injector = None
        if self.plan is not None:
            self.detector = FailureDetector(
                self.runtime, heartbeat_timeout=25, check_every=5
            ).install()
            # n_new=1 keeps recovery one-to-one: partition counts (and
            # with them the clean-topology fast path) survive kills.
            self.supervisor = RecoverySupervisor(
                self.detector, self.recovery, n_new=1, backoff_steps=10
            ).install()
            faults = (list(self.plan) if pending is None
                      else [fault_from_dict(f) for f in pending])
            self.injector = FaultInjector(
                self.runtime,
                FaultPlan(faults=list(faults), seed=self.plan.seed),
                store=self.store,
            ).install()
        self.exporter = JsonlExporter(
            os.path.join(self.run_dir, EVENTS_NAME),
            start_offset=events_offset)
        # Durable runs always carry a flight recorder: after a SIGKILL,
        # ``<run_dir>/flight.json`` shows the last envelopes the run
        # served, at most ``_FLIGHT_FLUSH_STEPS`` steps stale. An
        # explicitly configured recorder (flight_recorder=N) is kept.
        if self.runtime.flight is None:
            self.runtime.flight = FlightRecorder(DEFAULT_CAPACITY)
        self._flight_flushed_at = self.runtime.total_steps
        self.runtime.add_step_hook(self._flight_hook)

    def _flight_hook(self, runtime) -> None:
        if runtime.total_steps - self._flight_flushed_at \
                >= _FLIGHT_FLUSH_STEPS:
            self._write_flight()

    def _write_flight(self) -> None:
        """Atomically persist the flight ring next to the manifest."""
        flight = self.runtime.flight
        if flight is None:
            return
        path = os.path.join(self.run_dir, FLIGHT_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump({"total_steps": self.runtime.total_steps,
                       "entries": flight.dump()}, fh, indent=2)
        os.replace(tmp, path)
        self._flight_flushed_at = self.runtime.total_steps

    def _wipe_backups(self) -> None:
        path = os.path.join(self.run_dir, BACKUPS_DIR)
        if os.path.isdir(path):
            shutil.rmtree(path)

    # -- resume rungs ----------------------------------------------------

    def _fast_resume(self, latest: EpochRecord) -> None:
        """Install fenced checkpoints onto a fresh deployment, by key."""
        self._build_runtime()
        old_store = DiskBackupStore(
            os.path.join(self.run_dir, BACKUPS_DIR), m_targets=_M_TARGETS)
        old_store.reload_from_disk()
        # Discard chains from the crashed epoch (versions above the
        # fence) and chains of nodes that were dead at the commit.
        old_store.prune(latest.checkpoints)
        restorer = RecoveryManager(self.runtime, old_store)
        for node_id in sorted(latest.checkpoints):
            version = latest.checkpoints[node_id]
            meta = next(
                (c for c in old_store.chain(node_id)
                 if c.version == version), None)
            if meta is None:
                raise DurabilityError(
                    f"fenced checkpoint v{version} of node {node_id} is "
                    f"not on disk"
                )
            for se_key in meta.se_chunks:
                spec = self.runtime.sdg.state(se_key[0])
                element = restorer._restore_element(spec, se_key, meta)
                instance = self.runtime.se_instance(*se_key)
                if instance is None:
                    raise DurabilityError(
                        f"fresh deployment has no SE instance {se_key}"
                    )
                instance.element = element
            for te_key, te_meta in meta.te_meta.items():
                instance = self.runtime.te_instance(*te_key)
                if instance is None:
                    raise DurabilityError(
                        f"fresh deployment has no TE instance {te_key}"
                    )
                RecoveryManager._apply_meta(instance, te_meta)
        self.runtime.total_steps = latest.total_steps
        self.runtime._input_seq = dict(latest.input_seq)
        self.runtime._rr = {("input", entry): cursor
                            for entry, cursor in latest.input_rr.items()}
        restored = state_fingerprint(self.runtime)
        if restored != latest.state_hash:
            raise DurabilityError(
                f"restored state hash {restored} does not match the "
                f"fenced hash {latest.state_hash} of epoch {latest.epoch}"
            )
        # Re-anchor: the crashed incarnation's input log is gone, so the
        # old chains' replay spans are unsound. Wipe and take fresh full
        # bases at the boundary, then re-fence the committed record with
        # the new versions (state unchanged — verified above) so another
        # crash in this epoch still finds its checkpoints.
        self._wipe_backups()
        self._build_stack(pending=latest.pending_faults,
                          events_offset=latest.events_offset)
        anchors = self.manager.checkpoint_all()
        latest.checkpoints = {cp.node_id: cp.version for cp in anchors}
        write_manifest(self.run_dir, self.manifest)

    def _replay_resume(self) -> None:
        """Rerun every committed epoch from zero, verifying each fence."""
        self._build_runtime()
        self._wipe_backups()
        self._build_stack(pending=None, events_offset=0)
        for record in self.manifest.epochs:
            replayed = self._execute_epoch(record.epoch, commit=False)
            if replayed.state_hash != record.state_hash:
                raise DurabilityError(
                    f"replay of epoch {record.epoch} reached state hash "
                    f"{replayed.state_hash}, but the manifest fenced "
                    f"{record.state_hash}; the program or workload no "
                    f"longer matches this manifest"
                )

    # -- the epoch loop --------------------------------------------------

    def state_hash(self) -> int:
        return state_fingerprint(self.runtime)

    def run_epoch(self) -> EpochRecord:
        """Execute and fence the next epoch."""
        epoch = self.manifest.committed_epoch + 1
        if epoch > self.spec.epochs:
            raise DurabilityError(
                f"run is complete ({self.spec.epochs} epochs committed)"
            )
        return self._execute_epoch(epoch, commit=True)

    def run(self, on_epoch=None) -> RunManifest:
        """Run to the spec'd epoch count; returns the final manifest."""
        while self.manifest.committed_epoch < self.spec.epochs:
            record = self.run_epoch()
            if on_epoch is not None:
                on_epoch(record)
        return self.manifest

    def _execute_epoch(self, epoch: int, commit: bool) -> EpochRecord:
        spec = self.spec
        start = (epoch - 1) * spec.items_per_epoch
        for entry, payload in self.workload.items(start,
                                                 spec.items_per_epoch):
            self.runtime.inject(entry, payload)
        self.runtime.run_until_idle()
        if commit and spec.throttle:
            # Soak-test knob: hold the epoch open so an external SIGKILL
            # lands between drain and fence.
            time.sleep(spec.throttle)
        self._settle(epoch)
        checkpoints = {cp.node_id: cp.version
                       for cp in self.manager.checkpoint_all()}
        exported_seq, offset = self.exporter.export(self.runtime.events)
        record = EpochRecord(
            epoch=epoch,
            position=start + spec.items_per_epoch,
            state_hash=state_fingerprint(self.runtime),
            input_seq=dict(self.runtime._input_seq),
            input_rr={key[1]: cursor
                      for key, cursor in self.runtime._rr.items()},
            total_steps=self.runtime.total_steps,
            checkpoints=checkpoints,
            clean_topology=self._clean_topology(),
            events_seq=exported_seq,
            events_offset=offset,
            pending_faults=[fault_to_dict(f) for f in
                            (self.injector.pending_faults()
                             if self.injector is not None else [])],
        )
        if commit:
            self.manifest.epochs.append(record)
            write_manifest(self.run_dir, self.manifest)
        self._write_flight()
        return record

    def _settle(self, epoch: int) -> None:
        """Pump read-only probes until every chaos recovery completed.

        Probes mutate nothing, so the boundary state hash does not
        depend on how many rounds this incarnation needed — only on the
        mutating items, which are positionally fixed.
        """
        if self.plan is None:
            return
        rounds = 0
        while not (self.supervisor.settled
                   and not self.detector.unreported_dead_nodes()):
            rounds += 1
            if rounds > _MAX_PUMP_ROUNDS:
                raise DurabilityError(
                    f"epoch {epoch} failed to settle after "
                    f"{_MAX_PUMP_ROUNDS} probe rounds; supervisor events: "
                    f"{self.supervisor.events}"
                )
            salt = epoch * 100_003 + rounds * 17
            for entry, payload in self.workload.probes(salt, 3):
                self.runtime.inject(entry, payload)
            self.runtime.run_until_idle()
        if self.supervisor.quarantined:
            raise DurabilityError(
                f"epoch {epoch}: nodes {sorted(self.supervisor.quarantined)} "
                f"were quarantined; their partitions cannot be fenced"
            )

    def _clean_topology(self) -> bool:
        if self.runtime.scale_events:
            return False
        return all(self.runtime.se_epoch(se) == 0
                   for se in self.runtime.sdg.states)


# ----------------------------------------------------------------------
# Fork
# ----------------------------------------------------------------------


def _backup_file_version(name: str) -> tuple[int, int] | None:
    """Parse ``node{N}_v{V}_...`` backup filenames; None if unrelated."""
    if not (name.startswith("node") and name.endswith(".pkl")):
        return None
    try:
        node_part, version_part, _rest = name.split("_", 2)
        return int(node_part[len("node"):]), int(version_part[len("v"):])
    except (ValueError, IndexError):
        return None


def fork_run(src_dir: str, dest_dir: str, epoch: int) -> RunManifest:
    """Clone ``src_dir`` at committed epoch K into a new run directory.

    The child manifest keeps the parent's program, spec, fault plan and
    epoch records up to K; the backup files its fenced chains need are
    *hardlinked* (copy-on-nothing — untouched SE chunks are never
    duplicated), and ``events.jsonl`` is truncated at the fenced byte
    offset. Resuming the child then restores — and verifies — the
    parent's epoch-K state hash before diverging.
    """
    manifest = load_manifest(src_dir)
    record = manifest.record_for(epoch)
    if os.path.exists(manifest_path(dest_dir)):
        raise DurabilityError(
            f"{dest_dir!r} already holds a run manifest"
        )
    os.makedirs(dest_dir, exist_ok=True)

    src_backups = os.path.join(src_dir, BACKUPS_DIR)
    if os.path.isdir(src_backups):
        for target in sorted(os.listdir(src_backups)):
            src_target = os.path.join(src_backups, target)
            if not os.path.isdir(src_target):
                continue
            dst_target = os.path.join(dest_dir, BACKUPS_DIR, target)
            os.makedirs(dst_target, exist_ok=True)
            for name in sorted(os.listdir(src_target)):
                parsed = _backup_file_version(name)
                if parsed is None:
                    continue
                node_id, version = parsed
                fence = record.checkpoints.get(node_id)
                if fence is None or version > fence:
                    continue
                src_path = os.path.join(src_target, name)
                dst_path = os.path.join(dst_target, name)
                try:
                    os.link(src_path, dst_path)
                except OSError:
                    shutil.copy2(src_path, dst_path)

    src_events = os.path.join(src_dir, EVENTS_NAME)
    if os.path.exists(src_events) and record.events_offset:
        with open(src_events, "rb") as src:
            head = src.read(record.events_offset)
        with open(os.path.join(dest_dir, EVENTS_NAME), "wb") as dst:
            dst.write(head)

    child = RunManifest(
        run_id=f"{manifest.run_id}~fork{epoch}",
        program=dict(manifest.program),
        spec=dict(manifest.spec),
        fault_plan=manifest.fault_plan,
        epochs=[EpochRecord.from_dict(r.to_dict())
                for r in manifest.epochs[:epoch]],
    )
    write_manifest(dest_dir, child)
    return child

"""Chaos integration: scaling, scheduled checkpoints and failures mixed.

The riskiest interplay in the system is scale-up (which repartitions
state and bumps the partitioning epoch) happening between a checkpoint
and a failure. These tests drive all three mechanisms together and
require the final state to match an uninterrupted sequential run.
"""

import pytest

from repro.apps import KeyValueStore
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
)
from repro.workloads import KVWorkload


def merged_state(app):
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    return merged


class TestScaleThenFail:
    def test_scale_checkpoint_fail_recover(self):
        """scale -> (scheduler re-checkpoints) -> fail -> recover."""
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        scheduler = CheckpointScheduler(manager, every_items=30,
                                        complete_after_steps=5).install()
        recovery = RecoveryManager(app.runtime, store)
        sequential = KeyValueStore()
        workload = KVWorkload(n_keys=80, read_fraction=0.0, seed=41)
        ops = list(workload.ops(400))

        for op in ops[:150]:
            app.put(op.key, op.value)
            sequential.put(op.key, op.value)
        app.run()

        put_te = app.translation.entry_info("put").entry_te
        scheduler.flush()  # close any open checkpoint window
        assert app.runtime.scale_up(put_te)  # epoch bump

        # Keep writing: the scheduler notices the epoch change and
        # refreshes every partition's checkpoint.
        for op in ops[150:300]:
            app.put(op.key, op.value)
            sequential.put(op.key, op.value)
        app.run()
        scheduler.flush()

        victim = app.runtime.se_instance("table", 1).node_id
        app.runtime.fail_node(victim)
        recovery.recover_node(victim)
        app.run()

        for op in ops[300:]:
            app.put(op.key, op.value)
            sequential.put(op.key, op.value)
        app.run()
        scheduler.flush()
        assert merged_state(app) == dict(sequential.table.items())

    def test_repeated_scale_and_failure_rounds(self):
        app = KeyValueStore.launch(table=1)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        scheduler = CheckpointScheduler(manager, every_items=25,
                                        complete_after_steps=3).install()
        recovery = RecoveryManager(app.runtime, store)
        sequential = KeyValueStore()
        workload = KVWorkload(n_keys=50, read_fraction=0.0, seed=43)
        ops = list(workload.ops(300))
        put_te = app.translation.entry_info("put").entry_te

        chunk = 100
        for round_index in range(3):
            for op in ops[round_index * chunk:(round_index + 1) * chunk]:
                app.put(op.key, op.value)
                sequential.put(op.key, op.value)
            app.run()
            if round_index < 2:
                # Close any open checkpoint window before repartitioning
                # (the engine refuses to reshard dirty state).
                scheduler.flush()
                app.runtime.scale_up(put_te)
                # Give the scheduler steps to refresh checkpoints
                # under the new epoch before the failure.
                for op in workload.ops(60):
                    app.put(op.key, op.value)
                    sequential.put(op.key, op.value)
                app.run()
                scheduler.flush()
                victim = app.runtime.se_instance(
                    "table", round_index
                ).node_id
                app.runtime.fail_node(victim)
                recovery.recover_node(victim)
                app.run()

        scheduler.flush()
        assert merged_state(app) == dict(sequential.table.items())

    def test_failure_in_unprotected_window_is_loud_not_corrupt(self):
        """Failing right after a scale-up (before any fresh checkpoint)
        must raise, never silently restore the stale partitioning."""
        app = KeyValueStore.launch(table=2)
        store = BackupStore(m_targets=2)
        manager = CheckpointManager(app.runtime, store)
        recovery = RecoveryManager(app.runtime, store)
        for i in range(50):
            app.put(i, i)
        app.run()
        manager.checkpoint_all()
        put_te = app.translation.entry_info("put").entry_te
        app.runtime.scale_up(put_te)
        victim = app.runtime.se_instance("table", 0).node_id
        app.runtime.fail_node(victim)
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError, match="repartitioned"):
            recovery.recover_node(victim)

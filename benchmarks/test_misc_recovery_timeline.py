"""§6.4 operationalised: cluster availability across a failure.

Composes the Fig. 11 recovery-time model into a cluster timeline: a
node fails mid-run, its partition is unavailable for exactly the
strategy's recovery time, then rejoins. The bench compares the 1-to-1
and 2-to-2 strategies the way an operator would read them — as served
requests and availability, not just restore seconds.
"""

from conftest import print_figure

from repro.simulation import LifetimeConfig, simulate_lifetime

STRATEGIES = [(1, 1), (2, 1), (1, 2), (2, 2)]


def compute():
    rows = []
    for m, n in STRATEGIES:
        result = simulate_lifetime(LifetimeConfig(
            failures=((20.0, 0),), m_backups=m, n_recovering=n,
            state_bytes_per_node=2e9, duration_s=120.0,
        ))
        rows.append((
            f"{m}-to-{n}",
            result.recovery_times[0],
            result.lost_requests,
            result.availability * 100,
        ))
    return rows


def test_recovery_timeline(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_figure(
        "§6.4 timeline: one failure at t=20 s, 2 GB/node",
        ["strategy", "recovery time (s)", "lost requests",
         "availability (%)"],
        rows,
    )
    times = [row[1] for row in rows]
    lost = [row[2] for row in rows]
    availability = [row[3] for row in rows]
    # Faster strategies lose fewer requests — monotone across the four.
    assert times == sorted(times, reverse=True)
    assert lost == sorted(lost, reverse=True)
    assert availability == sorted(availability)
    # Even the slowest strategy keeps availability high ("recovering
    # in seconds" at cluster scale).
    assert availability[0] > 93.0


def test_dip_shape(benchmark):
    def run():
        return simulate_lifetime(LifetimeConfig(
            failures=((20.0, 0),), m_backups=2, n_recovering=2,
            state_bytes_per_node=2e9, duration_s=80.0,
        ))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(p.t, p.throughput, p.nodes_up, p.event or "")
            for p in result.timeline if p.event or p.t % 10 == 5]
    print_figure(
        "§6.4 timeline: throughput dip and restoration (2-to-2)",
        ["t (s)", "throughput (req/s)", "nodes up", "event"],
        rows,
    )
    by_t = {p.t: p for p in result.timeline}
    assert by_t[15.0].nodes_up == 4
    assert by_t[25.0].nodes_up == 3
    assert result.timeline[-1].nodes_up == 4

"""SDG403: a module global mutated from a task method, via a helper.

After fork each worker owns a private copy-on-write page: the
increment is invisible to every other process and to recovery. The
write hides one call frame down, so the diagnostic carries the
``record → _bump`` chain from the interprocedural summaries.
"""

from repro.annotations import Partitioned, entry
from repro.program import SDGProgram
from repro.state import KeyValueMap

_SEEN = 0


class SharedGlobal(SDGProgram):
    """Counts records in interpreter state instead of an SE."""

    table = Partitioned(KeyValueMap, key="key")

    @entry
    def record(self, key, value):
        self._bump()
        self.table.put(key, value)

    def _bump(self):
        global _SEEN
        _SEEN = _SEEN + 1

"""Online collaborative filtering — the paper's Alg. 1, in Python.

The program maintains two matrices: ``user_item`` stores each user's
item ratings and is partitioned by user; ``co_occ`` counts items rated
together and, having a random access pattern, is partial (replicated,
independently updated, reconciled at read time by ``merge``).

``add_rating`` is the high-throughput write path; ``get_rec`` is the
low-latency read path — one SDG serves both workloads over the same
state, which is the paper's headline capability (§3.4).
"""

from __future__ import annotations

from repro.annotations import Partial, Partitioned, collection, entry, global_
from repro.program import SDGProgram
from repro.state import Matrix, Vector


class CollaborativeFiltering(SDGProgram):
    """Item-based collaborative filtering with incremental co-occurrence."""

    user_item = Partitioned(Matrix, key="user")
    co_occ = Partial(Matrix)

    @entry
    def add_rating(self, user, item, rating):
        """Record one rating and update co-occurrence counts (Alg. 1 l.4)."""
        self.user_item.set_element(user, item, rating)
        user_row = self.user_item.get_row(user)
        row_values = user_row.to_list()
        for i in range(len(row_values)):
            if row_values[i] > 0:
                count = self.co_occ.get_element(item, i)
                self.co_occ.set_element(item, i, count + 1)
                self.co_occ.set_element(i, item, count + 1)

    @entry
    def get_rec(self, user):
        """Fresh recommendations for ``user`` (Alg. 1 l.14)."""
        user_row = self.user_item.get_row(user)
        user_rec = global_(self.co_occ).multiply(user_row)
        rec = self.merge(collection(user_rec))
        return rec

    def merge(self, all_user_rec):
        """Sum the partial recommendation vectors (Alg. 1 l.20)."""
        rec = Vector()
        for cur in all_user_rec:
            rec.add_vector(cur)
        return rec

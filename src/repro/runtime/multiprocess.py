"""The multiprocess substrate: shared-nothing workers over OS pipes.

This is the second :class:`~repro.runtime.substrate.ExecutionSubstrate`
implementation: the deployed topology is partitioned across ``N``
forked worker processes, one per group of logical nodes
(:meth:`~repro.runtime.deployment.Topology.plan_workers`), each owning
its nodes' TE instances and — transitively — their StateElement
partitions. Workers never share memory: every cross-worker hand-off is
an :class:`~repro.runtime.envelope.Envelope` serialised through the
:mod:`repro.runtime.wire` codec, which is exactly the paper's
location-independence discipline (§4.1) made physical.

Process topology is a **star**: the coordinator (the process that
called ``deploy()``) holds two pipes per worker and relays every
cross-worker envelope. Workers are **forked**, not spawned: SDG task
functions are closures and generated code that pickle cannot ship, but
a forked child inherits the fully deployed runtime for free — only
envelopes and control messages ever cross the wire.

Deadlock freedom by construction:

* the coordinator never blocks on a write — outbound frames queue in
  per-worker byte queues and drain through a ``select`` loop that
  always also reads;
* a worker only blocks on its control pipe when it is locally idle
  *after* reporting so (``MSG_IDLE``).

Quiescence: each ``MSG_IDLE`` carries cumulative (consumed, emitted,
processed) counters. Pipes are FIFO, so every ``MSG_OUT`` a worker
emitted precedes the idle frame that counts it; the system is quiet
exactly when every worker has consumed everything the coordinator
sent, the coordinator has read everything every worker emitted, and
no outbound bytes are queued. ``run_until_idle`` then runs the barrier
sync (``MSG_SNAPSHOT``): workers ship SE elements, terminal results
and their metrics shard back, and the coordinator installs them — so
after the call, coordinator-side state inspection (fingerprints,
checkpoints, reports) is substrate-agnostic.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import select
import traceback
import weakref
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import RuntimeExecutionError
from repro.runtime.envelope import WIRE_EDGE, ChannelId, Envelope
from repro.runtime.substrate import InProcessSubstrate
from repro.runtime.wire import (
    MSG_CRASH,
    MSG_DELIVER,
    MSG_HELLO,
    MSG_IDLE,
    MSG_OUT,
    MSG_SHUTDOWN,
    MSG_SNAPSHOT,
    MSG_STATE,
    FrameBuffer,
    encode_frame,
    write_frame,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.deployment import WorkerPlacement
    from repro.runtime.engine import Runtime
    from repro.runtime.instances import TEInstance

#: Upper bound on consecutive local steps a worker takes without
#: touching its control pipe — the multiprocess analogue of the
#: in-process loop's default ``max_steps``, so a worker-local infinite
#: dataflow cycle dies loudly (MSG_CRASH) instead of spinning forever.
WORKER_DRAIN_LIMIT = 10_000_000

#: Read size for both sides of the pipe.
_READ_CHUNK = 1 << 16


class _Link:
    """Coordinator-side view of one worker: process, pipes, counters."""

    __slots__ = (
        "worker_id", "process", "send_fd", "recv_fd", "buffer", "outbox",
        "sent", "consumed", "emitted", "received_out", "processed",
        "state_reply",
    )

    def __init__(self, worker_id: int, process, send_fd: int,
                 recv_fd: int) -> None:
        self.worker_id = worker_id
        self.process = process
        self.send_fd = send_fd
        self.recv_fd = recv_fd
        self.buffer = FrameBuffer()
        #: Encoded frames waiting for pipe capacity (never block a write).
        self.outbox: deque = deque()
        #: Frames enqueued towards this worker (every kind).
        self.sent = 0
        #: Worker's cumulative consumed/emitted/processed, as of its
        #: latest MSG_IDLE / MSG_STATE report.
        self.consumed = 0
        self.emitted = 0
        self.processed = 0
        #: MSG_OUT frames read *from* this worker.
        self.received_out = 0
        self.state_reply: dict | None = None


def _release(links: list) -> None:
    """Tear a worker fleet down (finalizer-safe: no substrate ref)."""
    for link in links:
        try:
            os.set_blocking(link.send_fd, True)
            while link.outbox:
                chunk = link.outbox.popleft()
                while chunk:
                    chunk = chunk[os.write(link.send_fd, chunk):]
            write_frame(link.send_fd, (MSG_SHUTDOWN,))
        except OSError:
            pass
        try:
            os.close(link.send_fd)
        except OSError:
            pass
    for link in links:
        link.process.join(timeout=2.0)
        if link.process.is_alive():  # pragma: no cover - hung worker
            link.process.terminate()
            link.process.join(timeout=1.0)
        try:
            os.close(link.recv_fd)
        except OSError:
            pass


class MultiprocessSubstrate:
    """Shared-nothing worker processes behind the substrate protocol."""

    name = "multiprocess"
    #: Every cross-worker hand-off crosses the pickle wire, so the
    #: transport's defensive payload deepcopy is redundant.
    isolates_payloads = True

    def __init__(self, workers: int = 2,
                 capacity: int | None = None) -> None:
        self.workers = int(workers)
        self.capacity = capacity
        self.runtime: "Runtime | None" = None
        self.placement: "WorkerPlacement | None" = None
        #: Latest per-worker metrics snapshots (set at each barrier);
        #: consumed by :meth:`Runtime.merged_metrics`.
        self.metric_shards: list[dict] = []
        self._links: list[_Link] = []
        self._routed = 0
        self._processed_base = 0
        self._finalizer = None

    # ------------------------------------------------------------------
    # Deploy: fork the fleet
    # ------------------------------------------------------------------

    def bind(self, runtime: "Runtime") -> None:
        """Plan placement, open pipes, fork workers, say hello.

        Called at the *end* of ``deploy()`` so every forked child
        inherits the fully materialised topology — task closures and
        generated code never travel the wire.
        """
        self.runtime = runtime
        self.placement = runtime.topology.plan_workers(self.workers)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise RuntimeExecutionError(
                "the multiprocess substrate requires the fork start "
                "method (POSIX); this platform does not support it"
            ) from exc
        # Coordinator and workers each mint request ids in a disjoint
        # residue class mod (workers + 1): two workers broadcasting
        # concurrently must never collide at a merge barrier.
        stride = self.workers + 1
        runtime.dispatcher._request_ids = itertools.count(stride, stride)
        pipes = []  # (c2w_read, c2w_write, w2c_read, w2c_write)
        for _ in range(self.workers):
            c2w_r, c2w_w = os.pipe()
            w2c_r, w2c_w = os.pipe()
            pipes.append((c2w_r, c2w_w, w2c_r, w2c_w))
        all_fds = [fd for quad in pipes for fd in quad]
        index_digest = runtime.dispatcher.export_index()
        for wid, (c2w_r, c2w_w, w2c_r, w2c_w) in enumerate(pipes):
            keep = {c2w_r, w2c_w}
            close_fds = [fd for fd in all_fds if fd not in keep]
            process = ctx.Process(
                target=_worker_main,
                args=(runtime, wid, self.placement, c2w_r, w2c_w,
                      close_fds),
                daemon=True,
                name=f"repro-worker-{wid}",
            )
            process.start()
            self._links.append(_Link(wid, process, c2w_w, w2c_r))
        for c2w_r, c2w_w, w2c_r, w2c_w in pipes:
            os.close(c2w_r)
            os.close(w2c_w)
            os.set_blocking(c2w_w, False)
            os.set_blocking(w2c_r, False)
        # Idempotent teardown: explicit close(), GC and interpreter
        # exit all funnel into one _release of this exact fleet.
        self._finalizer = weakref.finalize(self, _release, self._links)
        for link in self._links:
            self._send(link, (MSG_HELLO, link.worker_id, self.workers,
                              index_digest))

    # ------------------------------------------------------------------
    # Substrate protocol
    # ------------------------------------------------------------------

    def deliver(self, envelope: "Envelope") -> bool:
        """Route one envelope to the worker owning its destination."""
        owner = self.placement.owner_of(
            envelope.channel.dst_te, envelope.channel.dst_instance
        )
        self._routed += 1
        self._send(self._links[owner], (MSG_DELIVER, envelope))
        return True

    def runnable(self, instances: "list[TEInstance]") \
            -> "list[TEInstance]":
        # The coordinator process owns no instances: it routes.
        return []

    def process(self, instance: "TEInstance",
                envelope: "Envelope") -> None:  # pragma: no cover
        raise RuntimeExecutionError(
            "the multiprocess coordinator does not process envelopes; "
            "instances run inside their owning workers"
        )

    def run_until_idle(self, max_steps: int) -> int:
        """Pump the star until quiescent, then barrier-sync state back."""
        routed_start = self._routed
        while not self._quiet():
            if self._routed - routed_start > max_steps:
                raise RuntimeExecutionError(
                    f"pipeline did not become idle within {max_steps} "
                    f"steps"
                )
            self._pump(0.1)
        return self._sync()

    def blocked_channels(self) -> "list[ChannelId]":
        """Wire edges whose in-flight frame count exceeds capacity.

        The coordinator->worker stream is modelled as one channel per
        worker (``edge_index == WIRE_EDGE``): frames enqueued but not
        yet acknowledged by the worker's cumulative consumed counter
        are in flight — the multiprocess analogue of inbox depth.
        """
        if self.capacity is None:
            return []
        return [
            ChannelId(WIRE_EDGE, "__coordinator__", 0, "__worker__",
                      link.worker_id)
            for link in self._links
            if link.sent - link.consumed > self.capacity
        ]

    def shutdown(self) -> None:
        """Stop workers and close pipes (idempotent)."""
        if not self._links:
            return
        links, self._links = self._links, []
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        _release(links)

    # ------------------------------------------------------------------
    # Coordinator event loop
    # ------------------------------------------------------------------

    def _send(self, link: _Link, message: Any) -> None:
        link.outbox.append(encode_frame(message))
        link.sent += 1
        self._flush(link)

    def _flush(self, link: _Link) -> None:
        """Write queued frames without ever blocking."""
        while link.outbox:
            head = link.outbox[0]
            try:
                written = os.write(link.send_fd, head)
            except BlockingIOError:
                return
            except BrokenPipeError:
                self._worker_died(link)
            if written < len(head):
                link.outbox[0] = head[written:]
                return
            link.outbox.popleft()

    def _pump(self, timeout: float) -> None:
        """One select round: drain worker frames, flush pending writes."""
        rlist = {link.recv_fd: link for link in self._links}
        wlist = {link.send_fd: link
                 for link in self._links if link.outbox}
        readable, writable, _ = select.select(
            list(rlist), list(wlist), [], timeout
        )
        for fd in writable:
            self._flush(wlist[fd])
        for fd in readable:
            link = rlist[fd]
            try:
                data = os.read(fd, _READ_CHUNK)
            except BlockingIOError:  # pragma: no cover - spurious wake
                continue
            if not data:
                self._worker_died(link)
            for message in link.buffer.feed(data):
                self._handle(link, message)

    def _handle(self, link: _Link, message: tuple) -> None:
        tag = message[0]
        if tag == MSG_OUT:
            link.received_out += 1
            self.deliver(message[1])
        elif tag == MSG_IDLE:
            _, link.consumed, link.emitted, link.processed = message
        elif tag == MSG_STATE:
            reply = message[1]
            link.consumed = reply["consumed"]
            link.emitted = reply["emitted"]
            link.processed = reply["processed"]
            link.state_reply = reply
        elif tag == MSG_CRASH:
            raise RuntimeExecutionError(
                f"worker {link.worker_id} crashed:\n{message[1]}"
            )
        else:  # pragma: no cover - protocol violation
            raise RuntimeExecutionError(
                f"unexpected frame tag {tag!r} from worker "
                f"{link.worker_id}"
            )

    def _quiet(self) -> bool:
        """Nothing queued, nothing unconsumed, nothing unread."""
        return all(
            not link.outbox
            and link.consumed == link.sent
            and link.received_out == link.emitted
            for link in self._links
        )

    def _worker_died(self, link: _Link) -> None:
        raise RuntimeExecutionError(
            f"worker {link.worker_id} exited unexpectedly "
            f"(exitcode {link.process.exitcode})"
        )

    # ------------------------------------------------------------------
    # Barrier sync
    # ------------------------------------------------------------------

    def _sync(self) -> int:
        """Ship worker state back and install it on the coordinator.

        After this barrier the coordinator's topology holds every SE
        element, ``runtime.results`` holds the merged terminal outputs
        (in worker order — deterministic for a fixed placement), and
        ``metric_shards`` holds each worker's registry snapshot.
        Returns the items processed since the previous barrier.
        """
        runtime = self.runtime
        for link in self._links:
            link.state_reply = None
            self._send(link, (MSG_SNAPSHOT,))
        while any(link.state_reply is None for link in self._links):
            self._pump(0.1)
        results: dict[str, list] = {te: [] for te in runtime.results}
        processed_total = 0
        shards: list[dict] = []
        for link in self._links:
            reply = link.state_reply
            for (se_name, index), element in reply["se"].items():
                inst = runtime.topology.se_instance(se_name, index)
                if inst is not None:
                    inst.element = element
            for te, items in reply["results"].items():
                results.setdefault(te, []).extend(items)
            shards.append(reply["metrics"])
            processed_total += reply["processed"]
        runtime.results.clear()
        runtime.results.update(results)
        self.metric_shards = shards
        delta = processed_total - self._processed_base
        self._processed_base = processed_total
        return delta


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerSubstrate(InProcessSubstrate):
    """The in-process loop, restricted to the instances a worker owns.

    Workers reuse the engine's step loop verbatim — same scheduler
    rotor, same per-item semantics — which is what keeps the two
    substrates behaviourally aligned; only the candidate set shrinks
    to the local partition.
    """

    name = "multiprocess-worker"
    isolates_payloads = False

    def __init__(self, owned: set) -> None:
        super().__init__()
        self._owned = owned

    def runnable(self, instances: "list[TEInstance]") \
            -> "list[TEInstance]":
        return [inst for inst in instances if inst.key in self._owned]


def _worker_main(runtime: "Runtime", worker_id: int, placement,
                 recv_fd: int, send_fd: int,
                 close_fds: list) -> None:  # pragma: no cover - subprocess
    """Entry point of a forked worker process."""
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    try:
        _serve(runtime, worker_id, placement, recv_fd, send_fd)
    except (EOFError, BrokenPipeError):
        # Coordinator went away: nothing left to serve.
        pass
    except BaseException:
        try:
            write_frame(send_fd, (MSG_CRASH, traceback.format_exc()))
        except OSError:
            pass
        os._exit(1)


def _serve(runtime: "Runtime", worker_id: int, placement, recv_fd: int,
           send_fd: int) -> None:  # pragma: no cover - subprocess
    """The worker loop: drain local work, relay wire traffic, report."""
    # The forked copy of the coordinator's substrate must never run its
    # teardown in this process (its Process handles belong to the
    # parent); detach the inherited finalizer before replacing it.
    inherited = runtime.substrate
    if isinstance(inherited, MultiprocessSubstrate):
        if inherited._finalizer is not None:
            inherited._finalizer.detach()
        inherited._links = []
    counters = {"consumed": 0, "emitted": 0, "processed": 0}

    def remote_send(envelope: "Envelope") -> None:
        write_frame(send_fd, (MSG_OUT, envelope))
        counters["emitted"] += 1

    owned = set(placement.instances_of(worker_id))
    substrate = _WorkerSubstrate(owned)
    substrate.bind(runtime)
    runtime.substrate = substrate
    # The inherited registry holds the coordinator's deploy-time
    # values; zero it so this worker's shard is purely its own work
    # and the barrier merge never double-counts.
    runtime.metrics.reset()
    runtime.transport.enable_worker_routing(placement, worker_id,
                                            remote_send)
    # Disjoint request-id residue class (see bind()).
    runtime.dispatcher._request_ids = itertools.count(
        worker_id + 1, placement.n_workers + 1
    )

    os.set_blocking(recv_fd, False)
    buffer = FrameBuffer()
    pending: deque = deque()

    def poll(block: bool) -> None:
        """Move available frames into ``pending``; optionally wait."""
        while True:
            try:
                data = os.read(recv_fd, _READ_CHUNK)
            except BlockingIOError:
                data = None
            if data == b"":
                raise EOFError("coordinator closed the control pipe")
            if data:
                pending.extend(buffer.feed(data))
                continue
            if pending or not block:
                return
            select.select([recv_fd], [], [])

    reported = None
    drained = 0
    while True:
        poll(block=False)
        if not pending:
            if runtime.step():
                counters["processed"] += 1
                drained += 1
                if drained > WORKER_DRAIN_LIMIT:
                    raise RuntimeExecutionError(
                        f"worker {worker_id} did not become idle "
                        f"within {WORKER_DRAIN_LIMIT} local steps"
                    )
                continue
            drained = 0
            report = (counters["consumed"], counters["emitted"],
                      counters["processed"])
            if report != reported:
                write_frame(send_fd, (MSG_IDLE,) + report)
                reported = report
            poll(block=True)
            continue
        message = pending.popleft()
        counters["consumed"] += 1
        tag = message[0]
        if tag == MSG_DELIVER:
            runtime.transport.deliver(message[1])
        elif tag == MSG_SNAPSHOT:
            write_frame(send_fd, (MSG_STATE, _snapshot(
                runtime, worker_id, placement, counters)))
        elif tag == MSG_HELLO:
            _check_hello(runtime, message, worker_id, placement)
        elif tag == MSG_SHUTDOWN:
            return
        else:
            raise RuntimeExecutionError(
                f"worker {worker_id}: unexpected frame tag {tag!r}"
            )


def _check_hello(runtime: "Runtime", message: tuple, worker_id: int,
                 placement) -> None:  # pragma: no cover - subprocess
    """Verify the coordinator's shipped view matches the forked one.

    A divergence between the coordinator's successor index and the
    worker's own (impossible today, cheap to check forever) would
    silently misroute envelopes; fail at bootstrap instead.
    """
    _, wid, n_workers, index_digest = message
    if wid != worker_id or n_workers != placement.n_workers:
        raise RuntimeExecutionError(
            f"hello mismatch: coordinator addressed worker {wid} of "
            f"{n_workers}, this process is worker {worker_id} of "
            f"{placement.n_workers}"
        )
    local = runtime.dispatcher.export_index()
    if index_digest != local:
        raise RuntimeExecutionError(
            f"worker {worker_id}: successor index diverged from the "
            f"coordinator's (routing tables are not identical)"
        )


def _snapshot(runtime: "Runtime", worker_id: int, placement,
              counters: dict) -> dict:  # pragma: no cover - subprocess
    """This worker's barrier payload: SE elements, results, metrics."""
    elements = {}
    for se_name in runtime.sdg.states:
        for inst in runtime.topology.se_instances(se_name):
            if placement.worker_of_node(inst.node_id) == worker_id:
                elements[inst.key] = inst.element
    return {
        "worker": worker_id,
        "consumed": counters["consumed"],
        "emitted": counters["emitted"],
        "processed": counters["processed"],
        "se": elements,
        "results": {te: list(items)
                    for te, items in runtime.results.items() if items},
        "metrics": runtime.metrics.snapshot(),
        "steps": runtime.total_steps,
    }

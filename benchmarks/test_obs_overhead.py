"""Overhead guard for the observability layer.

Two enforced properties:

* **Metrics are near-free.** A runtime with the default (live) metrics
  registry and tracing *off* must process items within 3% of an
  identical runtime deployed with :data:`~repro.obs.NULL_REGISTRY`
  (the "no registry at all" baseline). All hot-path instrumentation is
  pre-bound label children — one attribute add per event — and the
  tracing branch is a single ``is None`` check.
* **Tracing works when asked for.** The same workload with
  ``trace=True`` records a hop for every serviced item.

The comparison interleaves min-of-N trials (baseline, instrumented,
baseline, ...) so CPU-frequency drift hits both sides equally, and
retries a few times before failing: wall-clock CI runners are noisy,
and the bound is a guard against systematic regressions, not jitter.
"""

import time

from repro.obs import NULL_REGISTRY
from repro.runtime import Runtime, RuntimeConfig

from repro.testing import build_kv_sdg

_ITEMS = 2_000
_TRIALS = 5
_ATTEMPTS = 3
_MAX_RATIO = 1.03


def _deploy(metrics=None, trace=False):
    config = RuntimeConfig(se_instances={"table": 2}, trace=trace)
    if metrics is not None:
        config.metrics = metrics
    return Runtime(build_kv_sdg(), config).deploy()


def _run_batch(runtime, start):
    for i in range(start, start + _ITEMS):
        runtime.inject("serve", ("put", i % 64, i))
    runtime.run_until_idle()


def _time_batch(runtime, start):
    t0 = time.perf_counter()
    _run_batch(runtime, start)
    return time.perf_counter() - t0


def test_metrics_overhead_with_tracing_off_under_3_percent():
    for attempt in range(1, _ATTEMPTS + 1):
        baseline = _deploy(metrics=NULL_REGISTRY)
        instrumented = _deploy()  # live registry, trace off
        assert instrumented.tracer is None
        # Warm both (allocation, code paths) before measuring.
        _run_batch(baseline, 0)
        _run_batch(instrumented, 0)
        best_base = min(
            _time_batch(baseline, (1 + t) * _ITEMS)
            for t in range(_TRIALS)
        )
        best_inst = min(
            _time_batch(instrumented, (1 + t) * _ITEMS)
            for t in range(_TRIALS)
        )
        ratio = best_inst / best_base
        print(f"\nobs overhead attempt {attempt}: baseline "
              f"{best_base * 1e3:.2f}ms instrumented "
              f"{best_inst * 1e3:.2f}ms ratio {ratio:.4f}")
        if ratio < _MAX_RATIO:
            break
    assert ratio < _MAX_RATIO, (
        f"metrics-on (tracing-off) runtime is {ratio:.4f}x the "
        f"no-registry baseline after {_ATTEMPTS} attempts "
        f"(bound {_MAX_RATIO}x)"
    )
    # The instrumented run actually counted what it processed.
    processed = instrumented.metrics.counter(
        "engine_items_processed_total").value(te="serve")
    assert processed == (1 + _TRIALS) * _ITEMS


def test_tracing_on_records_every_hop():
    runtime = _deploy(trace=True)
    for i in range(200):
        runtime.inject("serve", ("put", i % 16, i))
    runtime.run_until_idle()
    traces = runtime.tracer.traces()
    assert len(traces) == 200
    assert sum(len(t.hops) for t in traces) == 200
    assert all(t.hops[0].service_steps >= 1 for t in traces)

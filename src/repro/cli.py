"""Command-line interface: the ``py2sdg`` tool.

The paper ships ``java2sdg`` as a standalone translator; this module is
its Python counterpart, invoked as ``python -m repro``:

* ``translate <module>:<Class>`` — run the Fig. 3 pipeline over an
  annotated program class and print the resulting SDG (task elements
  with their state-access edges, and the dataflows with dispatch
  semantics). ``--dot`` emits Graphviz instead.
* ``allocate <module>:<Class>`` — additionally run the four-step
  allocation algorithm (§3.3) and print the node placement.
* ``lint <module>:<Class> | <app-name> | --all`` — run the ``sdglint``
  multi-pass static analyzer and report every finding (state races,
  checkpoint safety, key consistency, dead payloads, plus all the
  restriction/validation invariants) as structured diagnostics;
  ``--format json`` for machine-readable reports, ``--output`` to
  write a JSON report file. Exit status 1 when any error-severity
  diagnostic is found.
* ``table1`` — render the design-space classification of Table 1.
* ``obs`` — run an instrumented benchmark workload (checkpoints,
  failure detection, supervised recovery, optional fault injection)
  and dump the observability report: metrics, events, traces.
* ``top`` — run a demo workload and render the live telemetry
  dashboard (merged metrics, wire counters, wall-clock profile,
  flight-recorder tail) once after the drain, or repeatedly while the
  workload drains with ``--watch``. Works on both substrates.
* ``run`` — execute a workload. Plain runs pick an execution substrate
  (``--substrate inprocess`` or ``--substrate multiprocess --workers
  N``) and print wall time, throughput and the final state hash. With
  ``--durable DIR`` the run is epoch-driven and durable instead: every
  epoch is fenced into ``DIR/manifest.json`` together with checkpoint
  chains and the exported event log, so the process can be killed at
  any instant and picked up again (durable runs pin the in-process
  substrate — deterministic replay is its contract).
* ``resume DIR`` — resume a durable run after a crash (or continue a
  clean exit), via fast checkpoint restore or deterministic replay.
* ``fork SRC DEST --epoch K`` — clone a run directory at committed
  epoch K by hardlinking its checkpoint files.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro.core.allocation import allocate
from repro.errors import SDGError
from repro.translate import translate


def _load_class(spec: str) -> type:
    """Resolve ``package.module:ClassName`` to the class object."""
    if ":" not in spec:
        raise SDGError(
            f"expected <module>:<Class>, got {spec!r} "
            f"(e.g. repro.apps:CollaborativeFiltering)"
        )
    module_name, _, class_name = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SDGError(f"cannot import module {module_name!r}: {exc}")
    try:
        return getattr(module, class_name)
    except AttributeError:
        raise SDGError(
            f"module {module_name!r} has no class {class_name!r}"
        )


def _lint_reports(args) -> list:
    """Resolve the lint targets and run the analyzer over each."""
    from repro.analysis import run
    from repro.analysis.engine import bundled_targets

    substrate_safety = getattr(args, "substrate_safety", False)
    bundled = bundled_targets(substrate_safety=substrate_safety)
    if args.all:
        return [load() for load in bundled.values()]
    reports = []
    for spec in args.targets:
        if spec in bundled:
            reports.append(bundled[spec]())
        else:
            try:
                reports.append(run(_load_class(spec), name=spec,
                                   substrate_safety=substrate_safety))
            except TypeError as exc:
                raise SDGError(str(exc))
    return reports


def _capability_reports(args) -> list[dict]:
    """Certify each lint target; the optimizer's view of the program."""
    from repro.analysis.capabilities import certify
    from repro.analysis.engine import bundled_objects

    bundled = bundled_objects()
    certs = []
    if args.all:
        for name, load in bundled.items():
            target, _origin = load()
            certs.append(certify(target, name=name).to_dict())
        return certs
    for spec in args.targets:
        if spec in bundled:
            target, _origin = bundled[spec]()
            certs.append(certify(target, name=spec).to_dict())
        else:
            certs.append(certify(_load_class(spec), name=spec).to_dict())
    return certs


def _render_capabilities(cert: dict) -> str:
    lines = [f"capabilities for {cert['target']}:"]
    flags = ", ".join(cert["flags"]) if cert["flags"] else "(none)"
    lines.append(f"  flags: {flags}")
    rows = [
        ("commutative merges", cert["commutative_merges"]),
        ("foldable merges", cert["foldable_merges"]),
        ("batchable RMW", cert["batchable_rmw"]),
        ("coalescible entries", cert["coalescible_entries"]),
        ("coalescible edges",
         [f"{src} -> {dst}" for src, dst in cert["coalescible_edges"]]),
        ("batch-state TEs", cert["batch_state_tes"]),
    ]
    for label, values in rows:
        if values:
            lines.append(f"  {label}: {', '.join(values)}")
    if cert["refusals"]:
        lines.append("  refused (baseline path):")
        for refusal in cert["refusals"]:
            lines.append(f"    - {refusal}")
    return "\n".join(lines)


def _run_lint(args) -> int:
    reports = _lint_reports(args)
    if not reports:
        raise SDGError(
            "nothing to lint: pass <module>:<Class>, a bundled app "
            "name, or --all"
        )
    payload = {
        "reports": [r.to_dict() for r in reports],
        "summary": {
            "targets": len(reports),
            "errors": sum(len(r.errors) for r in reports),
            "warnings": sum(len(r.warnings) for r in reports),
        },
    }
    if args.capabilities:
        payload["capabilities"] = _capability_reports(args)
    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.render_text())
        for cert in payload.get("capabilities", ()):
            print(_render_capabilities(cert))
            print()
        total_errors = payload["summary"]["errors"]
        total_warnings = payload["summary"]["warnings"]
        print(f"sdglint: {len(reports)} target(s), "
              f"{total_errors} error(s), {total_warnings} warning(s)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        if args.format != "json":
            print(f"report written to {args.output}")
    if payload["summary"]["errors"]:
        return 1
    if (getattr(args, "fail_on", "error") == "warning"
            and payload["summary"]["warnings"]):
        return 1
    return 0


def _describe(result) -> str:
    sdg = result.sdg
    lines = [f"SDG {sdg.name!r}: {len(sdg.tasks)} task elements, "
             f"{len(sdg.states)} state elements, "
             f"{len(sdg.dataflows)} dataflows", ""]
    lines.append("state elements:")
    for se in sdg.states.values():
        key = f" by {se.partition_by!r}" if se.partition_by else ""
        lines.append(f"  {se.name}  ({se.kind.value}{key})")
    lines.append("")
    lines.append("task elements:")
    for te in sdg.tasks.values():
        flags = []
        if te.is_entry:
            flags.append("entry")
        if te.is_merge:
            flags.append("merge")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        access = (f"  --{te.access.value}--> {te.state}"
                  if te.state else "")
        lines.append(f"  {te.name}{access}{suffix}")
    lines.append("")
    lines.append("dataflows:")
    for edge in sdg.dataflows:
        key = f" key={edge.key_name}" if edge.key_name else ""
        lines.append(
            f"  {edge.src} -> {edge.dst}  [{edge.dispatch.value}{key}]"
        )
    lines.append("")
    lines.append("entry methods:")
    for info in result.entries.values():
        lines.append(
            f"  {info.method}({', '.join(info.params)})  "
            f"pipeline: {' -> '.join(info.te_names)}"
        )
    return "\n".join(lines)


def _describe_allocation(result) -> str:
    allocation = allocate(result.sdg)
    lines = ["", f"allocation ({allocation.n_nodes} nodes, "
                 f"four-step algorithm of §3.3):"]
    for node in sorted(allocation.nodes):
        members = sorted(allocation.nodes[node])
        lines.append(f"  node {node}: {', '.join(members)}")
    return "\n".join(lines)


def _durable_spec(args) -> "RunSpec":
    from repro.durability import RunSpec

    return RunSpec(
        app=args.app,
        seed=args.seed,
        epochs=args.epochs,
        items_per_epoch=args.items_per_epoch,
        n_keys=args.n_keys,
        read_fraction=args.read_fraction,
        se_instances=args.se_instances,
        full_every=args.full_every,
        throttle=args.throttle,
    )


def _durable_plan(args, spec):
    """Build the kills-only chaos plan for ``run --chaos-seed``."""
    if args.chaos_seed is None:
        return None
    from repro.chaos import random_plan
    from repro.durability import DurableWorkload

    workload = DurableWorkload(spec)
    horizon = max(200, spec.epochs * spec.items_per_epoch)
    n_kills = min(3, spec.epochs)
    return random_plan(
        args.chaos_seed,
        horizon=horizon,
        se=workload.se_name,
        entry_te=workload.entry_te,
        n_kills=n_kills,
        n_crashes=0,
        n_duplicates=0,
        n_slow=0,
        n_scale_ups=0,
        min_gap=horizon // (n_kills + 2),
    )


def _plain_run(args) -> int:
    """A plain (non-durable) run on the configured substrate."""
    import time

    from repro.durability.manifest import state_fingerprint
    from repro.runtime.engine import Runtime, RuntimeConfig

    if args.app == "kvstore":
        from repro.testing import build_kv_sdg

        sdg = build_kv_sdg()
        se_name, entry = "table", "serve"
        keys = max(1, args.n_keys)
        payloads = (("put", f"k{i % keys}", i)
                    for i in range(args.items))
    else:
        from repro.apps.wordcount import build_wordcount_sdg

        sdg = build_wordcount_sdg()
        se_name, entry = "counts", "split"
        words = ("state", "dataflow", "explicit", "imperative",
                 "big", "data", "processing")
        payloads = (
            (i, " ".join(words[(i + j) % len(words)] for j in range(4)))
            for i in range(args.items)
        )
    config = RuntimeConfig(
        se_instances={se_name: args.se_instances},
        substrate=args.substrate,
        workers=args.workers,
        optimize=args.optimize,
    )
    runtime = Runtime(sdg, config).deploy()
    try:
        start = time.perf_counter()
        for payload in payloads:
            runtime.inject(entry, payload)
        runtime.run_until_idle()
        wall = time.perf_counter() - start
        # Logical items, not envelope pops: a coalesced batch serves
        # many items in one step, so the step count under-reports.
        processed = int(
            runtime.merged_metrics().total("engine_items_processed_total")
        )
        fingerprint = state_fingerprint(runtime)
    finally:
        runtime.close()
    workers = ""
    if args.substrate == "multiprocess":
        workers = f" workers={args.workers if args.workers else 2}"
    throughput = args.items / wall if wall > 0 else float("inf")
    print(f"run complete: app={args.app} substrate={args.substrate}"
          f"{workers} items={args.items} processed={processed} "
          f"wall={wall:.3f}s throughput={throughput:.0f} items/s "
          f"state_hash={fingerprint}")
    return 0


def _drive_durable(runner) -> int:
    """Run the epoch loop with per-epoch progress lines."""
    def on_epoch(record):
        print(f"epoch {record.epoch}: position={record.position} "
              f"state_hash={record.state_hash} "
              f"events_offset={record.events_offset}")

    manifest = runner.run(on_epoch=on_epoch)
    print(f"run {manifest.run_id!r} complete: "
          f"{manifest.committed_epoch} epochs committed, "
          f"final state hash {manifest.latest.state_hash}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="py2sdg: translate annotated imperative programs "
                    "to stateful dataflow graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_translate = sub.add_parser(
        "translate", help="translate a program class to an SDG"
    )
    p_translate.add_argument("spec", help="<module>:<Class>")
    p_translate.add_argument("--dot", action="store_true",
                             help="emit Graphviz dot instead of text")

    p_allocate = sub.add_parser(
        "allocate", help="translate and show the node allocation"
    )
    p_allocate.add_argument("spec", help="<module>:<Class>")

    p_lint = sub.add_parser(
        "lint", help="run the sdglint static analyzer and report all "
                     "diagnostics"
    )
    p_lint.add_argument(
        "targets", nargs="*",
        help="<module>:<Class> specs or bundled app names "
             "(cf, kvstore, lr, kmeans, multiclass, wordcount, "
             "pagerank)",
    )
    p_lint.add_argument("--all", action="store_true",
                        help="lint every bundled application")
    p_lint.add_argument("--capabilities", action="store_true",
                        help="also run the capability certifier and "
                             "report the optimizer certificates "
                             "(commutative/foldable merges, batchable "
                             "RMWs, coalescible dispatch) per target")
    p_lint.add_argument("--substrate-safety", action="store_true",
                        dest="substrate_safety",
                        help="also run the SDG4xx fork-hazard passes "
                             "(unpicklable payloads, cross-process "
                             "nondeterminism, shared mutable globals) "
                             "— the same checks the multiprocess "
                             "deploy gate enforces")
    p_lint.add_argument("--fail-on", choices=["error", "warning"],
                        dest="fail_on", default="error",
                        help="severity threshold for a non-zero exit "
                             "code (default: error)")
    p_lint.add_argument("--format", choices=["text", "json"],
                        default="text", help="report format on stdout")
    p_lint.add_argument("--output", metavar="PATH",
                        help="also write the JSON report to PATH")

    sub.add_parser("table1", help="print the Table 1 design space")

    p_obs = sub.add_parser(
        "obs", help="run an instrumented workload and dump "
                    "metrics, events and traces"
    )
    p_obs.add_argument("--app", choices=["wordcount", "kvstore"],
                       default="wordcount", help="workload to run")
    p_obs.add_argument("--items", type=int, default=120,
                       help="workload items to inject")
    p_obs.add_argument("--no-trace", action="store_true",
                       help="disable per-envelope causal tracing")
    p_obs.add_argument("--no-chaos", action="store_true",
                       help="skip the mid-run KillNode fault")
    p_obs.add_argument("--optimize", action="store_true",
                       help="deploy with capability-driven dispatch "
                            "(certified coalescing/folds/RMW batching)")
    p_obs.add_argument("--events", metavar="PATH",
                       help="also write the event bus as JSON lines")

    p_top = sub.add_parser(
        "top", help="run a demo workload and render the telemetry "
                    "dashboard (metrics, wire, profile, flight tail)"
    )
    p_top.add_argument("--app", choices=["kvstore", "wordcount"],
                       default="kvstore", help="workload to run")
    p_top.add_argument("--items", type=int, default=200,
                       help="workload items to inject")
    p_top.add_argument("--substrate",
                       choices=["inprocess", "multiprocess"],
                       default="inprocess",
                       help="execution substrate to dashboard")
    p_top.add_argument("--workers", type=int, default=None,
                       help="worker processes for "
                            "--substrate multiprocess (default 2)")
    mode = p_top.add_mutually_exclusive_group()
    mode.add_argument("--once", action="store_true",
                      help="render one frame after the drain (default)")
    mode.add_argument("--watch", action="store_true",
                      help="render frames while the workload drains")
    p_top.add_argument("--frames", type=int, default=5,
                       help="frames to render in --watch mode")
    p_top.add_argument("--interval", type=float, default=0.2,
                       help="seconds between --watch frames")

    p_run = sub.add_parser(
        "run", help="execute a workload (plain, or durable with "
                    "--durable DIR)"
    )
    p_run.add_argument("--durable", metavar="DIR", default=None,
                       help="make the run durable and epoch-driven in "
                            "DIR (manifest, checkpoints, event log); "
                            "pins the in-process substrate")
    p_run.add_argument("--substrate",
                       choices=["inprocess", "multiprocess"],
                       default="inprocess",
                       help="execution substrate for a plain run")
    p_run.add_argument("--workers", type=int, default=None,
                       help="worker processes for "
                            "--substrate multiprocess (default 2)")
    p_run.add_argument("--optimize", action="store_true",
                       help="plain runs only: deploy with "
                            "capability-driven dispatch")
    p_run.add_argument("--items", type=int, default=400,
                       help="items to inject in a plain run")
    p_run.add_argument("--app", choices=["kvstore", "wordcount"],
                       default="kvstore", help="workload to run")
    p_run.add_argument("--epochs", type=int, default=5,
                       help="epochs to commit")
    p_run.add_argument("--items-per-epoch", type=int, default=100,
                       help="workload items injected per epoch")
    p_run.add_argument("--seed", type=int, default=11,
                       help="workload seed")
    p_run.add_argument("--n-keys", type=int, default=120,
                       help="KV key space size")
    p_run.add_argument("--read-fraction", type=float, default=0.0,
                       help="KV read fraction")
    p_run.add_argument("--se-instances", type=int, default=2,
                       help="partitions of the app's state element")
    p_run.add_argument("--full-every", type=int, default=4,
                       help="full-checkpoint cadence (0 = deltas "
                            "forever)")
    p_run.add_argument("--chaos-seed", type=int, default=None,
                       help="arm a reproducible kills-only fault plan")
    p_run.add_argument("--throttle", type=float, default=0.0,
                       help="seconds to hold each epoch open before "
                            "the commit (soak-test knob)")

    p_resume = sub.add_parser(
        "resume", help="resume a durable run from its manifest"
    )
    p_resume.add_argument("dir", metavar="DIR",
                          help="durable run directory")

    p_fork = sub.add_parser(
        "fork", help="clone a durable run at a committed epoch "
                     "(hardlinked checkpoints)"
    )
    p_fork.add_argument("src", metavar="SRC",
                        help="source run directory")
    p_fork.add_argument("dest", metavar="DEST",
                        help="new run directory to create")
    p_fork.add_argument("--epoch", type=int, required=True,
                        help="committed epoch to fork at")

    args = parser.parse_args(argv)
    try:
        if args.command == "table1":
            from repro.designspace import render_table

            print(render_table())
        elif args.command == "translate":
            result = translate(_load_class(args.spec))
            print(result.sdg.to_dot() if args.dot
                  else _describe(result))
        elif args.command == "allocate":
            result = translate(_load_class(args.spec))
            print(_describe(result))
            print(_describe_allocation(result))
        elif args.command == "lint":
            return _run_lint(args)
        elif args.command == "obs":
            from repro.obs.runner import render_report, run_workload

            run = run_workload(args.app, args.items,
                               trace=not args.no_trace,
                               chaos=not args.no_chaos,
                               optimize=args.optimize)
            print(render_report(run))
            if args.events:
                with open(args.events, "w", encoding="utf-8") as fh:
                    fh.write(run.runtime.events.to_jsonl())
                print(f"\nevents written to {args.events}")
        elif args.command == "top":
            from repro.obs.top import run_top

            return run_top(
                app=args.app, items=args.items,
                substrate=args.substrate, workers=args.workers,
                watch=args.watch, frames=args.frames,
                interval=args.interval,
            )
        elif args.command == "run":
            if args.durable is None:
                return _plain_run(args)
            if args.substrate != "inprocess" or args.workers is not None:
                raise SDGError(
                    "durable runs pin the in-process substrate "
                    "(deterministic replay is its contract); drop "
                    "--substrate/--workers or drop --durable"
                )
            if args.optimize:
                raise SDGError(
                    "durable runs replay deterministically from their "
                    "manifest; --optimize applies to plain runs only"
                )
            from repro.durability import DurableRunner

            spec = _durable_spec(args)
            plan = _durable_plan(args, spec)
            runner = DurableRunner.start(args.durable, spec, plan=plan)
            print(f"starting durable run in {args.durable} "
                  f"(app={spec.app}, epochs={spec.epochs}, "
                  f"chaos={'on' if plan else 'off'})")
            return _drive_durable(runner)
        elif args.command == "resume":
            from repro.durability import DurableRunner

            runner = DurableRunner.resume(args.dir)
            print(f"resumed {args.dir} via {runner.resume_mode} "
                  f"(committed epoch "
                  f"{runner.manifest.committed_epoch})")
            return _drive_durable(runner)
        elif args.command == "fork":
            from repro.durability import fork_run

            child = fork_run(args.src, args.dest, args.epoch)
            print(f"forked {args.src} at epoch {args.epoch} into "
                  f"{args.dest} (run id {child.run_id!r}); resume it "
                  f"with: repro resume {args.dest}")
    except SDGError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Tests for the annotation descriptors and markers (§4.1)."""

import pytest

from repro import (
    Partial,
    Partitioned,
    SDGProgram,
    TranslationError,
    collection,
    entry,
    global_,
)
from repro.core import StateKind
from repro.state import KeyValueMap, Matrix, Vector


class TestDescriptors:
    def test_partitioned_kind_and_key(self):
        field = Partitioned(Matrix, key="user")
        assert field.kind is StateKind.PARTITIONED
        assert field.key == "user"

    def test_partial_kind(self):
        field = Partial(Vector)
        assert field.kind is StateKind.PARTIAL
        assert field.key is None

    def test_non_callable_factory_rejected(self):
        with pytest.raises(TranslationError, match="callable"):
            Partial(42)

    def test_instance_access_materialises_lazily(self):
        class P(SDGProgram):
            table = Partitioned(KeyValueMap, key="k")

            @entry
            def put(self, k, v):
                self.table.put(k, v)

        program = P()
        assert "table" not in program.__dict__
        program.table.put("x", 1)
        assert "table" in program.__dict__
        # Same instance on every access.
        assert program.table is program.table

    def test_instances_do_not_share_state(self):
        class P(SDGProgram):
            table = Partial(KeyValueMap)

            @entry
            def put(self, k, v):
                self.table.put(k, v)

        first, second = P(), P()
        first.table.put("x", 1)
        assert second.table.get("x") is None

    def test_class_access_returns_descriptor(self):
        class P(SDGProgram):
            table = Partial(KeyValueMap)

            @entry
            def noop(self, x):
                return x

        assert isinstance(P.table, Partial)

    def test_factory_must_produce_state_element(self):
        class P(SDGProgram):
            bad = Partial(dict)

            @entry
            def op(self, x):
                return self.bad

        program = P()
        with pytest.raises(TranslationError, match="StateElement"):
            program.bad  # noqa: B018 - attribute access is the test


class TestMarkers:
    def test_entry_marks_method(self):
        @entry
        def method(self):
            pass

        assert method._sdg_entry is True

    def test_global_is_identity_sequentially(self):
        kv = KeyValueMap()
        assert global_(kv) is kv

    def test_collection_wraps_sequentially(self):
        assert collection(5) == [5]

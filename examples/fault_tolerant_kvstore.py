"""Failure recovery walkthrough (§5): checkpoint, kill, restore, replay.

A KV store checkpoints asynchronously (processing continues against the
dirty overlay), a node is killed, and the state is restored — first
1-to-1, then m-to-n onto two fresh nodes in parallel. Un-checkpointed
updates are replayed from upstream buffers and duplicates are discarded
by timestamp, so the recovered store is bit-identical to a failure-free
run.

Run with:

    python examples/fault_tolerant_kvstore.py
"""

from repro.recovery import BackupStore, CheckpointManager, RecoveryManager
from repro.runtime import Runtime, RuntimeConfig
from repro.core import SDG, AccessMode, StateKind
from repro.state import KeyValueMap


def build_store() -> SDG:
    sdg = SDG("kvstore")
    sdg.add_state("table", KeyValueMap, kind=StateKind.PARTITIONED,
                  partition_by="key")

    def serve(ctx, request):
        op, key, value = request
        if op == "put":
            ctx.state.put(key, value)
            return None
        return (key, ctx.state.get(key))

    sdg.add_task("serve", serve, state="table",
                 access=AccessMode.PARTITIONED, is_entry=True,
                 entry_key_fn=lambda r: r[1], entry_key_name="key")
    return sdg


def contents(runtime):
    merged = {}
    for inst in runtime.se_instances("table"):
        merged.update(dict(inst.element.items()))
    return merged


def main():
    runtime = Runtime(build_store(),
                      RuntimeConfig(se_instances={"table": 1})).deploy()
    store = BackupStore(m_targets=2)
    checkpoints = CheckpointManager(runtime, store)
    recovery = RecoveryManager(runtime, store)

    # Phase 1: ingest, then take an asynchronous checkpoint while more
    # updates keep flowing (served from the dirty overlay).
    for i in range(200):
        runtime.inject("serve", ("put", i, i))
    runtime.run_until_idle()
    node = runtime.se_instance("table", 0).node_id
    pending = checkpoints.begin(node)
    for i in range(200, 300):
        runtime.inject("serve", ("put", i, i))
    served_mid = runtime.run_until_idle()
    element = runtime.se_instance("table", 0).element
    print(f"served {served_mid} updates while the checkpoint was open "
          f"(dirty entries: {element.dirty_size})")
    checkpoint = checkpoints.complete(pending)
    print(f"checkpoint v{checkpoint.version}: "
          f"{checkpoint.state_entries()} entries in "
          f"{store.total_chunks()} chunks over "
          f"{store.m_targets} backup targets "
          f"(loads: {store.target_loads()})")

    # Phase 2: more un-checkpointed updates, then kill the node.
    for i in range(300, 400):
        runtime.inject("serve", ("put", i, i))
    runtime.run_until_idle()
    print(f"\nkilling node {node} "
          f"(holds {len(contents(runtime))} entries; "
          f"100 of them exist only in upstream buffers)")
    runtime.fail_node(node)

    # Phase 3: m-to-n recovery — restore the single failed partition
    # onto TWO fresh nodes in parallel (Fig. 4).
    new_nodes = recovery.recover_node(node, n_new=2)
    runtime.run_until_idle()
    restored = contents(runtime)
    print(f"restored onto nodes "
          f"{[n.node_id for n in new_nodes]} as "
          f"{len(runtime.se_instances('table'))} partitions")
    print(f"entries after recovery: {len(restored)} "
          f"(expected 400) -> "
          f"{'OK' if restored == {i: i for i in range(400)} else 'FAIL'}")

    # Reads keep working against the re-partitioned store.
    runtime.inject("serve", ("get", 42, None))
    runtime.inject("serve", ("get", 399, None))
    runtime.run_until_idle()
    print(f"post-recovery reads: {runtime.results['serve']}")


if __name__ == "__main__":
    main()

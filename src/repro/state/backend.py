"""Pluggable physical stores behind state elements.

A :class:`StateBackend` is the *physical* half of an SE: it owns the
actual data structure (a dict, a dense list, a grid) while the
:class:`~repro.state.base.StateElement` on top of it stays a pure
domain API (``put``/``get_row``/``multiply``...). The split mirrors the
paper's separation of logical state from its representation (§3.2) and
turns the storage layer into a seam: swapping the backend changes the
physical layout without touching the SE's semantics, its dirty-state
checkpoint protocol, or its partitioning support.

Every backend additionally keeps a **mutation journal** — the set of
keys written and deleted since the last :meth:`StateBackend.mark_clean`
— which is what makes *incremental* (delta) checkpointing possible:
instead of re-serialising the full state each cycle, a delta checkpoint
emits only the journalled keys (changed values plus tombstones), so the
per-cycle backup cost is O(|mutations|) rather than O(|state|).

Journal invariants (maintained by the concrete ``set``/``delete``
implementations here, so every backend gets them for free):

* a key is in at most one of ``written`` / ``deleted``;
* write-then-delete journals as *deleted* only (a tombstone);
* delete-then-rewrite journals as *written* only.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.errors import StateError


@dataclass(frozen=True)
class MutationJournal:
    """Immutable view of a backend's mutations since ``mark_clean``."""

    written: frozenset
    deleted: frozenset

    def __len__(self) -> int:
        return len(self.written) + len(self.deleted)

    @property
    def empty(self) -> bool:
        return not self.written and not self.deleted


class StateBackend(abc.ABC):
    """Protocol for the physical store of one SE instance.

    The public mutators (:meth:`set`, :meth:`delete`, :meth:`clear`)
    maintain the mutation journal and delegate the actual storage work
    to the ``_do_*`` hooks implemented by subclasses.
    """

    def __init__(self) -> None:
        self._written: set[Hashable] = set()
        self._deleted: set[Hashable] = set()
        #: Deferred journal ops ``(is_write, key)`` while a write batch
        #: is open (``None`` = batching off, the default). Storage
        #: writes are never deferred — only the journal bookkeeping.
        self._batch_ops: list[tuple[bool, Hashable]] | None = None

    # -- storage hooks (subclass responsibility) -----------------------

    @abc.abstractmethod
    def get(self, key: Hashable) -> Any:
        """Return the value for ``key``; KeyError when absent."""

    @abc.abstractmethod
    def _do_set(self, key: Hashable, value: Any) -> None:
        """Write ``value`` for ``key``."""

    @abc.abstractmethod
    def _do_delete(self, key: Hashable) -> None:
        """Remove ``key``; KeyError when absent."""

    @abc.abstractmethod
    def contains(self, key: Hashable) -> bool:
        """Membership test."""

    @abc.abstractmethod
    def items(self) -> Iterator[tuple[Hashable, Any]]:
        """Iterate over all stored ``(key, value)`` pairs."""

    @abc.abstractmethod
    def _do_clear(self) -> None:
        """Empty the store."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    # -- journalled mutators -------------------------------------------

    def set(self, key: Hashable, value: Any) -> None:
        self._do_set(key, value)
        if self._batch_ops is not None:
            self._batch_ops.append((True, key))
            return
        self._written.add(key)
        self._deleted.discard(key)

    def delete(self, key: Hashable) -> None:
        self._do_delete(key)
        if self._batch_ops is not None:
            self._batch_ops.append((False, key))
            return
        self._deleted.add(key)
        self._written.discard(key)

    def clear(self) -> None:
        self._flush_batch()
        for key, _value in list(self.items()):
            self._deleted.add(key)
            self._written.discard(key)
        self._do_clear()

    # -- batched journal bookkeeping -----------------------------------

    def begin_batch(self) -> None:
        """Defer journal bookkeeping until :meth:`end_batch`.

        Inside a batch, :meth:`set`/:meth:`delete` apply to storage
        immediately — reads always see the latest value — but their
        per-key journal set mutations are queued and folded in at
        batch end (one pass, set-bulk operations for the common
        write-only case). The fold replays ops in order, so the
        journal invariants (write-then-delete = tombstone only,
        delete-then-rewrite = write only) hold exactly as if each op
        had journalled eagerly. Idempotent; journal reads and
        ``clear`` flush the pending ops first, so batching is never
        observable in a :class:`MutationJournal`.
        """
        if self._batch_ops is None:
            self._batch_ops = []

    def end_batch(self) -> None:
        """Fold the deferred ops into the journal and close the batch."""
        ops = self._batch_ops
        self._batch_ops = None
        if ops:
            self._apply_batch_ops(ops)

    def _flush_batch(self) -> None:
        """Fold pending ops without closing an open batch."""
        ops = self._batch_ops
        if ops:
            self._batch_ops = []
            self._apply_batch_ops(ops)

    def _apply_batch_ops(self, ops: list[tuple[bool, Hashable]]) -> None:
        if all(is_write for is_write, _key in ops):
            # The certified-RMW case: writes only, fold as bulk set ops.
            keys = {key for _is_write, key in ops}
            self._written.update(keys)
            self._deleted.difference_update(keys)
            return
        for is_write, key in ops:
            if is_write:
                self._written.add(key)
                self._deleted.discard(key)
            else:
                self._deleted.add(key)
                self._written.discard(key)

    # -- journal -------------------------------------------------------

    def journal(self) -> MutationJournal:
        """Snapshot of the keys mutated since the last ``mark_clean``."""
        self._flush_batch()
        return MutationJournal(written=frozenset(self._written),
                               deleted=frozenset(self._deleted))

    def mark_clean(self) -> None:
        """Reset the journal — called once a checkpoint has persisted."""
        if self._batch_ops:
            # Pending ops predate the clean point: drop them with it.
            self._batch_ops = []
        self._written.clear()
        self._deleted.clear()

    @property
    def journal_size(self) -> int:
        self._flush_batch()
        return len(self._written) + len(self._deleted)


class DictBackend(StateBackend):
    """The default hash-map store (KeyValueMap and custom SEs)."""

    def __init__(self) -> None:
        super().__init__()
        self._map: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        return self._map[key]

    def _do_set(self, key: Hashable, value: Any) -> None:
        self._map[key] = value

    def _do_delete(self, key: Hashable) -> None:
        del self._map[key]

    def contains(self, key: Hashable) -> bool:
        return key in self._map

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        return iter(self._map.items())

    def _do_clear(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return len(self._map)


class ListBackend(StateBackend):
    """Dense growable float storage keyed by non-negative int index.

    Backs :class:`~repro.state.vector.Vector`: writes beyond the
    current length zero-fill the gap (every implicitly created entry is
    journalled, so deltas stay exact), and ``delete`` keeps the slot,
    resetting it to 0.0 — matching the vector's sparse-read semantics.
    """

    def __init__(self, values: list[float] | None = None) -> None:
        super().__init__()
        self._data: list[float] = list(values) if values else []

    @staticmethod
    def _check_index(key: Hashable) -> int:
        if not isinstance(key, int) or isinstance(key, bool) or key < 0:
            raise StateError(
                f"vector index must be a non-negative int: {key!r}"
            )
        return key

    def get(self, key: Hashable) -> float:
        index = self._check_index(key)
        if index >= len(self._data):
            raise KeyError(index)
        return self._data[index]

    def _do_set(self, key: Hashable, value: Any) -> None:
        index = self._check_index(key)
        if index >= len(self._data):
            # Implicit zero-fill: journal the new slots so a delta
            # checkpoint reproduces the growth exactly.
            for gap in range(len(self._data), index):
                self._written.add(gap)
                self._deleted.discard(gap)
            self._data.extend([0.0] * (index + 1 - len(self._data)))
        self._data[index] = float(value)

    def delete(self, key: Hashable) -> None:
        index = self._check_index(key)
        if index >= len(self._data):
            raise KeyError(index)
        # A deleted slot stays allocated and reads 0.0: journal a write.
        self.set(index, 0.0)

    def _do_delete(self, key: Hashable) -> None:  # pragma: no cover
        raise AssertionError("ListBackend.delete never reaches _do_delete")

    def contains(self, key: Hashable) -> bool:
        return self._check_index(key) < len(self._data)

    def items(self) -> Iterator[tuple[int, float]]:
        return iter(enumerate(self._data))

    def _do_clear(self) -> None:
        self._data = []

    def __len__(self) -> int:
        return len(self._data)

    def grow_to(self, size: int) -> None:
        """Zero-extend to ``size`` entries (chunk-meta restore path)."""
        if size > len(self._data):
            self.set(size - 1, 0.0)


class DenseGridBackend(StateBackend):
    """Fixed-shape dense 2-D float storage keyed by ``(row, col)``.

    Backs :class:`~repro.state.matrix.DenseMatrix`: every in-bounds
    cell exists (``contains`` is a bounds check), ``delete`` resets the
    cell to 0.0, and iteration yields the full grid in row-major order.
    """

    def __init__(self, n_rows: int, n_cols: int) -> None:
        super().__init__()
        self.n_rows = n_rows
        self.n_cols = n_cols
        self._data = [[0.0] * n_cols for _ in range(n_rows)]

    def _check_key(self, key: Hashable) -> tuple[int, int]:
        if not isinstance(key, tuple) or len(key) != 2:
            raise StateError(
                f"dense matrix key must be (row, col): {key!r}"
            )
        row, col = key
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise StateError(
                f"index ({row}, {col}) out of bounds for "
                f"{self.n_rows}x{self.n_cols} matrix"
            )
        return row, col

    def get(self, key: Hashable) -> float:
        row, col = self._check_key(key)
        return self._data[row][col]

    def _do_set(self, key: Hashable, value: Any) -> None:
        row, col = self._check_key(key)
        self._data[row][col] = float(value)

    def delete(self, key: Hashable) -> None:
        # A dense cell cannot disappear: deletion journals a zero write.
        self.set(self._check_key(key), 0.0)

    def _do_delete(self, key: Hashable) -> None:  # pragma: no cover
        raise AssertionError(
            "DenseGridBackend.delete never reaches _do_delete"
        )

    def contains(self, key: Hashable) -> bool:
        self._check_key(key)
        return True

    def items(self) -> Iterator[tuple[tuple[int, int], float]]:
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                yield (row, col), self._data[row][col]

    def _do_clear(self) -> None:
        self._data = [[0.0] * self.n_cols for _ in range(self.n_rows)]

    def __len__(self) -> int:
        return self.n_rows * self.n_cols

    def clear(self) -> None:
        # Dense clear = zero every cell; the cells still exist, so they
        # journal as writes, not deletions.
        self._flush_batch()
        self._do_clear()
        for row in range(self.n_rows):
            for col in range(self.n_cols):
                self._written.add((row, col))
                self._deleted.discard((row, col))


class SparseMatrixBackend(DictBackend):
    """Dict-of-cells store with a per-row column index.

    Backs :class:`~repro.state.matrix.Matrix`: keys are validated
    ``(row, col)`` int pairs and a ``row -> {cols}`` index is maintained
    on every mutation so ``get_row`` stays proportional to the row's
    population rather than the matrix size.
    """

    def __init__(self) -> None:
        super().__init__()
        self._row_cols: dict[int, set[int]] = {}

    @staticmethod
    def _check_key(key: Hashable) -> tuple[int, int]:
        if (
            not isinstance(key, tuple)
            or len(key) != 2
            or not all(isinstance(k, int) and k >= 0 for k in key)
        ):
            raise StateError(
                f"matrix key must be a (row, col) pair of non-negative "
                f"ints: {key!r}"
            )
        return key  # type: ignore[return-value]

    def get(self, key: Hashable) -> float:
        return self._map[self._check_key(key)]

    def _do_set(self, key: Hashable, value: Any) -> None:
        row, col = self._check_key(key)
        self._map[(row, col)] = float(value)
        self._row_cols.setdefault(row, set()).add(col)

    def _do_delete(self, key: Hashable) -> None:
        row, col = self._check_key(key)
        del self._map[(row, col)]
        cols = self._row_cols.get(row)
        if cols is not None:
            cols.discard(col)
            if not cols:
                del self._row_cols[row]

    def contains(self, key: Hashable) -> bool:
        return self._check_key(key) in self._map

    def _do_clear(self) -> None:
        self._map.clear()
        self._row_cols.clear()

    def row_cols(self, row: int) -> set[int]:
        """The populated column indexes of ``row`` (a copy)."""
        return set(self._row_cols.get(row, ()))

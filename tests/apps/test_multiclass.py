"""Tests for multiclass softmax regression over a partial DenseMatrix."""

import random

import pytest

from repro.apps.multiclass import (
    N_CLASSES,
    N_FEATURES,
    MulticlassRegression,
    softmax,
)
from repro.core import AccessMode


def make_blobs(seed=9, per_class=80):
    """Three separable Gaussian blobs in (N_FEATURES - 1) dims."""
    rng = random.Random(seed)
    centres = [
        [3.0, 0.0, 0.0, 0.0, 0.0],
        [0.0, 3.0, 0.0, 0.0, 0.0],
        [0.0, 0.0, 3.0, 0.0, 0.0],
    ]
    data = []
    for label, centre in enumerate(centres):
        for _ in range(per_class):
            features = [1.0] + [c + rng.gauss(0, 0.6) for c in centre]
            data.append((features, label))
    rng.shuffle(data)
    return data


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax([1.0, 2.0, 3.0])
        assert sum(probs) == pytest.approx(1.0)
        assert probs[2] > probs[1] > probs[0]

    def test_stable_for_large_scores(self):
        probs = softmax([1000.0, 0.0, -1000.0])
        assert probs[0] == pytest.approx(1.0)


class TestTranslation:
    def test_structure(self):
        result = MulticlassRegression.translate()
        train = result.sdg.task(result.entry_info("train").entry_te)
        assert train.access is AccessMode.LOCAL
        read = result.entry_info("get_model")
        assert len(read.te_names) == 2
        assert result.sdg.task(read.te_names[1]).is_merge

    def test_dense_matrix_shape_fixed(self):
        program = MulticlassRegression()
        assert program.weights.n_rows == N_CLASSES
        assert program.weights.n_cols == N_FEATURES


class TestLearning:
    def train_and_score(self, replicas, epochs=3):
        data = make_blobs()
        app = MulticlassRegression.launch(weights=replicas)
        for _ in range(epochs):
            for features, label in data:
                app.train(features, label, 0.3)
            app.run()
        app.get_model()
        app.run()
        model = app.results("get_model")[-1]
        oracle = MulticlassRegression()
        correct = sum(
            1 for features, label in data
            if oracle.classify_with(model, features) == label
        )
        return correct / len(data), model

    def test_single_replica_learns(self):
        accuracy, model = self.train_and_score(replicas=1)
        assert accuracy > 0.95
        assert len(model) == N_CLASSES
        assert all(len(row) == N_FEATURES for row in model)

    def test_four_replicas_still_learn(self):
        accuracy, _model = self.train_and_score(replicas=4)
        assert accuracy > 0.9

    def test_single_replica_matches_sequential(self):
        data = make_blobs(per_class=25)
        sequential = MulticlassRegression()
        app = MulticlassRegression.launch(weights=1)
        for features, label in data:
            sequential.train(features, label, 0.3)
            app.train(features, label, 0.3)
        app.run()
        app.get_model()
        app.run()
        got = app.results("get_model")[-1]
        want = sequential.get_model()
        for got_row, want_row in zip(got, want):
            assert got_row == pytest.approx(want_row)

    def test_model_is_replica_average(self):
        data = make_blobs(per_class=15)
        app = MulticlassRegression.launch(weights=2)
        for features, label in data:
            app.train(features, label, 0.3)
        app.run()
        replicas = [element.to_rows()
                    for element in app.state_of("weights")]
        assert replicas[0] != replicas[1]
        app.get_model()
        app.run()
        model = app.results("get_model")[-1]
        for c in range(N_CLASSES):
            for i in range(N_FEATURES):
                expected = (replicas[0][c][i] + replicas[1][c][i]) / 2
                assert model[c][i] == pytest.approx(expected)

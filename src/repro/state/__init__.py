"""State elements (SEs): the explicit mutable state of an SDG.

The paper (§3.2) requires state elements to be implemented with efficient
data structures that additionally support:

* **dynamic partitioning** — splitting one SE instance into disjoint
  partitions placed on separate nodes (partitioned state), and the reverse
  merge used during recovery and re-scaling;
* **dirty state** — a write overlay that lets processing continue while an
  asynchronous checkpoint captures a consistent snapshot (§5), followed by
  consolidation of the overlay into the main structure;
* **chunked serialisation** — splitting a checkpoint into chunks that are
  backed up to *m* nodes and restored to *n* nodes in parallel (Fig. 4),
  including the *incremental* variant that serialises only the keys
  mutated since the previous checkpoint (:class:`DeltaChunk`).

This package provides the predefined SE classes named in the paper
(``Vector``, ``HashMap``-style :class:`KeyValueMap`, ``Matrix`` and
``DenseMatrix``) plus the base protocol for user-defined SEs and the
pluggable :class:`StateBackend` physical stores behind them.
"""

from repro.state.backend import (
    DenseGridBackend,
    DictBackend,
    ListBackend,
    MutationJournal,
    SparseMatrixBackend,
    StateBackend,
)
from repro.state.base import DeltaChunk, StateChunk, StateElement
from repro.state.dirty import DirtyOverlay, TOMBSTONE
from repro.state.keyvalue import KeyValueMap
from repro.state.matrix import DenseMatrix, Matrix
from repro.state.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.state.vector import Vector

__all__ = [
    "DeltaChunk",
    "DenseGridBackend",
    "DenseMatrix",
    "DictBackend",
    "DirtyOverlay",
    "HashPartitioner",
    "KeyValueMap",
    "ListBackend",
    "Matrix",
    "MutationJournal",
    "Partitioner",
    "RangePartitioner",
    "SparseMatrixBackend",
    "StateBackend",
    "StateChunk",
    "StateElement",
    "TOMBSTONE",
    "Vector",
]

"""Capability certification: static proofs become runtime licences.

The lint passes prove *negative* facts (this merge is order-sensitive,
this RMW leaks replica-divergent values). This module runs the same
machinery in the *positive* direction and emits a
:class:`ProgramCapabilities` artifact — a set of machine-checkable
licences the runtime optimizer (``RuntimeConfig(optimize=True)``) is
allowed to act on:

``COMMUTATIVE_MERGE``
    A merge method whose result provably does not depend on the order
    of the gathered collection: :func:`~repro.analysis.merges.
    order_sensitive_sites` finds nothing, every use of the collection
    parameter fits a closed whitelist (iteration, emptiness tests,
    ``len``/``max``/``min``/``sum``), and every loop over it performs
    only commutative-associative accumulation. The gather barrier may
    then fold replica values in *arrival* order. A strict subclass —
    the *foldable* tier — additionally matches the canonical
    ``acc = identity; for x in coll: steps; return acc`` shape, from
    which an incremental :class:`MergeFold` is synthesised so the
    barrier can fold each value as it arrives instead of buffering
    the whole collection.

``BATCHABLE_RMW``
    A local-access read-modify-write on partial state that
    :func:`~repro.analysis.races.block_taints` proves non-escaping:
    no value derived from the replica's state leaves the block, so the
    backend may defer per-mutation journal bookkeeping across a whole
    delivery batch.

``COALESCIBLE_DISPATCH``
    The program-wide licence to coalesce consecutive same-channel
    envelopes into batched deliveries. Batching preserves per-channel
    FIFO order but changes the *cross-channel interleaving* at every
    instance, so it is granted only when the interleaving provably
    cannot reach state: every SE is written either exclusively through
    commutative mutators (``add``/``increment``...) or by a single
    entry TE fed by one totally-ordered input stream, and no TE whose
    reads could observe interleaving-dependent intermediate state
    (an *unstable reader*) writes state itself or flows into a TE
    that does.

All certificates are *logical*: commutativity of floating-point
addition is assumed exact, as the dependency-guided synchronization
literature does. The optimizer differentials therefore pin
``state_fingerprint`` equality on integer-valued workloads.

:func:`certify` mirrors :func:`repro.analysis.engine.analyze` — it
accepts an ``SDGProgram`` subclass (certified from the captured
method IR), a hand-built :class:`~repro.core.graph.SDG` (certified
from the task functions' sources), or a zero-argument SDG factory.
Anything the certifier cannot *read* it refuses: an unreadable task
source disables coalescing for the whole program, never silently
enables it.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.merges import (
    _mentions,
    _same_target,
    order_sensitive_sites,
)
from repro.analysis.model import (
    READ_METHODS,
    WRITE_METHODS,
    ProgramModel,
    field_method_calls,
    stmt_reads_field,
)
from repro.analysis.races import block_taints
from repro.core.dispatch import Dispatch
from repro.core.elements import AccessMode, StateKind
from repro.core.graph import SDG

#: SE mutators that commute with each other on distinct calls: the
#: final state does not depend on the order in which they are applied.
#: (``put``/``set`` overwrite — last writer wins — so they are *not*
#: commutative; ``append``/``extend`` encode arrival order.)
COMMUTATIVE_WRITE_METHODS = frozenset({
    "add", "add_element", "add_vector", "increment",
})

#: Binary operators that are commutative *and* associative.
_COMMUTATIVE_BINOPS = (ast.Add, ast.Mult, ast.BitOr, ast.BitAnd, ast.BitXor)

#: Builtins whose result over the gathered collection is a function of
#: its multiset of elements, never of their order.
_MULTISET_CALLS = frozenset({"len", "max", "min", "sum"})

#: Dispatch semantics whose edges may carry batched deliveries. The
#: barrier semantics stay per-item: ``ONE_TO_ALL`` needs one request id
#: per item and ``ALL_TO_ONE`` responses are request-tagged.
_COALESCIBLE_DISPATCH = (Dispatch.KEY_PARTITIONED, Dispatch.ONE_TO_ANY)


@dataclass(frozen=True)
class MergeFold:
    """Synthesised incremental form of a foldable merge.

    ``init()`` builds the accumulator (the ``acc = identity``
    statement of the canonical shape); ``step(acc, item)`` applies one
    loop iteration and returns the accumulator. Folding the gathered
    values in arrival order is bit-identical to running the original
    loop over the buffered collection, because the buffer is built in
    arrival order too.
    """

    init: Callable[[], Any]
    step: Callable[[Any, Any], Any]


@dataclass
class ProgramCapabilities:
    """The certificates granted to one program (or hand-built SDG).

    Names are merge *method* names for translated programs and TE
    names for hand-built SDGs, except the runtime-facing fields
    (``merge_folds``, ``batchable_rmw``, ``batch_state_tes``,
    ``coalescible_*``) which always speak TE/edge names.
    """

    target: str
    #: Merges certified order-insensitive (``COMMUTATIVE_MERGE``).
    commutative_merges: tuple[str, ...] = ()
    #: The subset matching the canonical fold shape.
    foldable_merges: tuple[str, ...] = ()
    #: TEs whose partial-state RMW is non-escaping (``BATCHABLE_RMW``).
    batchable_rmw: tuple[str, ...] = ()
    #: Entry TEs whose injected input may be delivered in batches.
    coalescible_entries: frozenset = frozenset()
    #: ``(src, dst)`` dataflow edges that may carry batched deliveries.
    coalescible_edges: frozenset = frozenset()
    #: TEs whose SE mutations may share one journal-batched window.
    batch_state_tes: frozenset = frozenset()
    #: Merge TE name → synthesised incremental fold. Not serialised.
    merge_folds: dict = field(default_factory=dict)
    #: Human-readable reasons for every refused certificate.
    refusals: tuple[str, ...] = ()
    #: No error-severity SDG4xx finding: safe to fork across processes.
    substrate_safe: bool = False
    #: The SDG4xx diagnostics found during certification (empty when
    #: substrate-safe apart from warnings).
    substrate_findings: tuple = ()

    @property
    def flags(self) -> list[str]:
        """The granted capability flags, in documentation order."""
        flags = []
        if self.commutative_merges:
            flags.append("COMMUTATIVE_MERGE")
        if self.batchable_rmw:
            flags.append("BATCHABLE_RMW")
        if self.coalescible_edges or self.coalescible_entries:
            flags.append("COALESCIBLE_DISPATCH")
        if self.substrate_safe:
            flags.append("SUBSTRATE_SAFE")
        return flags

    def to_dict(self) -> dict:
        """JSON-friendly form (folds are code, so they stay out)."""
        return {
            "target": self.target,
            "flags": self.flags,
            "commutative_merges": sorted(self.commutative_merges),
            "foldable_merges": sorted(self.foldable_merges),
            "batchable_rmw": sorted(self.batchable_rmw),
            "coalescible_entries": sorted(self.coalescible_entries),
            "coalescible_edges": sorted(
                list(edge) for edge in self.coalescible_edges
            ),
            "batch_state_tes": sorted(self.batch_state_tes),
            "refusals": list(self.refusals),
            "substrate_safe": self.substrate_safe,
            "substrate_findings": [
                d.to_dict() for d in self.substrate_findings
            ],
        }

    @classmethod
    def empty(cls, target: str,
              *refusals: str) -> "ProgramCapabilities":
        return cls(target=target, refusals=tuple(refusals))


def certify(target, name: str | None = None) -> ProgramCapabilities:
    """Certify ``target`` and return its granted capabilities."""
    from repro.program import SDGProgram

    if isinstance(target, SDG):
        return _certify_sdg(target, name or target.name)
    if isinstance(target, type) and issubclass(target, SDGProgram):
        return _certify_program(target, name or target.__name__)
    if callable(target):
        sdg = target()
        if isinstance(sdg, SDG):
            label = name or getattr(target, "__name__", sdg.name)
            return _certify_sdg(sdg, label)
    raise TypeError(
        f"cannot certify {target!r}: expected an SDGProgram subclass, "
        f"an SDG, or a zero-argument SDG factory"
    )


# ----------------------------------------------------------------------
# Merge commutativity (COMMUTATIVE_MERGE) and the foldable tier
# ----------------------------------------------------------------------


def _parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }


def _unwhitelisted_uses(fn_ast: ast.FunctionDef,
                        coll: str) -> list[ast.Name]:
    """Uses of the collection outside the certified-commutative forms.

    Whitelisted positions: ``for x in coll`` / comprehension iteration,
    multiset builtins (``len(coll)``, ``max``/``min``/``sum``),
    emptiness tests (``if coll:`` / ``not coll``). Everything else —
    including rebinding the parameter — disqualifies the merge.
    """
    parents = _parent_map(fn_ast)
    bad: list[ast.Name] = []
    for node in ast.walk(fn_ast):
        if not (isinstance(node, ast.Name) and node.id == coll):
            continue
        if not isinstance(node.ctx, ast.Load):
            bad.append(node)
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.For) and parent.iter is node:
            continue
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            continue
        if (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _MULTISET_CALLS
        ):
            continue
        if isinstance(parent, ast.UnaryOp) and isinstance(
            parent.op, ast.Not
        ):
            continue
        if isinstance(parent, ast.If) and parent.test is node:
            continue
        bad.append(node)
    return bad


def _is_accumulation(stmt: ast.stmt) -> bool:
    """``t += x`` / ``t = t + x`` / ``t = x + t`` / ``t = max(t, x)``
    with a commutative-associative combiner."""
    if isinstance(stmt, ast.AugAssign):
        return isinstance(stmt.op, _COMMUTATIVE_BINOPS)
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, _COMMUTATIVE_BINOPS
        ):
            return (_same_target(target, value.left)
                    or _same_target(target, value.right))
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("max", "min")
            and len(value.args) == 2
            and not value.keywords
        ):
            return any(_same_target(target, arg) for arg in value.args)
    return False


def _body_commutative(stmts: list[ast.stmt]) -> bool:
    """Whether a loop body (over the gathered collection) performs only
    commutative accumulation, in any control-flow nesting."""
    for stmt in stmts:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if _is_accumulation(stmt):
            continue
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in COMMUTATIVE_WRITE_METHODS
            ):
                continue
            return False
        if isinstance(stmt, ast.If):
            if (_body_commutative(stmt.body)
                    and _body_commutative(stmt.orelse)):
                continue
            return False
        if isinstance(stmt, (ast.For, ast.While)):
            if _body_commutative(stmt.body) and not stmt.orelse:
                continue
            return False
        return False
    return True


def _merge_commutative(fn_ast: ast.FunctionDef,
                       coll: str) -> tuple[bool, str]:
    """(certified, refusal reason) for one merge method."""
    sites = order_sensitive_sites(fn_ast, coll)
    if sites:
        kind, node, _op = sites[0]
        return False, (
            f"order-sensitive {kind.replace('_', ' ')} at line "
            f"{node.lineno}"
        )
    bad = _unwhitelisted_uses(fn_ast, coll)
    if bad:
        return False, (
            f"the gathered collection is used outside the certified "
            f"forms at line {bad[0].lineno}"
        )
    for loop in ast.walk(fn_ast):
        if isinstance(loop, ast.While) and _mentions(loop.test, coll):
            return False, (
                f"while-loop over the collection at line {loop.lineno} "
                f"may consume it order-dependently"
            )
        if isinstance(loop, ast.For) and _mentions(loop.iter, coll):
            if loop.orelse or not _body_commutative(loop.body):
                return False, (
                    f"loop over the collection at line {loop.lineno} "
                    f"does more than commutative accumulation"
                )
    return True, ""


def _is_fold_step(stmt: ast.stmt, acc: str) -> bool:
    """One loop statement that only advances the accumulator."""
    if isinstance(stmt, ast.AugAssign):
        return (isinstance(stmt.target, ast.Name)
                and stmt.target.id == acc
                and isinstance(stmt.op, _COMMUTATIVE_BINOPS))
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == acc):
            return False
        return _is_accumulation(stmt)
    if isinstance(stmt, ast.Expr):
        value = stmt.value
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == acc
            and value.func.attr in COMMUTATIVE_WRITE_METHODS
        )
    return False


def _synthesise_fold(fn_ast: ast.FunctionDef, coll: str,
                     namespace: dict) -> MergeFold | None:
    """Build a :class:`MergeFold` when the merge matches the canonical
    ``acc = identity; for x in coll: steps; return acc`` shape.

    The init must be an additive identity — the literal ``0``/``0.0``
    or an empty no-argument constructor — so that re-merging a folded
    accumulator (``merge([fold(items)])``) equals ``merge(items)``.
    """
    body = list(fn_ast.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if len(body) != 3:
        return None
    init, loop, ret = body
    if not (
        isinstance(init, ast.Assign)
        and len(init.targets) == 1
        and isinstance(init.targets[0], ast.Name)
    ):
        return None
    acc = init.targets[0].id
    init_value = init.value
    is_identity = (
        isinstance(init_value, ast.Constant)
        and type(init_value.value) in (int, float)
        and init_value.value == 0
    ) or (
        isinstance(init_value, ast.Call)
        and not init_value.args
        and not init_value.keywords
    )
    if not is_identity:
        return None
    if not (
        isinstance(loop, ast.For)
        and isinstance(loop.iter, ast.Name)
        and loop.iter.id == coll
        and not loop.orelse
    ):
        return None
    if not (
        isinstance(ret, ast.Return)
        and isinstance(ret.value, ast.Name)
        and ret.value.id == acc
    ):
        return None
    first_param = fn_ast.args.args[0].arg
    for stmt in loop.body:
        if not _is_fold_step(stmt, acc):
            return None
        if _mentions(stmt, coll) or _mentions(stmt, first_param):
            return None
    if isinstance(loop.target, ast.Name):
        param = loop.target.id
        prelude = ""
    else:
        param = "__gathered_item__"
        prelude = f"    {ast.unparse(loop.target)} = {param}\n"
    if param == acc:
        return None
    step_body = "".join(
        f"    {line}\n"
        for stmt in loop.body
        for line in ast.unparse(stmt).splitlines()
    )
    source = (
        f"def __fold_init__():\n"
        f"    return {ast.unparse(init_value)}\n"
        f"def __fold_step__({acc}, {param}):\n"
        f"{prelude}{step_body}"
        f"    return {acc}\n"
    )
    scope = dict(namespace)
    try:
        exec(compile(source, "<capability-fold>", "exec"), scope)
    except Exception:
        return None
    return MergeFold(init=scope["__fold_init__"],
                     step=scope["__fold_step__"])


# ----------------------------------------------------------------------
# Per-TE state-access facts and the coalescing safety argument
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _TEFacts:
    """What one TE does to its SE; ``None`` facts mean *unknown*."""

    se: str | None
    reads: bool
    writes: bool
    commutative_only: bool


_NO_STATE = _TEFacts(se=None, reads=False, writes=False,
                     commutative_only=True)


def _coalescing(
    sdg: SDG, facts: dict[str, "_TEFacts | None"],
) -> tuple[frozenset, frozenset, list[str]]:
    """Grant or refuse the program-wide coalescing licence.

    Batching preserves per-channel FIFO delivery but perturbs the
    cross-channel interleaving at every instance (a multi-item batch
    is one scheduling step). The licence therefore requires:

    1. every SE is written either only through commutative mutators,
       or by exactly one entry TE with no dataflow predecessors (its
       single totally-ordered input stream fixes the write order);
    2. every other TE that *reads* written state is an unstable
       reader — it may observe interleaving-dependent intermediate
       values — and must neither write state itself nor reach, along
       dataflow edges, any TE that writes state.

    Under (1) the final SE contents are interleaving-independent, and
    under (2) no interleaving-dependent observation can flow back
    into state, so ``state_fingerprint`` is preserved exactly.
    """
    for te_name in sorted(facts):
        if facts[te_name] is None:
            return frozenset(), frozenset(), [
                f"TE {te_name!r}: task source unavailable; cannot "
                f"prove dispatch batching safe"
            ]
    sole_writer_entries: set[str] = set()
    for se_name in sorted(sdg.states):
        writers = sorted(
            te for te, fact in facts.items()
            if fact.se == se_name and fact.writes
        )
        if not writers:
            continue
        if all(facts[te].commutative_only for te in writers):
            continue
        if len(writers) == 1:
            spec = sdg.task(writers[0])
            if spec.is_entry and not sdg.predecessors(writers[0]):
                sole_writer_entries.add(writers[0])
                continue
        return frozenset(), frozenset(), [
            f"SE {se_name!r}: non-commutative writes from "
            f"{', '.join(writers)}; batching could reorder them"
        ]
    unstable = []
    for te_name in sorted(facts):
        fact = facts[te_name]
        if not fact.reads or te_name in sole_writer_entries:
            continue
        if not any(
            other.se == fact.se and other.writes
            for other in facts.values()
        ):
            continue  # static state: every interleaving reads the same
        unstable.append(te_name)
    seen: set[str] = set()
    frontier = list(unstable)
    while frontier:
        te_name = frontier.pop()
        if te_name in seen:
            continue
        seen.add(te_name)
        if facts[te_name].writes:
            return frozenset(), frozenset(), [
                f"TE {te_name!r} writes state downstream of an "
                f"interleaving-dependent read; batching could change "
                f"the written values"
            ]
        for edge in sdg.successors(te_name):
            frontier.append(edge.dst)
    entries = frozenset(
        te.name for te in sdg.entries()
        if te.access is not AccessMode.GLOBAL
    )
    edges = frozenset(
        (edge.src, edge.dst) for edge in sdg.dataflows
        if edge.dispatch in _COALESCIBLE_DISPATCH
    )
    return entries, edges, []


def _batch_state_tes(facts: dict[str, _TEFacts],
                     batchable_rmw: tuple[str, ...]) -> frozenset:
    """TEs allowed to run a delivery batch under one journal window:
    certified non-escaping RMWs plus pure commutative writers."""
    commutative_writers = {
        te for te, fact in facts.items()
        if fact is not None and fact.writes and fact.commutative_only
    }
    return frozenset(commutative_writers | set(batchable_rmw))


# ----------------------------------------------------------------------
# Program path (translated SDGProgram subclasses)
# ----------------------------------------------------------------------


def _module_namespace(obj) -> dict:
    module = sys.modules.get(getattr(obj, "__module__", ""), None)
    return dict(vars(module)) if module is not None else {}


def _block_facts(block, fields: set[str]) -> _TEFacts:
    if block.access is None or block.is_merge:
        return _NO_STATE
    se_field = block.access.field
    reads = writes = False
    commutative = True
    for stmt in block.statements:
        for _field, method, _call in field_method_calls(
            stmt, {se_field}
        ):
            if method in READ_METHODS:
                reads = True
            elif method in WRITE_METHODS:
                writes = True
                commutative = (commutative
                               and method in COMMUTATIVE_WRITE_METHODS)
            else:
                reads = writes = True
                commutative = False
        if stmt_reads_field(stmt, se_field, fields):
            reads = True
    return _TEFacts(se=se_field, reads=reads, writes=writes,
                    commutative_only=commutative)


def _certify_program(cls: type, name: str) -> ProgramCapabilities:
    from repro.translate.builder import translate

    try:
        result = translate(cls)
    except Exception as exc:
        return ProgramCapabilities.empty(
            name, f"translation failed: {exc}"
        )
    model = ProgramModel.build(cls, result)
    namespace = _module_namespace(cls)
    refusals: list[str] = []

    commutative: list[str] = []
    foldable: list[str] = []
    folds_by_method: dict[str, MergeFold] = {}
    for method, (fn_ast, coll) in sorted(model.merge_methods().items()):
        certified, why = _merge_commutative(fn_ast, coll)
        if not certified:
            refusals.append(f"merge {method!r}: {why}")
            continue
        commutative.append(method)
        fold = _synthesise_fold(fn_ast, coll, namespace)
        if fold is not None:
            foldable.append(method)
            folds_by_method[method] = fold

    merge_folds: dict[str, MergeFold] = {}
    batchable: list[str] = []
    facts: dict[str, _TEFacts] = {}
    all_fields = set(result.fields)
    for ir in model.entries.values():
        for index, block in enumerate(ir.blocks):
            te_name = ir.te_names[index]
            facts[te_name] = _block_facts(block, all_fields)
            if block.is_merge and block.merge.method in folds_by_method:
                merge_folds[te_name] = folds_by_method[
                    block.merge.method
                ]
            if (
                block.access is not None
                and not block.is_merge
                and block.access.mode is AccessMode.LOCAL
                and block.access.field in model.partial_fields
            ):
                writes, _reads, tainted, _sites = block_taints(
                    block, block.access.field, model.partial_fields
                )
                if not writes:
                    continue
                live_out = (set(ir.lives[index + 1])
                            if index + 1 < len(ir.blocks) else set())
                if tainted & live_out:
                    refusals.append(
                        f"TE {te_name!r}: replica-derived value "
                        f"escapes the RMW block "
                        f"({', '.join(sorted(tainted & live_out))})"
                    )
                else:
                    batchable.append(te_name)

    entries, edges, coalesce_refusals = _coalescing(result.sdg, facts)
    refusals.extend(coalesce_refusals)
    batchable_tuple = tuple(sorted(batchable))
    substrate_safe, substrate_findings = _substrate_certificate(
        model=model, cls=cls
    )
    return ProgramCapabilities(
        target=name,
        commutative_merges=tuple(commutative),
        foldable_merges=tuple(foldable),
        batchable_rmw=batchable_tuple,
        coalescible_entries=entries,
        coalescible_edges=edges,
        batch_state_tes=_batch_state_tes(facts, batchable_tuple),
        merge_folds=merge_folds,
        refusals=tuple(refusals),
        substrate_safe=substrate_safe,
        substrate_findings=substrate_findings,
    )


def _substrate_certificate(model=None, cls=None, sdg=None):
    """(substrate_safe, findings) via the SDG4xx passes."""
    from repro.analysis import substrate
    from repro.analysis.diagnostics import DiagnosticSink, Severity
    from repro.analysis.model import source_location

    if model is not None:
        file, line_base = source_location(cls)
        sink = DiagnosticSink(file=file, line_base=line_base)
        substrate.run_program(model, sink)
    else:
        sink = DiagnosticSink()
        substrate.run_graph(sdg, sink)
    findings = tuple(sink.diagnostics)
    safe = not any(d.severity is Severity.ERROR for d in findings)
    return safe, findings


# ----------------------------------------------------------------------
# SDG path (hand-built graphs: facts from the task functions' sources)
# ----------------------------------------------------------------------


def _task_source(fn) -> ast.FunctionDef | None:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError,
            ValueError):
        return None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _ctx_state_facts(fn_ast: ast.FunctionDef,
                     se_name: str) -> _TEFacts:
    """Classify every ``ctx.state.<method>(...)`` use in a task fn.

    Any opaque use of ``ctx.state`` (aliasing it, passing it around)
    is conservatively read+write and non-commutative.
    """
    if not fn_ast.args.args:
        return _TEFacts(se=se_name, reads=True, writes=True,
                        commutative_only=False)
    ctx_param = fn_ast.args.args[0].arg
    parents = _parent_map(fn_ast)
    reads = writes = False
    commutative = True
    for node in ast.walk(fn_ast):
        if not (
            isinstance(node, ast.Attribute)
            and node.attr == "state"
            and isinstance(node.value, ast.Name)
            and node.value.id == ctx_param
        ):
            continue
        parent = parents.get(node)
        call = parents.get(parent)
        if (
            isinstance(parent, ast.Attribute)
            and isinstance(call, ast.Call)
            and call.func is parent
        ):
            method = parent.attr
            if method in READ_METHODS:
                reads = True
            elif method in WRITE_METHODS:
                writes = True
                commutative = (commutative
                               and method in COMMUTATIVE_WRITE_METHODS)
                grandparent = parents.get(call)
                if not (isinstance(grandparent, ast.Expr)
                        and grandparent.value is call):
                    reads = True  # value-consuming mutator
            else:
                reads = writes = True
                commutative = False
        else:
            reads = writes = True
            commutative = False
    return _TEFacts(se=se_name, reads=reads, writes=writes,
                    commutative_only=commutative)


def _sdg_rmw_nonescaping(fn_ast: ast.FunctionDef) -> bool:
    """Nothing leaves the task: no ``ctx.emit`` and no returned value.

    With no outputs at all, a replica-derived value trivially cannot
    escape onto a dataflow edge — the SDG-path analogue of the
    block-taint liveness proof.
    """
    for node in ast.walk(fn_ast):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
        ):
            return False
        if isinstance(node, ast.Return) and node.value is not None:
            if not (isinstance(node.value, ast.Constant)
                    and node.value.value is None):
                return False
    return True


def _certify_sdg(sdg: SDG, name: str) -> ProgramCapabilities:
    refusals: list[str] = []
    facts: dict[str, _TEFacts | None] = {}
    fn_asts: dict[str, ast.FunctionDef | None] = {}
    commutative: list[str] = []
    foldable: list[str] = []
    merge_folds: dict[str, MergeFold] = {}

    for te_name, spec in sorted(sdg.tasks.items()):
        fn_ast = _task_source(spec.fn)
        fn_asts[te_name] = fn_ast
        if spec.is_merge:
            facts[te_name] = _NO_STATE
            if fn_ast is None or len(fn_ast.args.args) < 2:
                refusals.append(
                    f"merge TE {te_name!r}: source unavailable; "
                    f"cannot certify commutativity"
                )
                continue
            coll = fn_ast.args.args[1].arg
            certified, why = _merge_commutative(fn_ast, coll)
            if not certified:
                refusals.append(f"merge TE {te_name!r}: {why}")
                continue
            commutative.append(te_name)
            fold = _synthesise_fold(
                fn_ast, coll, _module_namespace(spec.fn)
            )
            if fold is not None:
                foldable.append(te_name)
                merge_folds[te_name] = fold
            continue
        if spec.state is None or spec.access is AccessMode.NONE:
            facts[te_name] = _NO_STATE
            continue
        if fn_ast is None:
            facts[te_name] = None
            continue
        facts[te_name] = _ctx_state_facts(fn_ast, spec.state)

    batchable: list[str] = []
    for te_name, spec in sorted(sdg.tasks.items()):
        if spec.access is not AccessMode.LOCAL:
            continue
        se_spec = sdg.se_of(te_name)
        if se_spec is None or se_spec.kind is not StateKind.PARTIAL:
            continue
        fact = facts[te_name]
        fn_ast = fn_asts[te_name]
        if fact is None or fn_ast is None:
            refusals.append(
                f"TE {te_name!r}: source unavailable; cannot certify "
                f"its partial-state RMW"
            )
            continue
        if not fact.writes:
            continue
        if _sdg_rmw_nonescaping(fn_ast):
            batchable.append(te_name)
        else:
            refusals.append(
                f"TE {te_name!r}: emits or returns values from its "
                f"partial-state RMW; a replica-derived value could "
                f"escape"
            )

    entries, edges, coalesce_refusals = _coalescing(sdg, facts)
    refusals.extend(coalesce_refusals)
    batchable_tuple = tuple(sorted(batchable))
    substrate_safe, substrate_findings = _substrate_certificate(sdg=sdg)
    return ProgramCapabilities(
        target=name,
        commutative_merges=tuple(commutative),
        foldable_merges=tuple(foldable),
        batchable_rmw=batchable_tuple,
        coalescible_entries=entries,
        coalescible_edges=edges,
        batch_state_tes=_batch_state_tes(facts, batchable_tuple),
        merge_folds=merge_folds,
        refusals=tuple(refusals),
        substrate_safe=substrate_safe,
        substrate_findings=substrate_findings,
    )

"""Unit tests for the transport layer.

Channel bookkeeping, payload isolation (the hoisted ``copy`` import),
delivery to dead destinations, and bounded-channel backpressure —
including the end-to-end path where a blocked channel feeds the
bottleneck detector's scale decision.
"""

import copy as stdlib_copy

import pytest

import repro.runtime.transport as transport_module
from repro.errors import RuntimeExecutionError
from repro.runtime import BottleneckDetector, Runtime, RuntimeConfig
from repro.runtime.envelope import INPUT_EDGE, NO_RESPONSE, ChannelId
from repro.testing import build_kv_sdg


def deploy_kv(**config):
    config.setdefault("se_instances", {"table": 1})
    return Runtime(build_kv_sdg(), RuntimeConfig(**config)).deploy()


class TestPayloadIsolation:
    def test_copy_import_hoisted_to_module_level(self):
        # The seed engine re-executed ``import copy`` inside the hot
        # inject/_send paths; it must now be a module-level import.
        assert transport_module.copy is stdlib_copy

    def test_prepare_payload_copies_when_enabled(self):
        runtime = deploy_kv(copy_payloads=True)
        payload = {"a": [1, 2]}
        prepared = runtime.transport.prepare_payload(payload)
        assert prepared == payload and prepared is not payload

    def test_prepare_payload_passthrough_when_disabled(self):
        runtime = deploy_kv()
        payload = {"a": [1, 2]}
        assert runtime.transport.prepare_payload(payload) is payload

    def test_no_response_marker_never_copied(self):
        runtime = deploy_kv(copy_payloads=True)
        assert runtime.transport.prepare_payload(NO_RESPONSE) is NO_RESPONSE

    def test_producer_isolated_from_consumer_mutation(self):
        runtime = deploy_kv(copy_payloads=True)
        value = [1, 2]
        runtime.inject("serve", ("put", "k", value))
        value.append(3)  # client mutates after the send
        runtime.inject("serve", ("get", "k", None))
        runtime.run_until_idle()
        assert runtime.results["serve"] == [("k", [1, 2])]


class TestDelivery:
    def test_channel_created_on_first_use_and_counts(self):
        runtime = deploy_kv()
        for i in range(3):
            runtime.inject("serve", ("put", i, i))
        channel_id = ChannelId(INPUT_EDGE, "__input__", 0, "serve", 0)
        assert runtime.transport.channel(channel_id).delivered == 3

    def test_dead_destination_refused_and_counted(self):
        runtime = deploy_kv()
        runtime.inject("serve", ("put", 1, 1))
        node_id = runtime.te_instances("serve")[0].node_id
        runtime.fail_node(node_id)
        runtime.inject("serve", ("put", 2, 2))
        channel_id = ChannelId(INPUT_EDGE, "__input__", 0, "serve", 0)
        channel = runtime.transport.channel(channel_id)
        assert channel.refused == 1
        # The refused envelope survives in the client-side input log.
        assert len(runtime.input_buffers_snapshot()[channel_id]) == 2


class TestBackpressure:
    def test_unbounded_transport_never_blocks(self):
        runtime = deploy_kv()
        for i in range(100):
            runtime.inject("serve", ("put", i, i))
        assert runtime.blocked_channels() == []

    def test_bounded_channel_reports_backpressure(self):
        runtime = deploy_kv(channel_capacity=4)
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        blocked = runtime.blocked_channels()
        assert blocked, "inbox of 10 over capacity 4 must block"
        assert all(channel.dst_te == "serve" for channel in blocked)

    def test_backpressure_clears_when_destination_drains(self):
        runtime = deploy_kv(channel_capacity=4)
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        assert runtime.blocked_channels() == []

    def test_blocked_channels_not_reported_before_deploy(self):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(channel_capacity=4))
        assert runtime.blocked_channels() == []

    def test_detector_consumes_backpressure_signal(self):
        # Mean backlog (10) sits far below the depth threshold, so only
        # the transport's backpressure report can flag the TE.
        runtime = deploy_kv(channel_capacity=4, scale_threshold=10_000)
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        detector = BottleneckDetector(threshold=10_000, max_instances=4)
        assert detector.bottlenecks(runtime) == ["serve"]

    def test_no_signal_without_capacity_bound(self):
        runtime = deploy_kv(scale_threshold=10_000)
        for i in range(10):
            runtime.inject("serve", ("put", i, i))
        detector = BottleneckDetector(threshold=10_000, max_instances=4)
        assert detector.bottlenecks(runtime) == []

    def test_backpressure_drives_auto_scale_decision(self):
        # End-to-end: a bounded channel is the *only* scaling signal
        # (the depth threshold is unreachable), and the runtime still
        # reacts by growing the TE and repartitioning its SE.
        runtime = deploy_kv(
            auto_scale=True,
            scale_threshold=10_000,
            channel_capacity=8,
            scale_check_every=25,
            max_instances=4,
        )
        for i in range(200):
            runtime.inject("serve", ("put", i, i))
        runtime.run_until_idle()
        assert len(runtime.te_instances("serve")) > 1
        assert runtime.scale_events
        merged = {}
        for inst in runtime.se_instances("table"):
            merged.update(dict(inst.element.items()))
        assert merged == {i: i for i in range(200)}


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [0, -4, 2.5, "8", True])
    def test_bad_capacity_rejected_at_deploy(self, bad):
        runtime = Runtime(build_kv_sdg(),
                          RuntimeConfig(channel_capacity=bad))
        with pytest.raises(RuntimeExecutionError, match="channel_capacity"):
            runtime.deploy()

    def test_none_capacity_is_valid(self):
        assert deploy_kv(channel_capacity=None).transport.capacity is None

    def test_integer_capacity_is_valid(self):
        assert deploy_kv(channel_capacity=16).transport.capacity == 16

"""The chaos soak: a seeded fault storm against full self-healing.

Acceptance scenario for the chaos layer. A KV workload runs while a
seeded :func:`~repro.chaos.random_plan` kills nodes, crashes tasks,
redelivers envelopes and forces a scale-up, all interleaved with
scheduled asynchronous checkpoints — and *nothing* calls
``recover_node``: the failure detector notices every failure and the
supervisor restores it. The run must converge to the sequential oracle
and the event log must show one complete detection->recovery cycle per
failure.
"""

import pytest

from repro.apps import KeyValueStore
from repro.chaos import (
    CrashTask,
    FaultInjector,
    KillNode,
    ScaleUp,
    random_plan,
)
from repro.recovery import (
    BackupStore,
    CheckpointManager,
    CheckpointScheduler,
    RecoveryManager,
    RecoverySupervisor,
)
from repro.runtime import FailureDetector
from repro.workloads import KVWorkload


def merged_state(app):
    merged = {}
    for element in app.state_of("table"):
        merged.update(dict(element.items()))
    return merged


def build_supervised_deployment():
    app = KeyValueStore.launch(table=2)
    store = BackupStore(m_targets=3)
    # The full input log is retained so that the supervisor's pure
    # log-replay fallback stays sound whatever the plan corrupts.
    manager = CheckpointManager(app.runtime, store, trim_input_log=False)
    scheduler = CheckpointScheduler(manager, every_items=40,
                                    complete_after_steps=5).install()
    recovery = RecoveryManager(app.runtime, store)
    detector = FailureDetector(app.runtime, heartbeat_timeout=25,
                               check_every=5).install()
    # n_new=2 keeps the m-to-n rung of the strategy ladder in play on
    # every recovery (it is refused while sibling partitions live, which
    # exercises the fallback path each time).
    supervisor = RecoverySupervisor(detector, recovery, n_new=2,
                                    backoff_steps=10).install()
    return app, store, scheduler, detector, supervisor


def settled(injector, detector, supervisor):
    """The storm is over: every fault fired, every failure was noticed
    (no dead node is still inside its heartbeat window) and every
    recovery completed."""
    return (injector.done and supervisor.settled
            and not detector.unreported_dead_nodes())


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [7, 11, 23])
def test_randomized_fault_storm_converges_to_oracle(seed):
    app, store, scheduler, detector, supervisor = (
        build_supervised_deployment()
    )
    put_te = app.translation.entry_info("put").entry_te
    plan = random_plan(seed, horizon=700, se="table", entry_te=put_te,
                       n_kills=3, n_crashes=1, n_duplicates=2,
                       n_scale_ups=1, min_gap=80)
    injector = FaultInjector(app.runtime, plan, store=store).install()

    oracle = KeyValueStore()
    ops = list(KVWorkload(n_keys=120, read_fraction=0.0,
                          seed=seed).ops(6000))
    applied = 0
    # Feed in small batches; keep pumping (mirrored into the oracle)
    # past the plan horizon until every fault fired and every recovery
    # settled.
    while True:
        for op in ops[applied:applied + 25]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        applied += 25
        if applied >= 1400 and settled(injector, detector, supervisor):
            break
        assert applied < len(ops), (
            f"seed {seed}: chaos run failed to settle; injector log: "
            f"{injector.injected}, supervisor log: {supervisor.events}"
        )
    scheduler.flush()
    app.run()

    # Convergence: the distributed, repeatedly-broken deployment ends
    # bit-identical to an uninterrupted sequential run.
    assert merged_state(app) == dict(oracle.table.items())

    # The plan actually happened: >= 3 kills, a mid-item crash and one
    # scale-up, with scheduled checkpoints interleaved throughout.
    fired = injector.fired()
    assert len([r for r in fired if isinstance(r.fault, KillNode)]) >= 3
    assert len([r for r in fired if isinstance(r.fault, CrashTask)]) == 1
    assert len([r for r in fired if isinstance(r.fault, ScaleUp)]) == 1
    assert scheduler.completed_count > 0

    # Every failure shows a complete detection -> recovery cycle; no
    # node was given up on and no recovery is still in flight.
    cycles = supervisor.cycles()
    assert len(cycles) >= 4  # 3 kills + 1 crash
    assert all(outcome is not None and outcome.kind == "recovered"
               for _detection, outcome in cycles)
    assert supervisor.quarantined == set()


@pytest.mark.chaos
def test_soak_with_backup_target_outage_and_corruption():
    """Store-level faults under supervision: one backup target drops
    offline, the victim's stored chunk is corrupted, and the node is
    killed before any fresh checkpoint can supersede the damage — the
    supervisor must walk the ladder down to pure log replay."""
    from repro.chaos import CorruptChunk, FaultPlan, TargetOffline

    app, store, scheduler, detector, supervisor = (
        build_supervised_deployment()
    )
    oracle = KeyValueStore()
    ops = list(KVWorkload(n_keys=120, read_fraction=0.0,
                          seed=31).ops(6000))
    applied = 0

    def feed(batch=25):
        nonlocal applied
        for op in ops[applied:applied + batch]:
            app.put(op.key, op.value)
            oracle.put(op.key, op.value)
        app.run()
        applied += batch

    for _ in range(12):  # warm up: state + scheduled checkpoints
        feed()
    scheduler.flush()
    assert scheduler.completed_count > 0

    # Build the store-fault plan against the live topology: target the
    # node currently hosting partition 1, and land the kill 2 steps
    # after the corruption so no fresh checkpoint can supersede it
    # (the scheduler needs >= every_items more items to even begin one).
    victim = app.runtime.se_instance("table", 1).node_id
    now = app.runtime.total_steps
    plan = FaultPlan([
        TargetOffline(at_step=now + 5, target=0),
        CorruptChunk(at_step=now + 6, node_id=victim),
        KillNode(at_step=now + 8, node_id=victim),
    ])
    injector = FaultInjector(app.runtime, plan, store=store).install()

    while True:
        feed()
        if settled(injector, detector, supervisor):
            break
        assert applied < len(ops), (
            f"chaos run failed to settle; supervisor: {supervisor.events}"
        )
    scheduler.flush()
    app.run()

    assert merged_state(app) == dict(oracle.table.items())
    assert [r.outcome for r in injector.injected] == ["fired"] * 3
    # The broken backup pushed recovery down the ladder to log replay.
    fallbacks = [e for e in supervisor.events if e.kind == "fallback"]
    assert any("log-replay" in e.detail for e in fallbacks)
    ((detection, outcome),) = [
        c for c in supervisor.cycles() if c[0].node_id == victim
    ]
    assert detection.detail == "dead"
    assert outcome.kind == "recovered"
    assert outcome.detail == "log-replay"

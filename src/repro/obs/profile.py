"""Wall-clock phase profiling beside the logical-time registry.

The metrics registry (:mod:`repro.obs.metrics`) is deliberately
deterministic: everything it counts is denominated in logical steps or
entry counts, never seconds. That keeps the replayable core honest but
leaves a visibility gap the paper's operational story (§5–§6) needs
closed: *where does the wall clock actually go* — task code, dispatch,
frame serialisation, waiting on a pipe, checkpointing, recovery?

:class:`ProfileRegistry` answers that as a separate, opt-in layer
(``RuntimeConfig(profile=True)``) of named phase timers. It never
feeds back into scheduling or dispatch decisions, so determinism is
untouched; it is also shard-mergeable the same way the metrics
registry is, so the multiprocess substrate can ship each worker's
phase breakdown back to the coordinator piggybacked on idle frames.

Cost discipline mirrors tracing: with profiling off the engine's hot
path pays one ``is None`` check per item and nothing else
(``benchmarks/test_obs_profile.py`` enforces the same <3% bar as the
metrics layer); with profiling on, each instrumented phase pays two
``perf_counter()`` calls.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PHASES", "ProfileRegistry", "profile_span"]

#: The canonical phase vocabulary. ``phase()`` accepts any name — these
#: are the ones the runtime itself populates:
#:
#: * ``process``    — task invocation + per-item bookkeeping (engine);
#: * ``dispatch``   — routing outputs through the dispatch layer;
#: * ``serialize``  — pickling outbound wire frames (multiprocess);
#: * ``wire_wait``  — blocked in ``select`` on pipe readiness;
#: * ``checkpoint`` — begin/complete spans of checkpoint cycles;
#: * ``recovery``   — node restore (checkpoint load + replay).
PHASES = ("process", "dispatch", "serialize", "wire_wait",
          "checkpoint", "recovery")


class _PhaseTimer:
    """Accumulated wall-clock seconds and sample count for one phase.

    Pre-bind the instance (``registry.phase("process")``) outside any
    hot loop; :meth:`add` is two attribute updates.
    """

    __slots__ = ("seconds", "count")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1

    @property
    def mean(self) -> float:
        return self.seconds / self.count if self.count else 0.0


class ProfileRegistry:
    """Named wall-clock phase timers with snapshot/merge sharding."""

    def __init__(self) -> None:
        self._phases: dict[str, _PhaseTimer] = {}

    def phase(self, name: str) -> _PhaseTimer:
        """Get-or-create the timer for ``name`` (pre-bindable)."""
        timer = self._phases.get(name)
        if timer is None:
            timer = self._phases[name] = _PhaseTimer()
        return timer

    def add(self, name: str, seconds: float) -> None:
        self.phase(name).add(seconds)

    def seconds(self, name: str) -> float:
        timer = self._phases.get(name)
        return 0.0 if timer is None else timer.seconds

    def count(self, name: str) -> int:
        timer = self._phases.get(name)
        return 0 if timer is None else timer.count

    def names(self) -> list[str]:
        return sorted(self._phases)

    # -- sharding (multiprocess substrate) -----------------------------

    def reset(self) -> None:
        """Zero every timer in place; pre-bound timers stay valid."""
        for timer in self._phases.values():
            timer.seconds = 0.0
            timer.count = 0

    def snapshot(self) -> dict[str, tuple[float, int]]:
        """Picklable shard: ``{phase: (seconds, count)}``."""
        return {name: (timer.seconds, timer.count)
                for name, timer in self._phases.items()}

    def merge_snapshot(self, snap: dict[str, tuple[float, int]]) -> None:
        for name, (seconds, count) in snap.items():
            timer = self.phase(name)
            timer.seconds += seconds
            timer.count += count

    def merged_with(self, shards: list[dict]) -> "ProfileRegistry":
        """Fresh registry = this one + all shards (non-destructive,
        so repeated calls with cumulative shards never double-count)."""
        merged = ProfileRegistry()
        merged.merge_snapshot(self.snapshot())
        for shard in shards:
            merged.merge_snapshot(shard)
        return merged

    # -- read side -----------------------------------------------------

    def breakdown(self) -> dict[str, dict[str, float]]:
        """JSON-friendly ``{phase: {seconds, count, mean_ms}}``."""
        return {
            name: {
                "seconds": timer.seconds,
                "count": timer.count,
                "mean_ms": timer.mean * 1e3,
            }
            for name, timer in sorted(self._phases.items())
        }

    def render(self) -> str:
        """A fixed-width phase table for CLI output."""
        rows = [(name, timer) for name, timer in
                sorted(self._phases.items(),
                       key=lambda kv: -kv[1].seconds)]
        if not rows:
            return "(no phases recorded)"
        lines = [f"{'phase':<12} {'seconds':>10} {'calls':>9} "
                 f"{'mean':>10}"]
        for name, timer in rows:
            lines.append(
                f"{name:<12} {timer.seconds:>10.4f} {timer.count:>9d} "
                f"{timer.mean * 1e3:>8.3f}ms"
            )
        return "\n".join(lines)


@contextmanager
def profile_span(profiler: ProfileRegistry | None,
                 phase: str) -> Iterator[None]:
    """Time a cold-path block into ``phase``; no-op when profiler is None.

    For hot paths, pre-bind ``registry.phase(name)`` and call ``add``
    directly instead — a context manager per item is not free.
    """
    if profiler is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        profiler.add(phase, time.perf_counter() - t0)

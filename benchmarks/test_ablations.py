"""Ablations of the design choices DESIGN.md calls out.

Each ablation removes one mechanism the paper argues for and shows the
claimed benefit disappears:

1. the dirty-state overlay (vs locking the SE for the whole persist);
2. pipelined materialisation (vs adding per-batch scheduling overhead);
3. m-to-n parallel restore (vs a single restore stream, and the shift
   of the bottleneck from disk to reconstruction);
4. partial state with merge (the barrier cost that explains Fig. 5's
   slope: reads get more expensive as replicas are added).
"""

from conftest import print_figure

from repro.apps import CollaborativeFiltering
from repro.recovery import BackupStore, CheckpointManager
from repro.runtime import Runtime, RuntimeConfig
from repro.simulation import (
    microbatch_throughput,
    pipelined_throughput,
    recovery_time,
)
from repro.simulation.recovery_model import RecoveryParams

from repro.testing import build_kv_sdg


def test_ablation_dirty_state_overlay(benchmark):
    """Without the overlay, a checkpoint blocks every update in flight.

    We measure, on the real engine, how many requests the node serves
    *between checkpoint begin and completion*: with the overlay they all
    proceed; the ablation (complete immediately = lock-the-world) forces
    them to wait for the checkpoint.
    """

    def run():
        outcomes = {}
        for overlap in (True, False):
            runtime = Runtime(build_kv_sdg(),
                              RuntimeConfig(se_instances={"table": 1}))
            runtime.deploy()
            manager = CheckpointManager(runtime, BackupStore())
            for i in range(100):
                runtime.inject("serve", ("put", i, i))
            runtime.run_until_idle()
            node = runtime.se_instance("table", 0).node_id
            pending = manager.begin(node)
            for i in range(100, 200):
                runtime.inject("serve", ("put", i, i))
            if overlap:
                served = runtime.run_until_idle()  # overlay active
                manager.complete(pending)
            else:
                manager.complete(pending)          # world stops first
                served = 0
                runtime.run_until_idle()
            outcomes["with overlay" if overlap else "locked"] = served
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(
        "Ablation 1: requests served during an open checkpoint",
        ["mode", "requests served mid-checkpoint"],
        list(outcomes.items()),
    )
    assert outcomes["with overlay"] == 100
    assert outcomes["locked"] == 0


def test_ablation_pipelining(benchmark):
    """Reintroducing scheduling overhead erodes small-window throughput.

    Sweeping the per-batch scheduling overhead from 0 (pure pipelining)
    upwards shows the SDG advantage in Fig. 8 is exactly the absence of
    that term.
    """

    def compute():
        rows = []
        service_rate = 90_000.0
        for overhead_ms in (0.0, 1.0, 5.0, 20.0, 100.0):
            if overhead_ms == 0.0:
                throughput = pipelined_throughput(service_rate)
            else:
                throughput = microbatch_throughput(
                    service_rate, batch_size=1_000,
                    scheduling_overhead_s=overhead_ms / 1000,
                )
            rows.append((overhead_ms, throughput))
        return rows

    rows = benchmark(compute)
    print_figure(
        "Ablation 2: throughput vs scheduling overhead (1k batches)",
        ["scheduling overhead (ms)", "throughput (items/s)"],
        rows,
    )
    throughputs = [t for _o, t in rows]
    assert throughputs == sorted(throughputs, reverse=True)
    assert throughputs[0] / throughputs[-1] > 5


def test_ablation_mton_bottleneck_shift(benchmark):
    """Parallel restore helps only the phase that is the bottleneck.

    With a fast reconstructor, disk reads dominate and extra backup
    disks (m) help; with a slow reconstructor (the realistic large-state
    regime), extra recovering nodes (n) are what matters — the paper's
    Fig. 11 observation.
    """

    def compute():
        fast_rebuild = RecoveryParams(reconstruct_rate=1e9)
        slow_rebuild = RecoveryParams(reconstruct_rate=60e6)
        rows = []
        for label, params in (("disk-bound", fast_rebuild),
                              ("rebuild-bound", slow_rebuild)):
            base = recovery_time(4e9, 1, 1, params)
            gain_m = base - recovery_time(4e9, 2, 1, params)
            gain_n = base - recovery_time(4e9, 1, 2, params)
            rows.append((label, base, gain_m, gain_n))
        return rows

    rows = benchmark(compute)
    print_figure(
        "Ablation 3: who benefits from m vs n",
        ["regime", "1-to-1 time (s)", "gain from m=2 (s)",
         "gain from n=2 (s)"],
        rows,
    )
    disk_bound, rebuild_bound = rows
    assert disk_bound[2] >= disk_bound[3]      # m helps when disk-bound
    assert rebuild_bound[3] > rebuild_bound[2]  # n helps when CPU-bound


def test_ablation_merge_barrier_cost(benchmark):
    """Each added partial instance makes a global read do more work.

    Measured on the real engine: getRec fans out to every co-occurrence
    replica and the merge barrier gathers one response per replica, so
    per-read engine steps grow with the replica count while per-write
    steps stay flat. This is the mechanism behind Fig. 5's slope.
    """

    def compute():
        rows = []
        for replicas in (1, 2, 4, 8):
            app = CollaborativeFiltering.launch(
                user_item=2, co_occ=replicas,
                config=RuntimeConfig(max_instances=16),
            )
            for i in range(40):
                app.add_rating(i % 10, i % 7, 3)
            app.run()
            before = app.runtime.total_steps
            for user in range(20):
                app.get_rec(user % 10)
            app.run()
            read_steps = (app.runtime.total_steps - before) / 20
            rows.append((replicas, read_steps))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_figure(
        "Ablation 4: per-read engine steps vs partial replicas",
        ["co_occ replicas", "steps per getRec"],
        rows,
    )
    steps = [s for _r, s in rows]
    assert steps == sorted(steps)
    assert steps[-1] > steps[0] * 2

"""Unit tests for the pluggable state backends and their journals."""

import pytest

from repro.errors import StateError
from repro.state import (
    DenseGridBackend,
    DenseMatrix,
    DictBackend,
    KeyValueMap,
    ListBackend,
    Matrix,
    SparseMatrixBackend,
    StateElement,
    Vector,
)


class TestJournalInvariants:
    """The three invariants every backend must maintain."""

    def test_write_journals_as_written(self):
        backend = DictBackend()
        backend.set("a", 1)
        journal = backend.journal()
        assert journal.written == {"a"} and not journal.deleted

    def test_write_then_delete_is_a_tombstone_only(self):
        backend = DictBackend()
        backend.set("a", 1)
        backend.delete("a")
        journal = backend.journal()
        assert journal.deleted == {"a"} and not journal.written

    def test_delete_then_rewrite_is_a_write_only(self):
        backend = DictBackend()
        backend.set("a", 1)
        backend.mark_clean()
        backend.delete("a")
        backend.set("a", 2)
        journal = backend.journal()
        assert journal.written == {"a"} and not journal.deleted

    def test_mark_clean_resets(self):
        backend = DictBackend()
        backend.set("a", 1)
        backend.delete("a")
        backend.mark_clean()
        assert backend.journal().empty
        assert backend.journal_size == 0

    def test_clear_journals_every_key_as_deleted(self):
        backend = DictBackend()
        backend.set("a", 1)
        backend.set("b", 2)
        backend.mark_clean()
        backend.clear()
        assert backend.journal().deleted == {"a", "b"}

    def test_journal_is_a_snapshot(self):
        backend = DictBackend()
        backend.set("a", 1)
        journal = backend.journal()
        backend.set("b", 2)
        assert journal.written == {"a"}
        assert len(journal) == 1


class TestListBackend:
    def test_gap_fill_journals_implicit_slots(self):
        backend = ListBackend()
        backend.set(3, 1.5)
        assert backend.journal().written == {0, 1, 2, 3}
        assert [v for _, v in backend.items()] == [0.0, 0.0, 0.0, 1.5]

    def test_delete_keeps_slot_and_journals_a_write(self):
        backend = ListBackend([1.0, 2.0])
        backend.mark_clean()
        backend.delete(1)
        assert backend.get(1) == 0.0
        assert len(backend) == 2
        assert backend.journal().written == {1}
        assert not backend.journal().deleted

    def test_out_of_bounds_delete_raises(self):
        with pytest.raises(KeyError):
            ListBackend([1.0]).delete(5)

    def test_bad_index_raises_state_error(self):
        with pytest.raises(StateError):
            ListBackend().set("x", 1.0)
        with pytest.raises(StateError):
            ListBackend().set(-1, 1.0)

    def test_grow_to_zero_extends(self):
        backend = ListBackend()
        backend.grow_to(3)
        assert len(backend) == 3
        backend.grow_to(2)  # never shrinks
        assert len(backend) == 3


class TestDenseGridBackend:
    def test_bounds_enforced(self):
        backend = DenseGridBackend(2, 2)
        with pytest.raises(StateError):
            backend.set((2, 0), 1.0)
        with pytest.raises(StateError):
            backend.get((0, 5))

    def test_delete_zeroes_and_journals_write(self):
        backend = DenseGridBackend(2, 2)
        backend.set((0, 1), 3.0)
        backend.mark_clean()
        backend.delete((0, 1))
        assert backend.get((0, 1)) == 0.0
        assert backend.journal().written == {(0, 1)}

    def test_clear_journals_all_cells_as_writes(self):
        backend = DenseGridBackend(2, 2)
        backend.set((1, 1), 9.0)
        backend.mark_clean()
        backend.clear()
        journal = backend.journal()
        assert journal.written == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert not journal.deleted

    def test_contains_is_a_bounds_check(self):
        backend = DenseGridBackend(1, 1)
        assert backend.contains((0, 0))


class TestSparseMatrixBackend:
    def test_row_index_maintained(self):
        backend = SparseMatrixBackend()
        backend.set((1, 2), 5.0)
        backend.set((1, 7), 6.0)
        backend.delete((1, 2))
        assert backend.row_cols(1) == {7}
        backend.delete((1, 7))
        assert backend.row_cols(1) == set()

    def test_key_validation(self):
        backend = SparseMatrixBackend()
        with pytest.raises(StateError):
            backend.set("bad", 1.0)
        with pytest.raises(StateError):
            backend.set((1, -2), 1.0)


class TestDeltaCapability:
    def test_predefined_ses_are_delta_capable(self):
        for se in (KeyValueMap(), Vector(), Matrix(), DenseMatrix(2, 2)):
            assert se.delta_capable, type(se).__name__

    def test_legacy_hook_override_is_not_delta_capable(self):
        class Legacy(StateElement):
            def __init__(self):
                super().__init__()
                self._own = {}

            def _store_set(self, key, value):
                self._own[key] = value

            def _store_get(self, key):
                return self._own[key]

            def _store_delete(self, key):
                del self._own[key]

            def _store_contains(self, key):
                return key in self._own

            def _store_items(self):
                return iter(self._own.items())

            def _store_clear(self):
                self._own.clear()

            def spawn_empty(self):
                return Legacy()

        legacy = Legacy()
        assert not legacy.delta_capable
        with pytest.raises(StateError, match="delta"):
            legacy.to_delta_chunks(2, version=2, base_version=1)

    def test_se_mutations_reach_the_journal(self):
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.delete("a")
        kv.put("b", 2)
        journal = kv.journal()
        assert journal.written == {"b"}
        assert journal.deleted == {"a"}
        kv.mark_clean()
        assert kv.journal().empty

    def test_overlay_writes_journal_on_consolidate(self):
        """Mid-checkpoint writes belong to the *next* delta."""
        kv = KeyValueMap()
        kv.put("a", 1)
        kv.mark_clean()
        kv.begin_checkpoint()
        kv.put("b", 2)
        assert kv.journal().empty  # still in the overlay
        kv.consolidate()
        assert kv.journal().written == {"b"}
